"""Formula AST for the serial-Horn Transaction F-logic subset.

The connectives follow Section 4 of the paper:

* ``Serial`` — the serial conjunction ``a (x) b``: "execute a, then b";
* ``Choice`` — disjunction: "execute a or b, non-deterministically";
* ``Pred`` — an atomic goal: a defined predicate, a builtin, or one of the
  F-logic primitives ``isa(O, Class)`` (``O : Class``) and
  ``attr(O, A, V)`` (``O[A -> V]``);
* ``Ins``/``Del`` — Transaction Logic's elementary updates, inserting or
  deleting a fact in the object store (the database state);
* ``Naf`` — negation as failure over query-only goals (an extension used
  for page-shape tests).

Rules are serial-Horn: ``head <- body`` with an atomic head.  The pretty
printer renders formulas in the textual syntax accepted by
:mod:`repro.flogic.syntax`, so programs round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.flogic.terms import Struct, Term, Var, rename_term, variables_of


class Formula:
    """Marker base class for formula nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Pred(Formula):
    """An atomic goal ``name(args...)``."""

    name: str
    args: tuple[Term, ...] = ()

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.name, len(self.args))

    def __repr__(self) -> str:
        return format_formula(self)


@dataclass(frozen=True)
class Serial(Formula):
    """Serial conjunction: execute the parts left to right."""

    parts: tuple[Formula, ...]

    def __repr__(self) -> str:
        return format_formula(self)


@dataclass(frozen=True)
class Choice(Formula):
    """Non-deterministic choice among the parts."""

    parts: tuple[Formula, ...]

    def __repr__(self) -> str:
        return format_formula(self)


@dataclass(frozen=True)
class Naf(Formula):
    """Negation as failure of a query-only goal (state must not change)."""

    goal: Formula

    def __repr__(self) -> str:
        return format_formula(self)


@dataclass(frozen=True)
class Ins(Formula):
    """Elementary update: insert an ``isa`` or ``attr`` fact."""

    kind: str  # 'isa' | 'attr'
    args: tuple[Term, ...]

    def __repr__(self) -> str:
        return format_formula(self)


@dataclass(frozen=True)
class Del(Formula):
    """Elementary update: delete an ``attr`` fact."""

    kind: str
    args: tuple[Term, ...]

    def __repr__(self) -> str:
        return format_formula(self)


TRUE = Pred("true")
FAIL = Pred("fail")


def serial(*parts: Formula) -> Formula:
    """Build a (flattened) serial conjunction; a single part stays bare."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, Serial):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return Serial(tuple(flat))


def choice(*parts: Formula) -> Formula:
    """Build a (flattened) choice; a single part stays bare."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, Choice):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return FAIL
    if len(flat) == 1:
        return flat[0]
    return Choice(tuple(flat))


def isa(obj: Term, cls: Term) -> Pred:
    """The F-logic membership molecule ``obj : cls``."""
    return Pred("isa", (obj, cls))


def attr(obj: Term, attribute: Term, value: Term) -> Pred:
    """The F-logic data molecule ``obj[attribute -> value]``."""
    return Pred("attr", (obj, attribute, value))


@dataclass(frozen=True)
class Rule:
    """A serial-Horn rule ``head <- body``.  Facts have body TRUE."""

    head: Pred
    body: Formula = TRUE

    def rename(self, tag: int) -> "Rule":
        """A variant of this rule with all variables freshly tagged."""
        head = Pred(self.head.name, tuple(rename_term(a, tag) for a in self.head.args))
        return Rule(head, rename_formula(self.body, tag))

    def __repr__(self) -> str:
        return format_rule(self)


def rename_formula(formula: Formula, tag: int) -> Formula:
    if isinstance(formula, Pred):
        return Pred(formula.name, tuple(rename_term(a, tag) for a in formula.args))
    if isinstance(formula, Serial):
        return Serial(tuple(rename_formula(p, tag) for p in formula.parts))
    if isinstance(formula, Choice):
        return Choice(tuple(rename_formula(p, tag) for p in formula.parts))
    if isinstance(formula, Naf):
        return Naf(rename_formula(formula.goal, tag))
    if isinstance(formula, Ins):
        return Ins(formula.kind, tuple(rename_term(a, tag) for a in formula.args))
    if isinstance(formula, Del):
        return Del(formula.kind, tuple(rename_term(a, tag) for a in formula.args))
    raise TypeError("cannot rename %r" % (formula,))


def formula_variables(formula: Formula) -> set[Var]:
    """All variables occurring in ``formula``."""
    if isinstance(formula, Pred):
        found: set[Var] = set()
        for arg in formula.args:
            found |= variables_of(arg)
        return found
    if isinstance(formula, (Serial, Choice)):
        found = set()
        for part in formula.parts:
            found |= formula_variables(part)
        return found
    if isinstance(formula, Naf):
        return formula_variables(formula.goal)
    if isinstance(formula, (Ins, Del)):
        found = set()
        for arg in formula.args:
            found |= variables_of(arg)
        return found
    raise TypeError("unknown formula %r" % (formula,))


class Program:
    """An indexed collection of rules (a navigation-expression knowledge base)."""

    def __init__(self, rules: list[Rule] | None = None) -> None:
        self._by_indicator: dict[tuple[str, int], list[Rule]] = {}
        self.rules: list[Rule] = []
        for rule in rules or []:
            self.add(rule)

    def add(self, rule: Rule) -> None:
        self.rules.append(rule)
        self._by_indicator.setdefault(rule.head.indicator, []).append(rule)

    def extend(self, rules: "list[Rule] | Program") -> None:
        source = rules.rules if isinstance(rules, Program) else rules
        for rule in source:
            self.add(rule)

    def rules_for(self, indicator: tuple[str, int]) -> list[Rule]:
        return self._by_indicator.get(indicator, [])

    def defines(self, indicator: tuple[str, int]) -> bool:
        return indicator in self._by_indicator

    def __len__(self) -> int:
        return len(self.rules)

    def pretty(self) -> str:
        return "\n".join(format_rule(rule) for rule in self.rules)


# -- pretty printing -----------------------------------------------------------


def format_term(term: Term) -> str:
    if isinstance(term, Var):
        return repr(term)
    if isinstance(term, Struct):
        if not term.args:
            return term.functor
        return "%s(%s)" % (term.functor, ", ".join(format_term(a) for a in term.args))
    if isinstance(term, str):
        if term and term[0].islower() and all(c.isalnum() or c == "_" for c in term):
            return term
        return "'%s'" % term.replace("\\", "\\\\").replace("'", "\\'")
    if isinstance(term, tuple):
        return "[%s]" % ", ".join(format_term(t) for t in term)
    if isinstance(term, bool):
        return "true" if term else "false"
    if isinstance(term, (int, float)):
        return repr(term)
    return "<%s>" % term.__class__.__name__


def format_formula(formula: Formula, parenthesize: bool = False) -> str:
    if isinstance(formula, Pred):
        if formula.name == "isa" and len(formula.args) == 2:
            return "%s : %s" % (format_term(formula.args[0]), format_term(formula.args[1]))
        if formula.name == "attr" and len(formula.args) == 3:
            return "%s[%s -> %s]" % tuple(format_term(a) for a in formula.args)
        if not formula.args:
            return formula.name
        return "%s(%s)" % (formula.name, ", ".join(format_term(a) for a in formula.args))
    if isinstance(formula, Serial):
        text = " * ".join(format_formula(p, parenthesize=True) for p in formula.parts)
        return "(%s)" % text if parenthesize else text
    if isinstance(formula, Choice):
        text = " ; ".join(format_formula(p, parenthesize=True) for p in formula.parts)
        return "(%s)" % text
    if isinstance(formula, Naf):
        return "not %s" % format_formula(formula.goal, parenthesize=True)
    if isinstance(formula, Ins):
        return "ins_%s(%s)" % (formula.kind, ", ".join(format_term(a) for a in formula.args))
    if isinstance(formula, Del):
        return "del_%s(%s)" % (formula.kind, ", ".join(format_term(a) for a in formula.args))
    raise TypeError("cannot format %r" % (formula,))


def format_rule(rule: Rule) -> str:
    if rule.body == TRUE:
        return "%s." % format_formula(rule.head)
    return "%s <- %s." % (format_formula(rule.head), format_formula(rule.body))
