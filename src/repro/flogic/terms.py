"""Terms, substitutions and unification for the navigation calculus.

The calculus (a subset of serial-Horn Transaction F-logic) manipulates three
kinds of terms:

* :class:`Var` — logic variables (``Make``, ``P0``);
* :class:`Struct` — compound terms ``f(t1, ..., tn)``, also used for F-logic
  molecules after desugaring;
* plain Python constants — strings, numbers, tuples, and opaque host values
  (parsed :class:`~repro.web.page.WebPage` objects flow through navigation
  expressions as constants).

Unification is standard first-order unification with an occurs check.
Substitutions are immutable mappings; ``walk``/``resolve`` follow bindings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping


@dataclass(frozen=True)
class Var:
    """A logic variable, identified by name (plus an optional rename tag)."""

    name: str
    tag: int = 0

    def __repr__(self) -> str:
        return self.name if self.tag == 0 else "%s_%d" % (self.name, self.tag)


@dataclass(frozen=True)
class Struct:
    """A compound term ``functor(arg1, ..., argN)``."""

    functor: str
    args: tuple[Any, ...] = ()

    def __repr__(self) -> str:
        if not self.args:
            return self.functor
        return "%s(%s)" % (self.functor, ", ".join(map(repr, self.args)))

    @property
    def arity(self) -> int:
        return len(self.args)


Term = Any  # Var | Struct | constant
Subst = Mapping[Var, Term]

EMPTY_SUBST: dict[Var, Term] = {}


def walk(term: Term, subst: Subst) -> Term:
    """Follow variable bindings until a non-variable or free variable."""
    while isinstance(term, Var):
        bound = subst.get(term)
        if bound is None:
            return term
        term = bound
    return term


def resolve(term: Term, subst: Subst) -> Term:
    """Deep-substitute: replace every bound variable inside ``term``.

    Tuples are structural terms here (the calculus' list constants), so
    resolution descends into them as well as into :class:`Struct` args.
    """
    term = walk(term, subst)
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(resolve(a, subst) for a in term.args))
    if isinstance(term, tuple):
        return tuple(resolve(a, subst) for a in term)
    return term


def occurs_in(var: Var, term: Term, subst: Subst) -> bool:
    """True when ``var`` occurs inside ``term`` under ``subst``."""
    term = walk(term, subst)
    if term == var:
        return True
    if isinstance(term, Struct):
        return any(occurs_in(var, a, subst) for a in term.args)
    if isinstance(term, tuple):
        return any(occurs_in(var, a, subst) for a in term)
    return False


def unify(left: Term, right: Term, subst: Subst | None = None) -> dict[Var, Term] | None:
    """Unify two terms, returning the extended substitution or None.

    The input substitution is never mutated; on success a new dict is
    returned (possibly the same object if no new bindings were needed).
    """
    if subst is None:
        subst = EMPTY_SUBST
    pairs = [(left, right)]
    out: dict[Var, Term] | None = None  # lazily copied
    current: Subst = subst
    while pairs:
        a, b = pairs.pop()
        a = walk(a, current)
        b = walk(b, current)
        if a is b:
            continue
        if isinstance(a, Var):
            if occurs_in(a, b, current):
                return None
            if out is None:
                out = dict(subst)
                current = out
            out[a] = b
        elif isinstance(b, Var):
            if occurs_in(b, a, current):
                return None
            if out is None:
                out = dict(subst)
                current = out
            out[b] = a
        elif isinstance(a, Struct) and isinstance(b, Struct):
            if a.functor != b.functor or a.arity != b.arity:
                return None
            pairs.extend(zip(a.args, b.args))
        elif isinstance(a, tuple) and isinstance(b, tuple):
            if len(a) != len(b):
                return None
            pairs.extend(zip(a, b))
        else:
            try:
                equal = bool(a == b)
            except Exception:
                equal = a is b
            if not equal:
                return None
    if out is None:
        return dict(subst) if not isinstance(subst, dict) else subst  # no new bindings
    return out


def variables_of(term: Term) -> set[Var]:
    """All variables occurring in ``term``."""
    found: set[Var] = set()
    stack = [term]
    while stack:
        item = stack.pop()
        if isinstance(item, Var):
            found.add(item)
        elif isinstance(item, Struct):
            stack.extend(item.args)
        elif isinstance(item, tuple):
            stack.extend(item)
    return found


def rename_term(term: Term, tag: int) -> Term:
    """Rename every variable in ``term`` to a fresh copy tagged ``tag``."""
    if isinstance(term, Var):
        return Var(term.name, tag)
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(rename_term(a, tag) for a in term.args))
    if isinstance(term, tuple):
        return tuple(rename_term(a, tag) for a in term)
    return term


def is_ground(term: Term, subst: Subst | None = None) -> bool:
    """True when ``term`` contains no unbound variables under ``subst``."""
    if subst:
        term = resolve(term, subst)
    return not variables_of(term)


def make_vars(names: Iterable[str]) -> list[Var]:
    """Convenience: a list of fresh variables with the given names."""
    return [Var(name) for name in names]
