"""Textual syntax for the navigation calculus.

The paper stresses that nobody but the system needs to *see* navigation
expressions, but a concrete syntax is invaluable for tests, debugging and
documentation.  This module parses the notation the pretty printer in
:mod:`repro.flogic.formulas` emits, so programs round-trip:

.. code-block:: text

    travel(X, Y) <- hop(X, Y) ; hop(X, Z) * travel(Z, Y).
    page : web_page.
    form01[method -> 'POST'].
    run(P) <- P : data_page * not P[empty -> true] * ins_attr(P, seen, true).

* ``*`` is the serial conjunction, ``;`` the choice, ``not`` negation as
  failure; parentheses group.
* ``O : C`` is the membership molecule, ``O[A -> V]`` the data molecule.
* Variables start with an upper-case letter or ``_``; ``_`` alone is an
  anonymous (always fresh) variable.
* Atoms are lower-case names or quoted strings; both parse to Python
  strings.  Numbers parse to int/float.  ``[a, b]`` is a tuple constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flogic.formulas import (
    Choice,
    Del,
    Formula,
    Ins,
    Naf,
    Pred,
    Program,
    Rule,
    Serial,
    attr,
    choice,
    isa,
    serial,
)
from repro.flogic.terms import Struct, Term, Var


class SyntaxParseError(Exception):
    """The source text does not conform to the calculus grammar."""


@dataclass(frozen=True)
class _Token:
    kind: str  # name | var | number | string | punct | end
    value: str
    pos: int


_PUNCT = ["<-", "->", "(", ")", "[", "]", ",", ".", "*", ";", ":"]


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "%":  # comment to end of line
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n and source[j] != "'":
                if source[j] == "\\" and j + 1 < n:
                    buf.append(source[j + 1])
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise SyntaxParseError("unterminated string at %d" % i)
            tokens.append(_Token("string", "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # A dot not followed by a digit terminates the number
                    # (it is the rule-ending period).
                    if j + 1 >= n or not source[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(_Token("number", source[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "var" if (word[0].isupper() or word[0] == "_") else "name"
            tokens.append(_Token(kind, word, i))
            i = j
            continue
        matched = False
        for punct in _PUNCT:
            if source.startswith(punct, i):
                tokens.append(_Token("punct", punct, i))
                i += len(punct)
                matched = True
                break
        if not matched:
            raise SyntaxParseError("unexpected character %r at %d" % (ch, i))
    tokens.append(_Token("end", "", n))
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = _tokenize(source)
        self.pos = 0
        self._anon_counter = 0

    # -- token plumbing -------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, value: str) -> _Token:
        token = self.next()
        if token.value != value:
            raise SyntaxParseError(
                "expected %r at %d, got %r" % (value, token.pos, token.value)
            )
        return token

    def at_punct(self, value: str) -> bool:
        token = self.peek()
        return token.kind == "punct" and token.value == value

    # -- grammar ---------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self.peek().kind != "end":
            program.add(self.parse_rule())
        return program

    def parse_rule(self) -> Rule:
        head = self.parse_unary()
        if not isinstance(head, Pred):
            raise SyntaxParseError("rule head must be atomic, got %r" % (head,))
        if self.at_punct("<-"):
            self.next()
            body = self.parse_choice()
        else:
            body = Pred("true")
        self.expect(".")
        return Rule(head, body)

    def parse_choice(self) -> Formula:
        parts = [self.parse_serial()]
        while self.at_punct(";"):
            self.next()
            parts.append(self.parse_serial())
        return choice(*parts)

    def parse_serial(self) -> Formula:
        parts = [self.parse_unary()]
        while self.at_punct("*"):
            self.next()
            parts.append(self.parse_unary())
        return serial(*parts)

    def parse_unary(self) -> Formula:
        token = self.peek()
        if token.kind == "name" and token.value == "not":
            self.next()
            return Naf(self.parse_unary())
        if self.at_punct("("):
            self.next()
            inner = self.parse_choice()
            self.expect(")")
            return self._maybe_molecule_on(inner)
        return self.parse_molecule_or_pred()

    def parse_molecule_or_pred(self) -> Formula:
        term = self.parse_term()
        return self._molecule_from(term)

    def _maybe_molecule_on(self, inner: Formula) -> Formula:
        # "(expr)" cannot start a molecule; just return it.
        return inner

    def _molecule_from(self, term: Term) -> Formula:
        if self.at_punct(":"):
            self.next()
            cls = self.parse_term()
            return isa(term, cls)
        if self.at_punct("["):
            self.next()
            attribute = self.parse_term()
            self.expect("->")
            value = self.parse_term()
            self.expect("]")
            return attr(term, attribute, value)
        # Otherwise the term must be predicate-shaped.
        if isinstance(term, Struct):
            if term.functor.startswith(("ins_", "del_")):
                op, _, kind = term.functor.partition("_")
                if kind not in ("isa", "attr"):
                    raise SyntaxParseError("unknown update %r" % term.functor)
                cls = Ins if op == "ins" else Del
                return cls(kind, term.args)
            return Pred(term.functor, term.args)
        if isinstance(term, bool):
            # 'true'/'false' parse as booleans in term position; in formula
            # position they are the trivial goals.
            return Pred("true") if term else Pred("fail")
        if isinstance(term, str):
            return Pred(term)
        raise SyntaxParseError("formula expected, got term %r" % (term,))

    def parse_term(self) -> Term:
        token = self.next()
        if token.kind == "var":
            if token.value == "_":
                self._anon_counter += 1
                return Var("_Anon%d" % self._anon_counter)
            return Var(token.value)
        if token.kind == "number":
            text = token.value
            return float(text) if "." in text else int(text)
        if token.kind == "string":
            return token.value
        if token.kind == "name":
            if self.at_punct("("):
                self.next()
                args = self.parse_term_list(")")
                return Struct(token.value, tuple(args))
            if token.value == "true":
                return True
            if token.value == "false":
                return False
            return token.value  # atom == Python string
        if token.kind == "punct" and token.value == "[":
            items = self.parse_term_list("]")
            return tuple(items)
        raise SyntaxParseError("term expected at %d, got %r" % (token.pos, token.value))

    def parse_term_list(self, closer: str) -> list[Term]:
        items: list[Term] = []
        if self.at_punct(closer):
            self.next()
            return items
        items.append(self.parse_term())
        while self.at_punct(","):
            self.next()
            items.append(self.parse_term())
        self.expect(closer)
        return items


def parse_rules(source: str) -> Program:
    """Parse a full program (a sequence of rules)."""
    return _Parser(source).parse_program()


def parse_formula(source: str) -> Formula:
    """Parse a single formula (no trailing period)."""
    parser = _Parser(source)
    formula = parser.parse_choice()
    if parser.peek().kind != "end":
        raise SyntaxParseError("trailing input after formula")
    return formula


def parse_term(source: str) -> Term:
    """Parse a single term."""
    parser = _Parser(source)
    term = parser.parse_term()
    if parser.peek().kind != "end":
        raise SyntaxParseError("trailing input after term")
    return term
