"""The navigation calculus: a serial-Horn Transaction F-logic subset.

This package is the formal engine beneath the VPS layer.  F-logic supplies
the object model (pages, links, forms as frames in an
:class:`~repro.flogic.store.ObjectStore`); Transaction Logic supplies the
sequencing (``Serial``), choice (``Choice``) and elementary updates
(``Ins``/``Del``) needed to represent navigation *processes*.  The
:class:`~repro.flogic.engine.Engine` executes programs of serial-Horn rules
with backtracking and recursion, and :mod:`repro.flogic.syntax` provides a
round-tripping textual notation.
"""

from repro.flogic.engine import DepthLimitExceeded, Engine, UnknownPredicate
from repro.flogic.formulas import (
    Choice,
    Del,
    FAIL,
    Formula,
    Ins,
    Naf,
    Pred,
    Program,
    Rule,
    Serial,
    TRUE,
    attr,
    choice,
    format_formula,
    format_rule,
    format_term,
    isa,
    serial,
)
from repro.flogic.store import ObjectStore, Signature, SignatureError
from repro.flogic.syntax import (
    SyntaxParseError,
    parse_formula,
    parse_rules,
    parse_term,
)
from repro.flogic.terms import (
    Struct,
    Subst,
    Term,
    Var,
    is_ground,
    resolve,
    unify,
    variables_of,
    walk,
)

__all__ = [
    "Choice",
    "Del",
    "DepthLimitExceeded",
    "Engine",
    "FAIL",
    "Formula",
    "Ins",
    "Naf",
    "ObjectStore",
    "Pred",
    "Program",
    "Rule",
    "Serial",
    "Signature",
    "SignatureError",
    "Struct",
    "Subst",
    "SyntaxParseError",
    "TRUE",
    "Term",
    "UnknownPredicate",
    "Var",
    "attr",
    "choice",
    "format_formula",
    "format_rule",
    "format_term",
    "is_ground",
    "isa",
    "parse_formula",
    "parse_rules",
    "parse_term",
    "resolve",
    "serial",
    "unify",
    "variables_of",
    "walk",
]
