"""Parallel query evaluation across sites — the ablation harness.

"Our experiments suggest that parallelization of query evaluation is
crucial for obtaining acceptable response times."  Site fetches are
network-bound and independent, so they parallelize perfectly.  This module
measures that claim through the *real* execution engine: both arms run the
per-site workload with :meth:`~repro.core.webbase.WebBase.execution_context`
— the same worker pool, retry policy, per-context cache and tracing the UR
query path uses — differing only in ``max_workers``.

The timing model reported to benchmarks (see
:class:`~repro.core.execution.ExecutionContext`):

* sequential elapsed = total cpu + Σ per-fetch network seconds
* parallel elapsed   = total cpu + the busiest worker lane

which is the paper's intuition — with N similar sites, parallel fetching
approaches an N-fold elapsed-time win while cpu cost is unchanged.

Worker errors are never swallowed and never truncated to the first one:
the context's fan-out collects every failure into one
:class:`~repro.core.execution.FanoutError` report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.execution import ExecutionContext
from repro.core.stats import primary_relation, site_given
from repro.core.webbase import WebBase
from repro.sites.world import TIMING_TABLE_HOSTS
from repro.web.clock import CpuTimer


@dataclass
class ParallelOutcome:
    """Results and the timing model of one multi-site evaluation."""

    rows_by_host: dict[str, int]
    cpu_seconds: float
    network_by_host: dict[str, float]
    # Busiest worker-lane network time, from the engine's lane accounting.
    # None falls back to the per-host model (every site on its own lane).
    critical_network_seconds: float | None = None
    context: ExecutionContext | None = field(default=None, repr=False, compare=False)

    @property
    def sequential_elapsed(self) -> float:
        return self.cpu_seconds + sum(self.network_by_host.values())

    @property
    def parallel_elapsed(self) -> float:
        if self.critical_network_seconds is not None:
            return self.cpu_seconds + self.critical_network_seconds
        slowest = max(self.network_by_host.values()) if self.network_by_host else 0.0
        return self.cpu_seconds + slowest

    @property
    def speedup(self) -> float:
        if self.parallel_elapsed == 0:
            return 1.0
        return self.sequential_elapsed / self.parallel_elapsed


def _run_site_workload(
    webbase: WebBase,
    query: dict[str, Any],
    hosts: list[str],
    max_workers: int,
    label: str,
    through_cache: bool = False,
) -> ParallelOutcome:
    """Fan the per-site query across ``hosts`` on one engine context.

    By default fetches go through ``webbase.vps`` with the context (the
    engine's worker/retry/trace path) rather than the cross-query result
    cache, so both parallel-ablation arms do the same fresh Web work.
    ``through_cache=True`` routes them through the always-present
    :class:`~repro.vps.cache.ResultCache` layer instead — the cache
    ablation's warm/staleness arms use that path."""
    ctx = webbase.execution_context(label=label, max_workers=max_workers)
    catalog = webbase.cache if through_cache else webbase.vps

    def fetch_host(host: str) -> int:
        relation_name = primary_relation(webbase, host)
        given = site_given(webbase, relation_name, query)
        return len(catalog.fetch(relation_name, given, context=ctx))

    timer = CpuTimer().start()
    with ctx.accounted():
        row_counts = ctx.map(fetch_host, hosts)
    cpu = timer.stop()
    return ParallelOutcome(
        rows_by_host=dict(zip(hosts, row_counts)),
        cpu_seconds=cpu,
        network_by_host=dict(ctx.network_by_host),
        critical_network_seconds=ctx.network_seconds_critical,
        context=ctx,
    )


def parallel_site_query(
    webbase: WebBase,
    query: dict[str, Any] | None = None,
    hosts: list[str] | None = None,
    max_workers: int | None = None,
) -> ParallelOutcome:
    """Evaluate the per-site query on every host concurrently.

    ``max_workers`` defaults to one worker lane per host (the paper's
    fully parallel arm); smaller values model a bounded connection pool —
    the engine's lane accounting then reports the true makespan."""
    query = query or {"make": "ford", "model": "escort"}
    hosts = list(hosts or TIMING_TABLE_HOSTS)
    workers = max_workers or len(hosts)
    return _run_site_workload(webbase, query, hosts, workers, "parallel-sites")


def cached_site_query(
    webbase: WebBase,
    query: dict[str, Any] | None = None,
    hosts: list[str] | None = None,
    max_workers: int | None = None,
    label: str = "cached-sites",
) -> ParallelOutcome:
    """Evaluate the per-site query through the cross-query result cache.

    First call over a cold cache populates it; repeat calls measure the
    warm path (and, after site churn plus a maintenance sweep, the
    staleness-invalidation path — see ``bench_ablation_cache``)."""
    query = query or {"make": "ford", "model": "escort"}
    hosts = list(hosts or TIMING_TABLE_HOSTS)
    workers = max_workers or len(hosts)
    return _run_site_workload(
        webbase, query, hosts, workers, label, through_cache=True
    )


def sequential_site_query(
    webbase: WebBase,
    query: dict[str, Any] | None = None,
    hosts: list[str] | None = None,
) -> ParallelOutcome:
    """The same evaluation, one site at a time (the ablation baseline)."""
    query = query or {"make": "ford", "model": "escort"}
    hosts = list(hosts or TIMING_TABLE_HOSTS)
    return _run_site_workload(webbase, query, hosts, 1, "sequential-sites")
