"""Parallel query evaluation across sites.

"Our experiments suggest that parallelization of query evaluation is
crucial for obtaining acceptable response times."  Site fetches are
network-bound and independent, so they parallelize perfectly: each worker
gets its own navigation executor (browsers and engines are not shared)
over the same simulated server, and each worker's simulated network time
accrues on its own clock.

The timing model reported to benchmarks:

* sequential elapsed = total cpu + Σ per-site network seconds
* parallel elapsed   = total cpu + max per-site network seconds

which is the paper's intuition — with N similar sites, parallel fetching
approaches an N-fold elapsed-time win while cpu cost is unchanged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.core.stats import primary_relation, site_given
from repro.core.webbase import WebBase
from repro.navigation.executor import NavigationExecutor
from repro.sites.world import TIMING_TABLE_HOSTS
from repro.vps.schema import VpsSchema
from repro.web.clock import CpuTimer, SimClock


@dataclass
class ParallelOutcome:
    """Results and the timing model of one multi-site evaluation."""

    rows_by_host: dict[str, int]
    cpu_seconds: float
    network_by_host: dict[str, float]

    @property
    def sequential_elapsed(self) -> float:
        return self.cpu_seconds + sum(self.network_by_host.values())

    @property
    def parallel_elapsed(self) -> float:
        slowest = max(self.network_by_host.values()) if self.network_by_host else 0.0
        return self.cpu_seconds + slowest

    @property
    def speedup(self) -> float:
        if self.parallel_elapsed == 0:
            return 1.0
        return self.sequential_elapsed / self.parallel_elapsed


def parallel_site_query(
    webbase: WebBase,
    query: dict[str, Any] | None = None,
    hosts: list[str] | None = None,
    max_workers: int | None = None,
) -> ParallelOutcome:
    """Evaluate the per-site query on every host concurrently.

    Each worker thread owns a private executor + VPS (compiled sites are
    shared; they are immutable after construction), so no locking beyond
    the server's stats lock is needed.
    """
    query = query or {"make": "ford", "model": "escort"}
    hosts = list(hosts or TIMING_TABLE_HOSTS)
    results: dict[str, int] = {}
    network: dict[str, float] = {}
    errors: list[Exception] = []
    gate = threading.Semaphore(max_workers) if max_workers else None
    lock = threading.Lock()

    def worker(host: str) -> None:
        if gate is not None:
            gate.acquire()
        try:
            clock = SimClock()
            executor = NavigationExecutor(webbase.world.server, clock)
            vps = VpsSchema(executor)
            vps.add_compiled_site(webbase.compiled[host])
            relation_name = primary_relation(webbase, host)
            given = site_given(webbase, relation_name, query)
            relation = vps.fetch(relation_name, given)
            with lock:
                results[host] = len(relation)
                network[host] = clock.network_seconds
        except Exception as exc:  # pragma: no cover - surfaced below
            with lock:
                errors.append(exc)
        finally:
            if gate is not None:
                gate.release()

    timer = CpuTimer().start()
    threads = [threading.Thread(target=worker, args=(host,)) for host in hosts]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    cpu = timer.stop()
    if errors:
        raise errors[0]
    return ParallelOutcome(rows_by_host=results, cpu_seconds=cpu, network_by_host=network)


def sequential_site_query(
    webbase: WebBase,
    query: dict[str, Any] | None = None,
    hosts: list[str] | None = None,
) -> ParallelOutcome:
    """The same evaluation, one site at a time (the ablation baseline)."""
    query = query or {"make": "ford", "model": "escort"}
    hosts = list(hosts or TIMING_TABLE_HOSTS)
    results: dict[str, int] = {}
    network: dict[str, float] = {}
    timer = CpuTimer().start()
    for host in hosts:
        clock = SimClock()
        executor = NavigationExecutor(webbase.world.server, clock)
        vps = VpsSchema(executor)
        vps.add_compiled_site(webbase.compiled[host])
        relation_name = primary_relation(webbase, host)
        given = site_given(webbase, relation_name, query)
        relation = vps.fetch(relation_name, given)
        results[host] = len(relation)
        network[host] = clock.network_seconds
    cpu = timer.stop()
    return ParallelOutcome(rows_by_host=results, cpu_seconds=cpu, network_by_host=network)
