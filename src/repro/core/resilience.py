"""Per-host resilience: circuit breakers and bulkhead worker partitions.

At service scale one slow or broken site can eat the whole worker pool:
every fetch that routes to it burns a retry budget, a worker slot, and a
client's deadline.  This module keeps one degraded host from starving the
rest of the webbase, with two classic patterns adapted to the engine's
simulated-Web setting:

* a **circuit breaker** per host (closed → open → half-open), driven by
  the failure/timeout signals the engine already produces.  Consecutive
  failures — or successes slower than ``ResiliencePolicy.slow_seconds``
  of simulated network time — trip the breaker.  An *open* breaker does
  **not** fast-fail required accesses (that would change answers); it

  - sheds *speculative* work for the host (prefetch, join probes) with
    :class:`CircuitOpenError`,
  - quarantines the host in the cross-query
    :class:`~repro.vps.cache.ResultCache` (so a ``serve_stale`` policy
    degrades gracefully to flagged-stale answers), and
  - lets required accesses pass through, counted as
    ``resilience.pass_throughs``.

  After ``recovery_seconds`` the breaker half-opens: a bounded number of
  probe accesses test the host, one success closes it (and lifts the
  quarantine), one failure re-opens it;

* a **bulkhead** per host: at most ``bulkhead_per_host`` of the engine's
  worker slots may be occupied by one host at a time.  Required accesses
  wait (cancellably) for a partition slot; speculative accesses are shed
  with :class:`BulkheadSaturated` instead of queueing.

State and traffic are observable: ``resilience.*`` metrics, the
:meth:`ResilienceManager.describe` table (``python -m repro resilience``),
and per-host breaker states via :meth:`ResilienceManager.states`.

The clock is injectable (wall seconds by default) so tests can step a
breaker through open → half-open → closed deterministically.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import WebBaseError

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitOpenError(WebBaseError):
    """A speculative access was shed because the host's breaker is open."""


class BulkheadSaturated(WebBaseError):
    """A speculative access was shed because the host's worker-slot
    partition is fully occupied."""


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the per-host resilience layer.

    ``failure_threshold`` consecutive failure signals open a breaker; a
    success counts as a failure signal when it took at least
    ``slow_seconds`` of simulated network time (``None`` disables the
    slow-call signal).  An open breaker half-opens after
    ``recovery_seconds`` and admits ``half_open_probes`` trial accesses.
    ``bulkhead_per_host`` caps one host's share of the engine's worker
    slots (``None`` = no partitioning).  ``quarantine_on_open`` feeds
    breaker trips into the result cache's quarantine/serve-stale policy.

    ``speculate_probes`` turns on speculative dependent-join probing (the
    runtime relevance-pruning machinery in
    :mod:`repro.relational.algebra`); ``prune`` lets the join revoke
    probes whose outer partition emptied; ``speculate_stagger_seconds``
    delays probe *i* by ``i × stagger`` wall seconds before it issues,
    modelling the pacing a real network imposes (0 = issue immediately).
    """

    enabled: bool = True
    failure_threshold: int = 5
    recovery_seconds: float = 30.0
    half_open_probes: int = 1
    slow_seconds: float | None = None
    bulkhead_per_host: int | None = None
    quarantine_on_open: bool = True
    speculate_probes: bool = False
    prune: bool = True
    speculate_stagger_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1; got %r" % self.failure_threshold
            )
        if self.half_open_probes < 1:
            raise ValueError(
                "half_open_probes must be >= 1; got %r" % self.half_open_probes
            )
        if self.bulkhead_per_host is not None and self.bulkhead_per_host < 1:
            raise ValueError(
                "bulkhead_per_host must be >= 1; got %r" % self.bulkhead_per_host
            )

    @classmethod
    def off(cls) -> "ResiliencePolicy":
        """Resilience disabled: every access passes straight through."""
        return cls(enabled=False)


class CircuitBreaker:
    """One host's breaker: closed → open → half-open, failure-count driven.

    Thread-safe.  Outcome reports (:meth:`record_success` /
    :meth:`record_failure`) return ``"opened"`` or ``"closed"`` when the
    report caused a state transition, ``""`` otherwise — the manager turns
    those into metrics and cache quarantine.
    """

    def __init__(
        self,
        host: str,
        policy: ResiliencePolicy,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.host = host
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0  # consecutive failure signals while closed
        self._opened_at = 0.0
        self._half_open_at = 0.0
        self._probes_inflight = 0

    def _advance(self, now: float) -> str:
        """Time-driven transitions (caller holds the lock)."""
        if (
            self._state == BREAKER_OPEN
            and now - self._opened_at >= self.policy.recovery_seconds
        ):
            self._state = BREAKER_HALF_OPEN
            self._half_open_at = now
            self._probes_inflight = 0
        elif (
            self._state == BREAKER_HALF_OPEN
            and now - self._half_open_at >= self.policy.recovery_seconds
        ):
            # Probes were granted but never reported back (e.g. cancelled
            # mid-flight): recycle the probe budget so the breaker cannot
            # wedge half-open forever.
            self._half_open_at = now
            self._probes_inflight = 0
        return self._state

    def _trip(self, now: float) -> None:
        self._state = BREAKER_OPEN
        self._opened_at = now
        self._failures = 0
        self._probes_inflight = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._advance(self._clock())

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def allow(self) -> str:
        """Admission verdict for one access: ``"ok"`` (closed),
        ``"probe"`` (half-open trial granted) or ``"open"``."""
        with self._lock:
            state = self._advance(self._clock())
            if state == BREAKER_CLOSED:
                return "ok"
            if (
                state == BREAKER_HALF_OPEN
                and self._probes_inflight < self.policy.half_open_probes
            ):
                self._probes_inflight += 1
                return "probe"
            return "open"

    def record_success(self, seconds: float = 0.0) -> str:
        """Report a successful access that took ``seconds`` of simulated
        network time; a slow success counts as a failure signal."""
        slow = (
            self.policy.slow_seconds is not None
            and seconds >= self.policy.slow_seconds
        )
        with self._lock:
            now = self._clock()
            state = self._advance(now)
            if state == BREAKER_HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                if slow:
                    self._trip(now)
                    return "opened"
                self._state = BREAKER_CLOSED
                self._failures = 0
                return "closed"
            if slow:
                self._failures += 1
                if state == BREAKER_CLOSED and self._failures >= self.policy.failure_threshold:
                    self._trip(now)
                    return "opened"
            else:
                self._failures = 0
            return ""

    def record_failure(self) -> str:
        """Report a failed (or timed-out) access attempt."""
        with self._lock:
            now = self._clock()
            state = self._advance(now)
            if state == BREAKER_HALF_OPEN:
                self._trip(now)
                return "opened"
            self._failures += 1
            if state == BREAKER_CLOSED and self._failures >= self.policy.failure_threshold:
                self._trip(now)
                return "opened"
            return ""


class ResilienceManager:
    """Per-host breakers + bulkheads behind one access gate.

    The engine wraps every upstream fetch in :meth:`access`; per-attempt
    outcomes feed :meth:`record_failure` / :meth:`record_success`.  On a
    breaker trip the manager quarantines the host in ``cache`` (when
    given), and lifts that quarantine — without evicting the entries that
    served stale meanwhile — when the breaker closes again.
    """

    def __init__(
        self,
        policy: ResiliencePolicy | None = None,
        metrics: Any = None,
        cache: Any = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or ResiliencePolicy()
        self.metrics = metrics
        self.cache = cache
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._bulkheads: dict[str, threading.Semaphore] = {}
        #: hosts *this manager* quarantined (so it never lifts a
        #: maintenance-driven quarantine it does not own).
        self._quarantined: set[str] = set()

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def breaker(self, host: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(host)
            if breaker is None:
                breaker = self._breakers[host] = CircuitBreaker(
                    host, self.policy, clock=self._clock
                )
            return breaker

    def _bulkhead(self, host: str) -> threading.Semaphore | None:
        if self.policy.bulkhead_per_host is None:
            return None
        with self._lock:
            sem = self._bulkheads.get(host)
            if sem is None:
                sem = self._bulkheads[host] = threading.Semaphore(
                    self.policy.bulkhead_per_host
                )
            return sem

    # -- the access gate -----------------------------------------------------

    def admit(self, host: str, speculative: bool = False) -> str:
        """Breaker-only admission (no bulkhead): the verdict and counters
        of :meth:`access`, for callers that manage their own bulkhead
        waiting — the async navigation fabric cannot block a thread on the
        semaphore, so it polls the bulkhead on its event loop and uses
        this for the breaker half of the gate."""
        if not self.policy.enabled:
            return "off"
        verdict = self.breaker(host).allow()
        if verdict == "open":
            if speculative:
                self._count("resilience.shed")
                raise CircuitOpenError("circuit open for host %s" % host)
            self._count("resilience.pass_throughs")
            return "pass"
        if verdict == "probe":
            self._count("resilience.probes")
        return verdict

    @contextmanager
    def access(
        self,
        host: str,
        speculative: bool = False,
        poll: Callable[[], None] | None = None,
    ) -> Iterator[str]:
        """Gate one upstream access to ``host``.

        Yields the admission verdict (``"ok"``, ``"probe"``, ``"pass"``
        for a required access through an open breaker, or ``"off"`` when
        resilience is disabled).  Speculative accesses raise
        :class:`CircuitOpenError` / :class:`BulkheadSaturated` instead of
        degrading the pool; required accesses wait for a bulkhead slot,
        calling ``poll`` periodically so a cancelled query stops waiting.
        """
        verdict = self.admit(host, speculative=speculative)
        if verdict == "off":
            yield verdict
            return
        sem = self._bulkhead(host)
        acquired = False
        if sem is not None:
            if sem.acquire(blocking=False):
                acquired = True
            elif speculative:
                self._count("resilience.bulkhead_shed")
                raise BulkheadSaturated(
                    "bulkhead for host %s is at its limit of %d"
                    % (host, self.policy.bulkhead_per_host)
                )
            else:
                self._count("resilience.bulkhead_waits")
                while not sem.acquire(timeout=0.02):
                    if poll is not None:
                        poll()
                acquired = True
        try:
            yield verdict
        finally:
            if acquired:
                sem.release()

    # -- outcome reporting ---------------------------------------------------

    def record_success(self, host: str, seconds: float = 0.0) -> None:
        if not self.policy.enabled:
            return
        self._event(host, self.breaker(host).record_success(seconds))

    def record_failure(self, host: str) -> None:
        if not self.policy.enabled:
            return
        self._event(host, self.breaker(host).record_failure())

    def _event(self, host: str, event: str) -> None:
        if not event:
            return
        if event == "opened":
            self._count("resilience.breaker_opened")
            if self.cache is not None and self.policy.quarantine_on_open:
                self.cache.quarantine(host)
                with self._lock:
                    self._quarantined.add(host)
        elif event == "closed":
            self._count("resilience.breaker_closed")
            lift = False
            with self._lock:
                if host in self._quarantined:
                    self._quarantined.discard(host)
                    lift = True
            if lift and self.cache is not None:
                # The host was slow, not changed: the entries that served
                # stale during the outage are still map-consistent, so the
                # quarantine lifts without evicting them.
                self.cache.clear_quarantine(host, evict=False)
        if self.metrics is not None:
            self.metrics.gauge("resilience.open_breakers").set(
                sum(1 for state in self.states().values() if state == BREAKER_OPEN)
            )

    # -- introspection -------------------------------------------------------

    def allows_speculation(self, host: str) -> bool:
        """Whether speculative work (prefetch, join probes) may target
        ``host`` right now — an open breaker says no."""
        if not self.policy.enabled:
            return True
        return self.breaker(host).state != BREAKER_OPEN

    def states(self) -> dict[str, str]:
        """Current breaker state per host (hosts seen so far)."""
        with self._lock:
            breakers = list(self._breakers.values())
        return {b.host: b.state for b in breakers}

    def describe(self) -> str:
        """The per-host breaker table (``python -m repro resilience``)."""
        with self._lock:
            breakers = sorted(self._breakers.values(), key=lambda b: b.host)
            quarantined = set(self._quarantined)
        if not breakers:
            return "(no hosts accessed yet)"
        width = max(len(b.host) for b in breakers)
        lines = ["%-*s  %-9s  %s" % (width, "host", "breaker", "notes")]
        for breaker in breakers:
            notes = []
            if breaker.consecutive_failures:
                notes.append("%d consecutive failure(s)" % breaker.consecutive_failures)
            if breaker.host in quarantined:
                notes.append("quarantined by breaker")
            lines.append(
                "%-*s  %-9s  %s" % (width, breaker.host, breaker.state, ", ".join(notes))
            )
        return "\n".join(lines)
