"""The parallel execution engine: per-query contexts, retries, tracing.

"Our experiments suggest that parallelization of query evaluation is
crucial for obtaining acceptable response times."  This module makes that
the production execution model for the real three-layer query path (UR
planner → logical views → VPS fetches), not just a demo side-path:

* an :class:`ExecutionContext` travels with one query from the planner
  down to the navigation executor.  It owns a bounded worker pool that
  fans out independent VPS fetches — across maximal objects, union
  branches, and dependent-join probe batches — while preserving the
  sequential result exactly (fan-outs collect results in submission
  order, so answers are byte-identical to a one-worker run);
* every fetch runs under a per-attempt **timeout** (in simulated network
  seconds) and a **bounded retry with backoff** policy, so the transient
  faults injected by :class:`~repro.web.server.FaultPlan` are absorbed
  instead of silently shrinking answers;
* a per-context **result cache** de-duplicates identical fetches inside
  one query (the cross-query cache is the always-present
  :class:`~repro.vps.cache.ResultCache` layer);
* a structured **trace** (a span tree: query → plan → object → view →
  fetch → attempt) records pages navigated, simulated network seconds,
  cpu, cache hits and retries, exposed via ``WebBase.query_report`` and
  ``python -m repro trace``.

Timing model: the context keeps ``max_workers`` simulated connection
*lanes* and assigns each completed fetch's network seconds to the
least-loaded lane (online makespan scheduling), so

* sequential elapsed (1 worker)  = cpu + Σ per-fetch network seconds
* parallel elapsed (N workers)   = cpu + max over lanes

which is the paper's intuition — with enough workers, elapsed time
approaches the slowest single site instead of the sum over sites.
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import monotonic, process_time
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.core.metrics import MetricsRegistry
from repro.core.resilience import (
    BulkheadSaturated,
    CircuitOpenError,
    ResilienceManager,
    ResiliencePolicy,
)
from repro.errors import WebBaseError
from repro.navigation.executor import NavigationExecutor
from repro.navigation.fabric import AsyncNavigationExecutor
from repro.navigation.prefetch import SpeculationBudget, SpeculativePrefetcher
from repro.vps.cache import CachePolicy, InFlight
from repro.web.browser import PrefixPageCache, TransientNetworkError
from repro.web.clock import SimClock
from repro.web.server import FaultPlan, WebServer

if TYPE_CHECKING:  # pragma: no cover - annotations only; avoids import cycles
    from repro.core.simclock import FabricRuntime
    from repro.navigation.compiler import CompiledSite
    from repro.relational.relation import Relation
    from repro.vps.schema import VirtualRelation


# -- policies and configuration ----------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff (in simulated seconds)."""

    max_attempts: int = 3
    backoff_seconds: float = 0.25
    backoff_factor: float = 2.0

    def delay_before(self, attempt: int) -> float:
        """Backoff charged before ``attempt`` (attempts count from 1)."""
        if attempt <= 1:
            return 0.0
        return self.backoff_seconds * self.backoff_factor ** (attempt - 2)


@dataclass(frozen=True)
class WebBaseConfig:
    """Everything :class:`~repro.core.webbase.WebBase` needs to assemble.

    Replaces the old ``build(seed, ads_per_host, caching)`` boolean-flag
    sprawl: world shape, cache policy, worker pool size, per-fetch
    timeout/retry policy and the (optional) fault plan all live here.
    """

    seed: int = 1999
    ads_per_host: int = 120
    cache: CachePolicy = field(default_factory=CachePolicy.noop)
    max_workers: int = 8
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout_seconds: float | None = None
    faults: FaultPlan | None = None
    # "cost" orders each maximal object's join with the cost-based planner;
    # "off" keeps the legacy first-feasible order (the A/B baseline).
    optimizer: str = "cost"
    # Batched navigation: a query-scoped revision-stamped page cache (the
    # shared prefix of a compiled program fetches once per query, not once
    # per binding), fetch_batch probing through the join operator, and
    # speculative prefetch of enumerated select domains.  Off = the
    # per-binding navigation baseline (``--no-batch``).
    batch: bool = True
    # The concurrency fabric for engine fetches.  "thread" is the
    # bundle-capped worker pool (one navigation stack per lane);
    # "async" multiplexes every in-flight binding as a coroutine on one
    # virtual-time event loop (repro.core.simclock), so thousands of
    # bindings overlap their simulated latency on a single thread while
    # preserving AccessHandle cancellation, breaker/bulkhead semantics,
    # page-cache single-flight, and byte-identical rows.
    fabric: str = "thread"
    # Per-host circuit breakers, bulkheads, and (when switched on there)
    # speculative join probing with runtime relevance pruning.
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    # Tiered persistence (repro.store): a directory turns on the bronze/
    # silver/gold store — raw pages and fetch intents to bronze, cache
    # fills to silver, materialized answers to gold — and ``store_warm``
    # loads current-revision silver into the result cache at assembly so
    # a restart answers repeat queries without live fetches.
    store_dir: str | None = None
    store_fsync: bool = False
    store_warm: bool = True
    # Multi-query optimization (repro.mqo): identical in-flight subplans
    # execute once and fan out (fingerprint single-flight), and a query
    # subsumed by a revision-current gold answer is served by filtering
    # stored rows with zero fetches.  Off by default: single-query runs
    # gain nothing, and benchmarks A/B against ``--no-mqo`` cleanly.
    mqo: bool = False

    def __post_init__(self) -> None:
        if self.optimizer not in ("cost", "off"):
            raise ValueError(
                "optimizer must be 'cost' or 'off'; got %r" % (self.optimizer,)
            )
        if self.fabric not in ("thread", "async"):
            raise ValueError(
                "fabric must be 'thread' or 'async'; got %r" % (self.fabric,)
            )


# -- failures ---------------------------------------------------------------------


@dataclass(frozen=True)
class FetchFailure:
    """One VPS fetch that exhausted its retry budget."""

    relation: str
    host: str
    attempts: int
    error: str

    def describe(self) -> str:
        return "%s @ %s: %d attempt(s) failed; last error: %s" % (
            self.relation,
            self.host,
            self.attempts,
            self.error,
        )


class FetchTimeout(TransientNetworkError):
    """A fetch exceeded its per-attempt simulated-network-seconds budget."""


class DeadlineExceeded(WebBaseError):
    """The query's wall-clock deadline expired (or the context was
    cancelled) — a *structured* error: ``stage`` names where the check
    fired (``fetch:<relation>``, ``retry:<relation>``, ``cancelled``),
    ``deadline_seconds`` the budget, ``elapsed_seconds`` the wall time
    spent when it fired.  Deliberately not a
    :class:`~repro.web.browser.TransientNetworkError`: an expired deadline
    must never be retried, it must propagate to the caller."""

    def __init__(
        self,
        stage: str,
        deadline_seconds: float | None,
        elapsed_seconds: float,
    ) -> None:
        self.stage = stage
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds
        if deadline_seconds is None:
            message = "cancelled at %s (%.3fs elapsed)" % (stage, elapsed_seconds)
        else:
            message = "deadline of %.3fs exceeded at %s (%.3fs elapsed)" % (
                deadline_seconds,
                stage,
                elapsed_seconds,
            )
        super().__init__(message)


class FetchFailedError(WebBaseError):
    """A VPS fetch failed after every allowed attempt."""

    def __init__(self, failure: FetchFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


class AccessCancelled(WebBaseError):
    """The access was revoked before it produced a result.

    Raised out of an access whose :class:`AccessHandle` was cancelled —
    by the dependent join pruning a probe whose outer partition emptied,
    or by :meth:`ExecutionContext.cancel`.  Deliberately *not* a
    :class:`~repro.web.browser.NavigationError`: the navigation executor
    must not absorb it into an empty answer, and the retry loop must not
    re-issue a fetch nobody wants anymore."""

    def __init__(self, reason: str = "access cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


class FanoutError(WebBaseError):
    """Several parallel tasks failed; every error is reported, not just
    the first (the ExceptionGroup-style report)."""

    def __init__(self, errors: Sequence[Exception], total: int) -> None:
        self.errors = list(errors)
        lines = ["%d of %d parallel task(s) failed:" % (len(self.errors), total)]
        lines += [
            "  [%d] %s: %s" % (i + 1, type(e).__name__, e)
            for i, e in enumerate(self.errors)
        ]
        super().__init__("\n".join(lines))


# -- access handles ----------------------------------------------------------------


#: Terminal states of an :class:`AccessHandle`.
ACCESS_PENDING = "PENDING"
ACCESS_RUNNING = "RUNNING"
ACCESS_DONE = "DONE"
ACCESS_CANCELLED = "CANCELLED"
ACCESS_SHED = "SHED"
ACCESS_BROKEN = "BROKEN"

ACCESS_TERMINAL = frozenset({ACCESS_DONE, ACCESS_CANCELLED, ACCESS_SHED, ACCESS_BROKEN})


class AccessHandle:
    """One scheduled access to the Web, as a first-class revocable object.

    Every engine fetch — demanded or speculative — is represented by a
    handle carrying the probe bindings that justified it (``given``), so
    the layer that scheduled the access can later decide it is no longer
    relevant and :meth:`cancel` it.  Terminal states:

    * ``DONE`` — the access produced a result (:meth:`result` returns it);
    * ``CANCELLED`` — revoked (pruned probe, cancelled context, expired
      deadline) before completing;
    * ``SHED`` — refused by the resilience layer (open breaker or
      saturated bulkhead) — only ever speculative accesses;
    * ``BROKEN`` — the access itself failed (retry budget exhausted,
      broken site).

    Cancellation is cooperative: a ``PENDING`` handle finishes
    immediately, a ``RUNNING`` one keeps running until its next
    checkpoint (before each page navigation, each retry, and while
    waiting on a coalesced in-flight fetch).  ``DONE`` wins over a late
    cancel — a completed result is never retracted.

    Thread-safe; handles are created by
    :meth:`ExecutionContext.run_fetch` / :meth:`ExecutionContext.speculate`,
    never directly.
    """

    def __init__(
        self,
        relation: str,
        host: str,
        given: dict[str, Any],
        speculative: bool = False,
        owner: "ExecutionContext | None" = None,
    ) -> None:
        self.relation = relation
        self.host = host
        self.given = dict(given)
        self.speculative = speculative
        self.pages = 0  # pages navigated before the handle went terminal
        self.cancel_reason = ""
        self._owner = owner
        self._state = ACCESS_PENDING
        self._value: Any = None
        self._error: BaseException | None = None
        self._cancel = threading.Event()
        self._done = threading.Event()
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return "<AccessHandle %s%s %r %s>" % (
            self.relation,
            " (speculative)" if self.speculative else "",
            self.given,
            self._state,
        )

    @property
    def state(self) -> str:
        return self._state

    @property
    def done(self) -> bool:
        return self._state in ACCESS_TERMINAL

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    @property
    def error(self) -> BaseException | None:
        return self._error

    def cancel(self, reason: str = "access cancelled") -> bool:
        """Revoke the access.  Returns whether the cancel *could* still
        matter: ``False`` when the handle is already terminal (a completed
        result stands), ``True`` when the access was pending (it finishes
        ``CANCELLED`` right here) or running (it stops at its next
        cooperative checkpoint)."""
        finished = False
        with self._lock:
            if self._state in ACCESS_TERMINAL:
                return False
            self.cancel_reason = self.cancel_reason or reason
            self._cancel.set()
            if self._state == ACCESS_PENDING:
                finished = self._finish_locked(
                    ACCESS_CANCELLED, error=AccessCancelled(reason)
                )
        if finished and self._owner is not None:
            self._owner._note_cancelled(self)
        return True

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the handle is terminal (or ``timeout`` elapses)."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The access's result; re-raises its error for any non-``DONE``
        terminal state."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                "access %s still %s after %.3fs" % (self.relation, self._state, timeout)
            )
        if self._state == ACCESS_DONE:
            return self._value
        raise self._error

    # -- engine-side transitions (owner only) --------------------------------

    def _mark_running(self) -> bool:
        with self._lock:
            if self._state in ACCESS_TERMINAL:
                return False
            self._state = ACCESS_RUNNING
            return True

    def _finish_locked(
        self, state: str, value: Any = None, error: BaseException | None = None
    ) -> bool:
        if self._state in ACCESS_TERMINAL:
            return False
        self._state = state
        self._value = value
        self._error = error
        self._done.set()
        return True

    def _finish(
        self, state: str, value: Any = None, error: BaseException | None = None
    ) -> bool:
        with self._lock:
            finished = self._finish_locked(state, value=value, error=error)
        if finished and state == ACCESS_CANCELLED and self._owner is not None:
            self._owner._note_cancelled(self)
        return finished


class AccessBatch:
    """The handles of one :meth:`ExecutionContext.run_fetch_batch` call,
    in ``givens`` order (duplicate bindings share a handle).

    :meth:`results` mirrors the engine's fan-out error semantics: a
    deadline expiry trumps everything, a single failure re-raises as
    itself, several raise one :class:`FanoutError`.
    """

    def __init__(self, handles: "list[AccessHandle]") -> None:
        self.handles = list(handles)

    def __len__(self) -> int:
        return len(self.handles)

    def __iter__(self) -> Iterator[AccessHandle]:
        return iter(self.handles)

    def cancel_pending(self, reason: str = "batch cancelled") -> int:
        """Cancel every non-terminal handle; returns how many accepted."""
        return sum(1 for handle in self.handles if handle.cancel(reason))

    def results(self) -> list[Any]:
        distinct: list[AccessHandle] = []
        seen: set[int] = set()
        for handle in self.handles:
            if id(handle) not in seen:
                seen.add(id(handle))
                distinct.append(handle)
        errors = [h.error for h in distinct if h.error is not None]
        if errors:
            for error in errors:
                if isinstance(error, DeadlineExceeded):
                    raise error
            if len(errors) == 1:
                raise errors[0]
            raise FanoutError(
                [e for e in errors if isinstance(e, Exception)], total=len(distinct)
            )
        return [handle.result() for handle in self.handles]


# -- the trace --------------------------------------------------------------------


@dataclass
class TraceSpan:
    """One node of a query's execution trace.

    ``kind`` is one of ``query | plan | object | view | fetch | attempt``
    (plus ``context`` for a bare context root).  Network seconds and pages
    are recorded on ``fetch`` spans (totals across attempts) and on each
    ``attempt`` child; ``cpu_seconds`` is recorded where it is measured
    (object spans in reports, the root for whole queries).
    """

    kind: str
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["TraceSpan"] = field(default_factory=list)
    status: str = "ok"
    error: str = ""
    network_seconds: float = 0.0
    cpu_seconds: float = 0.0
    pages: int = 0
    cache: str = ""  # "", "hit" or "miss" (fetch spans only)

    def walk(self) -> Iterator["TraceSpan"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def spans(self, kind: str) -> list["TraceSpan"]:
        return [s for s in self.walk() if s.kind == kind]

    @property
    def total_network_seconds(self) -> float:
        """Simulated network seconds across the subtree's fetches."""
        return sum(s.network_seconds for s in self.spans("fetch"))

    @property
    def total_pages(self) -> int:
        return sum(s.pages for s in self.spans("fetch"))

    @property
    def total_retries(self) -> int:
        """Attempts beyond the first, across the subtree's fetches."""
        return sum(
            max(0, int(s.attrs.get("attempts", 1)) - 1) for s in self.spans("fetch")
        )

    def _details(self) -> str:
        bits: list[str] = []
        if self.pages:
            bits.append("%d page(s)" % self.pages)
        if self.network_seconds:
            bits.append("net %.2fs" % self.network_seconds)
        if self.cpu_seconds:
            bits.append("cpu %.3fs" % self.cpu_seconds)
        if self.cache:
            bits.append("cache %s" % self.cache)
        attempts = self.attrs.get("attempts")
        if attempts and attempts > 1:
            bits.append("%d attempts" % attempts)
        for key, value in self.attrs.items():
            if key != "attempts":
                bits.append("%s=%s" % (key, value))
        if self.status != "ok":
            bits.append("FAILED: %s" % (self.error or self.status))
        return ", ".join(bits)

    def render(self, indent: int = 0) -> str:
        """The span tree as an indented text outline."""
        details = self._details()
        line = "%s%s %s%s" % (
            "  " * indent,
            self.kind,
            self.name,
            "  [%s]" % details if details else "",
        )
        return "\n".join([line] + [c.render(indent + 1) for c in self.children])

    def to_dict(self, timings: bool = True) -> dict[str, Any]:
        """The span tree as JSON-friendly nested dicts (``trace
        --export-json``).  ``timings=False`` drops the run-dependent
        numbers, leaving only the structural fields."""
        node: dict[str, Any] = {"kind": self.kind, "name": self.name}
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.status != "ok":
            node["status"] = self.status
            node["error"] = self.error
        if self.cache:
            node["cache"] = self.cache
        if timings:
            node["network_seconds"] = self.network_seconds
            node["cpu_seconds"] = self.cpu_seconds
            node["pages"] = self.pages
        if self.children:
            node["children"] = [c.to_dict(timings=timings) for c in self.children]
        return node

    def skeleton(self, indent: int = 0) -> str:
        """The *normalized* trace: kinds, names, parent/child shape, cache
        flags and statuses — no timings, pages or attempt counts.  This is
        what the golden-trace regression test snapshots: it is stable
        across machines and runs, yet any drift in plan shape, span
        nesting or cache behaviour shows up as a readable text diff."""
        bits = [self.cache] if self.cache else []
        if self.status != "ok":
            bits.append(self.status)
        line = "%s%s %s%s" % (
            "  " * indent,
            self.kind,
            self.name,
            "  [%s]" % ", ".join(bits) if bits else "",
        )
        return "\n".join([line] + [c.skeleton(indent + 1) for c in self.children])


# -- the worker pool ---------------------------------------------------------------


class ExecutorBundle:
    """One worker's private navigation stack: executor + simulated clock.

    Browsers and calculus engines are not shareable between threads, so
    each concurrent fetch lane owns a full stack over the shared server.
    The clock accumulates across fetches assigned to the lane — that is
    exactly the serialization a real connection pool would impose.
    """

    def __init__(self, ident: int, server: WebServer, sites: Iterable["CompiledSite"]) -> None:
        self.ident = ident
        self.clock = SimClock()
        self.executor = NavigationExecutor(server, self.clock)
        for compiled in sites:
            self.executor.add_site(compiled)


class BundlePool:
    """A checkout/checkin pool of :class:`ExecutorBundle` workers.

    Owned by the webbase and shared across queries, so executor
    construction is amortized; a context never holds more bundles than
    its ``max_workers``.
    """

    def __init__(self, server: WebServer, sites: Iterable["CompiledSite"]) -> None:
        self._server = server
        self._sites = list(sites)
        self._idle: list[ExecutorBundle] = []
        self._lock = threading.Lock()
        self._created = 0

    @property
    def server(self) -> WebServer:
        return self._server

    @property
    def sites(self) -> list["CompiledSite"]:
        """The compiled sites every bundle (and the async fabric's
        executor) is loaded with."""
        return list(self._sites)

    @property
    def size(self) -> int:
        return self._created

    def checkout(self) -> ExecutorBundle:
        with self._lock:
            if self._idle:
                return self._idle.pop()
            ident = self._created
            self._created += 1
        return ExecutorBundle(ident, self._server, self._sites)

    def checkin(self, bundle: ExecutorBundle) -> None:
        with self._lock:
            self._idle.append(bundle)


# -- the execution context ---------------------------------------------------------


class ExecutionContext:
    """Per-query execution state: workers, cache, retries, trace.

    Create one per query (``webbase.execution_context()``), or share one
    across several ``query``/``fetch_logical``/``fetch_vps`` calls to pool
    their caching and accounting.  Thread-safe; all fan-out goes through
    :meth:`map`, which preserves submission order so parallel evaluation
    returns exactly the sequential answer.
    """

    def __init__(
        self,
        pool: BundlePool,
        max_workers: int = 8,
        retry: RetryPolicy | None = None,
        timeout_seconds: float | None = None,
        label: str = "context",
        metrics: MetricsRegistry | None = None,
        deadline_seconds: float | None = None,
        wall_clock: Callable[[], float] = monotonic,
        batch_enabled: bool = False,
        page_revisions: Callable[[str], int] | None = None,
        page_stamp_sink: Callable[[str, int], None] | None = None,
        resilience: ResilienceManager | None = None,
        fabric: str = "thread",
        fabric_runtime: "FabricRuntime | None" = None,
    ) -> None:
        self.pool = pool
        self.max_workers = max(1, int(max_workers))
        self.retry = retry or RetryPolicy()
        self.timeout_seconds = timeout_seconds
        self.metrics = metrics or MetricsRegistry()
        # Per-host breakers and bulkheads, shared across the webbase's
        # queries (``None`` = no resilience layer, the bare engine).
        self.resilience = resilience
        # The concurrency fabric: "thread" dispatches fetches to the
        # bundle pool; "async" submits them as coroutines to the shared
        # virtual-time loop in ``fabric_runtime`` (the sync entry points
        # block on a concurrent future, so callers never notice).
        if fabric not in ("thread", "async"):
            raise ValueError("fabric must be 'thread' or 'async'; got %r" % (fabric,))
        if fabric == "async" and fabric_runtime is None:
            raise ValueError("fabric='async' requires a FabricRuntime")
        self.fabric = fabric
        self.fabric_runtime = fabric_runtime
        self._aexec: AsyncNavigationExecutor | None = None
        # Virtual-time watermarks of fabric activity: elapsed in async
        # mode is the window between the first binding's start and the
        # last binding's end on the loop clock.
        self._fabric_earliest: float | None = None
        self._fabric_latest = 0.0
        self._fabric_network_total = 0.0
        # Loop-confined bulkhead accounting (asyncio has no try-acquire):
        # per-host count of in-flight fabric accesses, only ever touched
        # from loop coroutines.
        self._abulk_used: dict[str, int] = {}
        # Cooperative-checkpoint ordinal (cancellation/deadline polls on
        # the fabric).  ``checkpoint_hook`` is a test seam: the
        # interleaving-sweep suite injects cancel() at the Nth checkpoint.
        self._checkpoints = 0
        self.checkpoint_hook: Callable[[int], None] | None = None
        # Batched navigation: one revision-stamped page cache per context
        # (query-scoped — dropped with the context, so cross-query staleness
        # is impossible by construction), shared by every worker bundle the
        # context checks out, plus a speculative prefetcher feeding it.
        # ``page_revisions`` reads a host's current navigation-map revision
        # (wired to ResultCache.revision, bumped by site maintenance).
        self.batch_enabled = bool(batch_enabled)
        self.page_cache: PrefixPageCache | None = None
        self.prefetcher: SpeculativePrefetcher | None = None
        self.speculation_budget: SpeculationBudget | None = None
        if self.batch_enabled:
            self.page_cache = PrefixPageCache(
                revision_of=page_revisions,
                metrics=self.metrics,
                stamp_sink=page_stamp_sink,
            )
            self.speculation_budget = SpeculationBudget(metrics=self.metrics)
            if self.fabric == "async":
                # No thread-pool prefetcher on the fabric: its flights
                # complete on *real* threads, which a virtual-time waiter
                # cannot poll without inflating the loop clock.  The async
                # executor speculates with loop tasks instead; the budget
                # settles through the cache's speculative marking.
                self.page_cache.budget = self.speculation_budget
            else:
                self.prefetcher = SpeculativePrefetcher(
                    pool.server,
                    self.page_cache,
                    metrics=self.metrics,
                    max_workers=self.max_workers,
                    charge=self._charge_lane,
                    admit=self._admit_speculation,
                    budget=self.speculation_budget,
                )
        # Wall-clock deadline: unlike ``timeout_seconds`` (a per-attempt
        # budget in *simulated* network seconds), the deadline bounds the
        # query's *real* elapsed time — the contract a serving client cares
        # about.  ``wall_clock`` is injectable so tests can step time.
        self._wall_clock = wall_clock
        self._started_wall = wall_clock()
        self.deadline_seconds = deadline_seconds
        self._deadline_at = (
            None if deadline_seconds is None else self._started_wall + deadline_seconds
        )
        self._cancelled = threading.Event()
        self.root = TraceSpan("context", label)
        self.failures: list[FetchFailure] = []
        self.network_by_host: dict[str, float] = {}
        self.pages_by_host: dict[str, int] = {}
        self.fetches = 0
        self.retries = 0
        self.cache_hits = 0
        self.cpu_seconds = 0.0
        # Simulated connection lanes.  Each completed fetch is assigned to
        # the least-loaded of ``max_workers`` lanes (online makespan
        # scheduling), so the parallel elapsed model — cpu + busiest lane —
        # reflects the worker budget rather than the accidents of real
        # thread interleaving (the in-process Web costs no real wall time,
        # so real interleaving says nothing about simulated concurrency).
        self._lane_seconds: list[float] = [0.0] * self.max_workers
        # Observed page counts per (relation, bound-attribute signature),
        # feeding the cost-aware batch chunker's weight estimates.
        self._page_stats: dict[tuple, tuple[int, float]] = {}
        self._cache: dict[tuple, "Relation"] = {}
        self._flights: dict[tuple, InFlight] = {}
        self._lock = threading.RLock()
        self._slots = threading.Semaphore(self.max_workers)
        # Speculative probes run on their own slot budget so speculation
        # can never starve demanded fetches of workers.
        self._spec_slots = threading.Semaphore(self.max_workers)
        self._spec_threads: list[threading.Thread] = []
        self._live_handles: dict[int, AccessHandle] = {}
        self._local = threading.local()
        self._cpu_depth = 0
        self._cpu_mark = 0.0

    # -- timing model -------------------------------------------------------

    @property
    def network_seconds_total(self) -> float:
        """Σ network seconds over every fetch — the sequential cost."""
        return sum(self._lane_seconds) + self._fabric_network_total

    @property
    def network_seconds_critical(self) -> float:
        """The busiest lane — the simulated-parallel elapsed network time."""
        return max(self._lane_seconds)

    @property
    def fabric_window_seconds(self) -> float:
        """Virtual seconds between the first fabric binding starting and
        the last finishing — the async fabric's makespan (coroutines
        overlap on the loop clock, so the window, not the sum, is what a
        wall clock would have seen)."""
        with self._lock:
            if self._fabric_earliest is None:
                return 0.0
            return max(0.0, self._fabric_latest - self._fabric_earliest)

    @property
    def elapsed_seconds(self) -> float:
        """Modelled wall time of this context: cpu plus whichever
        concurrency story dominated — the busiest thread lane or the
        fabric's virtual-time window."""
        return self.cpu_seconds + max(
            self.network_seconds_critical, self.fabric_window_seconds
        )

    @property
    def sequential_elapsed_seconds(self) -> float:
        """What the same work would cost with one worker."""
        return self.cpu_seconds + self.network_seconds_total

    # -- deadlines and cancellation -----------------------------------------

    @property
    def wall_elapsed_seconds(self) -> float:
        """Real wall-clock seconds since the context was created."""
        return self._wall_clock() - self._started_wall

    @property
    def deadline_remaining_seconds(self) -> float | None:
        """Wall seconds left before the deadline (``None`` = no deadline)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - self._wall_clock()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def cancel(self, reason: str = "context cancelled") -> None:
        """Abandon the context: every live :class:`AccessHandle` is
        cancelled (pending ones finish immediately; running ones stop at
        their next cooperative checkpoint), and every subsequent deadline
        check raises :class:`DeadlineExceeded`, so outstanding workers
        stop picking up new fetches and fan-outs unwind promptly."""
        self._cancelled.set()
        with self._lock:
            handles = list(self._live_handles.values())
        for handle in handles:
            handle.cancel(reason)

    def check_deadline(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the deadline expired or the
        context was cancelled; record the event as a trace span and count
        it.  The engine calls this before every fetch and before every
        retry attempt, so an expired query stops issuing Web work."""
        expired = self._deadline_at is not None and self._wall_clock() >= self._deadline_at
        if not expired and not self._cancelled.is_set():
            return
        if expired:
            exc = DeadlineExceeded(stage, self.deadline_seconds, self.wall_elapsed_seconds)
        else:
            exc = DeadlineExceeded("cancelled", None, self.wall_elapsed_seconds)
        # One expiry cancels the whole context: sibling workers abandon
        # their remaining fetches at their own next check.
        self._cancelled.set()
        self.metrics.counter("engine.deadline_exceeded").inc()
        span = TraceSpan("deadline", stage, status="error", error=str(exc))
        parent = self.current_span()
        with self._lock:
            parent.children.append(span)
        raise exc

    def check_cancelled(self, stage: str) -> None:
        """The engine's cooperative cancellation checkpoint.

        Raises :class:`AccessCancelled` when any access handle on the
        calling thread's handle stack was cancelled (a revoked probe, or a
        fetch running *under* one), and defers to :meth:`check_deadline`
        when the whole context was cancelled.  Costs nothing — in
        particular, no wall-clock read — on the happy path, so it is safe
        to call from tight polling loops."""
        stack = getattr(self._local, "handles", None)
        if stack:
            for handle in stack:
                if handle.cancel_requested:
                    raise AccessCancelled(
                        handle.cancel_reason or "access cancelled at %s" % stage
                    )
        if self._cancelled.is_set():
            self.check_deadline(stage)

    def _active_handle(self) -> AccessHandle | None:
        stack = getattr(self._local, "handles", None)
        return stack[-1] if stack else None

    def _push_handle(self, handle: AccessHandle) -> None:
        stack = getattr(self._local, "handles", None)
        if stack is None:
            stack = self._local.handles = []
        stack.append(handle)

    def _pop_handle(self, handle: AccessHandle) -> None:
        stack = getattr(self._local, "handles", None)
        if stack and stack[-1] is handle:
            stack.pop()

    def _register_handle(self, handle: AccessHandle) -> None:
        with self._lock:
            self._live_handles[id(handle)] = handle

    def _unregister_handle(self, handle: AccessHandle) -> None:
        with self._lock:
            self._live_handles.pop(id(handle), None)

    def _note_cancelled(self, handle: AccessHandle) -> None:
        """Account one cancelled access: how many pages did revoking it
        save?  Estimated as the typical full-fetch page count (the
        ``engine.fetch_pages`` running mean; 3 when nothing completed yet)
        minus the pages the access had already navigated."""
        self.metrics.counter("resilience.cancelled").inc()
        histogram = self.metrics.histogram("engine.fetch_pages")
        typical = histogram.mean if histogram.count else 3.0
        reclaimed = int(round(max(0.0, typical - handle.pages)))
        if reclaimed:
            self.metrics.counter("resilience.reclaimed_pages").inc(reclaimed)

    def _admit_speculation(self, host: str) -> bool:
        """Whether speculative page prefetch may target ``host`` — not
        once the context is cancelled, and not while the host's circuit
        breaker is open."""
        if self._cancelled.is_set():
            return False
        if self.resilience is not None:
            return self.resilience.allows_speculation(host)
        return True

    def adopt(self, span: TraceSpan) -> None:
        """Make ``span`` the calling thread's current trace span (worker
        threads adopt the fan-out parent before running tasks)."""
        self._local.stack = [span]

    @contextmanager
    def accounted(self) -> Iterator[None]:
        """Accumulate process cpu time into the context (re-entrant)."""
        with self._lock:
            if self._cpu_depth == 0:
                self._cpu_mark = process_time()
            self._cpu_depth += 1
        try:
            yield
        finally:
            with self._lock:
                self._cpu_depth -= 1
                if self._cpu_depth == 0:
                    self.cpu_seconds += process_time() - self._cpu_mark

    # -- tracing -------------------------------------------------------------

    def current_span(self) -> TraceSpan:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else self.root

    @contextmanager
    def span(self, kind: str, name: str, **attrs: Any) -> Iterator[TraceSpan]:
        """Open a child span of the calling thread's current span."""
        parent = self.current_span()
        child = TraceSpan(kind, name, attrs=dict(attrs))
        with self._lock:
            parent.children.append(child)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(child)
        try:
            yield child
        finally:
            stack.pop()

    def failure_report(self) -> str:
        """The per-site partial-failure report."""
        if not self.failures:
            return "no failures"
        lines = ["%d fetch failure(s):" % len(self.failures)]
        lines += ["  " + failure.describe() for failure in self.failures]
        return "\n".join(lines)

    # -- fan-out -------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item, in parallel, preserving item order.

        Errors are collected from *every* worker: a single failure is
        re-raised as itself (so layer semantics like ``BindingError`` are
        preserved); several failures raise one :class:`FanoutError`
        reporting all of them.
        """
        items = list(items)
        if len(items) <= 1 or self.max_workers <= 1:
            return [fn(item) for item in items]
        results: list[Any] = [None] * len(items)
        errors: list[tuple[int, Exception]] = []
        parent = self.current_span()
        pending = list(range(len(items)))

        def worker() -> None:
            self.adopt(parent)
            while True:
                with self._lock:
                    if not pending:
                        return
                    index = pending.pop(0)
                try:
                    results[index] = fn(items[index])
                except Exception as exc:  # noqa: BLE001 - reported in full below
                    with self._lock:
                        errors.append((index, exc))
                    if isinstance(exc, DeadlineExceeded):
                        return  # the context is cancelled; stop taking work

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(min(len(items), self.max_workers))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            errors.sort(key=lambda pair: pair[0])
            # A deadline expiry trumps aggregation: the whole fan-out was
            # abandoned for one reason, so report that reason directly.
            for _, exc in errors:
                if isinstance(exc, DeadlineExceeded):
                    raise exc
            if len(errors) == 1:
                raise errors[0][1]
            raise FanoutError([exc for _, exc in errors], total=len(items))
        return results

    # -- fetching ------------------------------------------------------------

    def _charge_lane(self, seconds: float) -> None:
        """Assign externally spent network seconds (speculative prefetch)
        to the least-loaded simulated connection lane."""
        with self._lock:
            lane = min(range(self.max_workers), key=self._lane_seconds.__getitem__)
            self._lane_seconds[lane] += seconds

    def _install_nav_hooks(self, bundle: ExecutorBundle) -> None:
        """Attach this context's query-scoped page cache and prefetcher to
        a checked-out bundle (no-ops when batching is off)."""
        bundle.executor.page_cache = self.page_cache
        bundle.executor.prefetcher = self.prefetcher

    def _uninstall_nav_hooks(self, bundle: ExecutorBundle) -> None:
        """Detach the hooks before the bundle returns to the shared pool,
        so another context never sees this query's pages."""
        bundle.executor.page_cache = None
        bundle.executor.prefetcher = None

    @staticmethod
    def _fetch_key(relation: "VirtualRelation", given: dict[str, Any]) -> tuple:
        return (
            relation.name,
            tuple(sorted((a, str(v)) for a, v in given.items() if v is not None)),
        )

    # -- cost-aware batch chunking -------------------------------------------

    @staticmethod
    def _binding_signature(given: dict[str, Any]) -> tuple:
        """Which attributes a binding bounds — bindings with the same
        signature run the same handle and navigation shape, so their page
        counts are comparable."""
        return tuple(sorted(a for a, v in given.items() if v is not None))

    def _note_pages(self, relation_name: str, given: dict[str, Any], pages: int) -> None:
        key = (relation_name, self._binding_signature(given))
        with self._lock:
            count, total = self._page_stats.get(key, (0, 0.0))
            self._page_stats[key] = (count + 1, total + pages)

    def _estimate_pages(self, relation_name: str, given: dict[str, Any]) -> float:
        """Expected pages for one binding: the observed mean for its
        (relation, signature), else the context-wide fetch-pages mean,
        else a flat prior."""
        key = (relation_name, self._binding_signature(given))
        with self._lock:
            stat = self._page_stats.get(key)
        if stat is not None and stat[0]:
            return max(stat[1] / stat[0], 0.5)
        histogram = self.metrics.histogram("engine.fetch_pages")
        if histogram.count:
            return max(histogram.mean, 0.5)
        return 3.0

    def plan_batch_chunks(
        self, relation: "VirtualRelation", items: "list[tuple[tuple, dict[str, Any]]]"
    ) -> "list[list[tuple[tuple, dict[str, Any]]]]":
        """Split a batch's distinct bindings into at most ``max_workers``
        chunks, cost-aware on two axes:

        * **prefix co-location** — bindings are ordered by their fetch key
          (sorted bound attribute/value pairs), so bindings that share
          deep navigation prefixes land in the same chunk and their
          session memo absorbs the shared pages;
        * **page balance** — chunk boundaries are cut by cumulative
          *estimated* pages (observed per-signature means), so one chunk
          of heavy bindings no longer paces the whole batch the way naive
          equal-count splitting did.

        Output order does not matter for correctness: callers restore
        ``givens`` order from the fetch-key map.
        """
        workers = max(1, min(self.max_workers, len(items)))
        if workers == 1:
            return [list(items)]
        ordered = sorted(items, key=lambda kv: kv[0])
        weights = [self._estimate_pages(relation.name, given) for _, given in ordered]
        target = sum(weights) / workers
        chunks: "list[list[tuple[tuple, dict[str, Any]]]]" = []
        current: "list[tuple[tuple, dict[str, Any]]]" = []
        acc = 0.0
        for item, weight in zip(ordered, weights):
            current.append(item)
            acc += weight
            if len(chunks) < workers - 1 and acc >= target:
                chunks.append(current)
                current = []
                acc = 0.0
        if current:
            chunks.append(current)
        return chunks

    def run_fetch(
        self,
        relation: "VirtualRelation",
        given: dict[str, Any],
        bundle: ExecutorBundle | None = None,
        speculative: bool | None = None,
    ) -> AccessHandle:
        """Fetch one VPS relation through the engine: per-context cache,
        worker checkout, timeout, bounded retry, trace.

        Returns an :class:`AccessHandle` that is already terminal (the
        fetch runs inline on the calling thread): ``handle.result()``
        yields the relation or re-raises the failure.  The handle exists
        so *other* threads can revoke the access while it runs — the
        dependent join cancels probes whose outer partition emptied, the
        service cancels a query whose deadline expired — and so the
        access's justifying bindings travel with it.

        Concurrent misses on the same ``(relation, bindings)`` key coalesce
        into one upstream fetch (single-flight): the first worker fetches,
        the rest wait and share its result.  A failed fetch is never
        shared — each waiter retries on its own, so transient faults
        cannot fan out into spurious failures or cached garbage.

        ``bundle`` lets a batch session reuse one pre-held worker across
        several bindings (see :meth:`run_fetch_batch`); without it the
        fetch checks a worker out of the pool under the slot semaphore.
        ``speculative`` marks the access sheddable by the resilience
        layer; by default it inherits from the enclosing speculative
        probe, if any.
        """
        if speculative is None:
            active = self._active_handle()
            speculative = active.speculative if active is not None else False
        if self.fabric == "async" and bundle is None:
            return self._run_fetch_fabric(relation, given, speculative)
        handle = AccessHandle(
            relation.name, relation.host, given, speculative=speculative, owner=self
        )
        self._register_handle(handle)
        self._push_handle(handle)
        try:
            if not handle._mark_running():
                return handle  # cancelled before it started
            try:
                result = self._run_fetch_inner(relation, given, bundle, handle)
            except (AccessCancelled, DeadlineExceeded) as exc:
                handle._finish(ACCESS_CANCELLED, error=exc)
            except (CircuitOpenError, BulkheadSaturated) as exc:
                handle._finish(ACCESS_SHED, error=exc)
            except Exception as exc:  # noqa: BLE001 - stored on the handle
                handle._finish(ACCESS_BROKEN, error=exc)
            else:
                handle._finish(ACCESS_DONE, value=result)
            return handle
        finally:
            self._pop_handle(handle)
            self._unregister_handle(handle)

    def _wait_flight(self, flight: InFlight, stage: str) -> None:
        """Wait on another worker's in-flight fetch, staying cancellable."""
        while not flight.event.wait(0.05):
            self.check_cancelled(stage)

    def _run_fetch_inner(
        self,
        relation: "VirtualRelation",
        given: dict[str, Any],
        bundle: ExecutorBundle | None,
        handle: AccessHandle,
    ) -> "Relation":
        key = self._fetch_key(relation, given)
        while True:
            self.check_deadline("fetch:%s" % relation.name)
            self.check_cancelled("fetch:%s" % relation.name)
            leader = False
            with self._lock:
                cached = self._cache.get(key)
                if cached is None:
                    flight = self._flights.get(key)
                    if flight is None:
                        flight = self._flights[key] = InFlight()
                        leader = True
            if cached is not None:
                with self._lock:
                    self.cache_hits += 1
                self.metrics.counter("engine.context_cache_hits").inc()
                with self.span("fetch", relation.name, host=relation.host) as span:
                    span.cache = "hit"
                return cached
            if not leader:
                self.metrics.counter("engine.coalesced").inc()
                self._wait_flight(flight, "fetch:%s" % relation.name)
                continue  # result (or nothing, if the leader failed) is cached now
            try:
                result = self._guarded_fetch(relation, given, bundle, handle)
            except BaseException:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
                raise
            with self._lock:
                self._cache[key] = result
                self._flights.pop(key, None)
            flight.event.set()
            return result

    def _guarded_fetch(
        self,
        relation: "VirtualRelation",
        given: dict[str, Any],
        bundle: ExecutorBundle | None,
        handle: AccessHandle,
    ) -> "Relation":
        """Dispatch one upstream fetch through the resilience gate (when
        the context has one): the host's breaker may shed a speculative
        access, and its bulkhead bounds the host's worker-slot share."""
        if self.resilience is None:
            return self._dispatch_fetch(relation, given, bundle, handle)
        with self.resilience.access(
            relation.host,
            speculative=handle.speculative,
            poll=lambda: self.check_cancelled("bulkhead:%s" % relation.name),
        ):
            return self._dispatch_fetch(relation, given, bundle, handle)

    def _dispatch_fetch(
        self,
        relation: "VirtualRelation",
        given: dict[str, Any],
        bundle: ExecutorBundle | None,
        handle: AccessHandle,
    ) -> "Relation":
        if bundle is not None:
            return self._fetch_with_retries(relation, given, bundle, handle)
        with self._slots:
            owned = self.pool.checkout()
            self._install_nav_hooks(owned)
            try:
                return self._fetch_with_retries(relation, given, owned, handle)
            finally:
                self._uninstall_nav_hooks(owned)
                self.pool.checkin(owned)

    # -- the async fabric ----------------------------------------------------

    def _runtime(self) -> "FabricRuntime":
        runtime = self.fabric_runtime
        if runtime is None:  # pragma: no cover - guarded at construction
            raise RuntimeError("context has no fabric runtime")
        return runtime

    def _async_executor(self) -> AsyncNavigationExecutor:
        """The context's one :class:`AsyncNavigationExecutor`, built
        lazily on the loop (construction never awaits, so coroutines
        cannot race it)."""
        aexec = self._aexec
        if aexec is None:
            aexec = AsyncNavigationExecutor(
                self.pool.server,
                metrics=self.metrics,
                admit=self._admit_speculation,
                budget=self.speculation_budget,
            )
            for compiled in self.pool.sites:
                aexec.add_site(compiled)
            aexec.page_cache = self.page_cache
            self._aexec = aexec
        return aexec

    def _watch_cancel(self, watchers: "list[AccessHandle]", stage: str) -> None:
        """The fabric twin of :meth:`check_cancelled`: the watcher list
        replaces the thread-local handle stack (a coroutine has no
        thread of its own), capturing the enclosing handles at
        submission time."""
        for handle in watchers:
            if handle.cancel_requested:
                raise AccessCancelled(
                    handle.cancel_reason or "access cancelled at %s" % stage
                )
        if self._cancelled.is_set():
            self.check_deadline(stage)

    def _fabric_checkpoint(self, stage: str, watchers: "list[AccessHandle]") -> None:
        """One cooperative checkpoint on the fabric: number it, let the
        test seam fire (the interleaving sweep injects ``cancel()`` at
        exactly the Nth checkpoint), then poll cancellation."""
        with self._lock:
            self._checkpoints += 1
            ordinal = self._checkpoints
        hook = self.checkpoint_hook
        if hook is not None:
            hook(ordinal)
        self._watch_cancel(watchers, stage)

    def _touch_fabric_window(self) -> None:
        """Stamp the fabric activity window with the loop's current
        virtual time (called from loop coroutines only)."""
        now = asyncio.get_running_loop().time()
        with self._lock:
            if self._fabric_earliest is None or now < self._fabric_earliest:
                self._fabric_earliest = now
            if now > self._fabric_latest:
                self._fabric_latest = now

    def _run_fetch_fabric(
        self,
        relation: "VirtualRelation",
        given: dict[str, Any],
        speculative: bool,
    ) -> AccessHandle:
        """One fetch as a fabric coroutine: submit to the loop, block the
        calling thread on the (real-time-cheap) future, return the
        terminal handle — the same contract as the threaded path."""
        handle = AccessHandle(
            relation.name, relation.host, given, speculative=speculative, owner=self
        )
        self._register_handle(handle)
        stack = getattr(self._local, "handles", None) or []
        watchers = list(stack) + [handle]
        parent = self.current_span()
        future = self._runtime().submit(
            self._afetch_binding(relation, given, handle, parent, watchers)
        )
        try:
            future.result()
        finally:
            self._unregister_handle(handle)
        return handle

    async def _afetch_binding(
        self,
        relation: "VirtualRelation",
        given: dict[str, Any],
        handle: AccessHandle,
        parent: TraceSpan,
        watchers: "list[AccessHandle]",
    ) -> None:
        """Drive one binding to its terminal state on the loop, mapping
        exceptions to handle states exactly like :meth:`run_fetch`."""
        if not handle._mark_running():
            return  # cancelled before the loop picked it up
        self._touch_fabric_window()
        try:
            try:
                result = await self._arun_fetch_inner(
                    relation, given, handle, parent, watchers
                )
            except (AccessCancelled, DeadlineExceeded) as exc:
                handle._finish(ACCESS_CANCELLED, error=exc)
            except (CircuitOpenError, BulkheadSaturated) as exc:
                handle._finish(ACCESS_SHED, error=exc)
            except Exception as exc:  # noqa: BLE001 - stored on the handle
                handle._finish(ACCESS_BROKEN, error=exc)
            else:
                handle._finish(ACCESS_DONE, value=result)
        finally:
            self._touch_fabric_window()

    async def _arun_fetch_inner(
        self,
        relation: "VirtualRelation",
        given: dict[str, Any],
        handle: AccessHandle,
        parent: TraceSpan,
        watchers: "list[AccessHandle]",
    ) -> "Relation":
        """The fabric's single-flight loop, sharing the per-context result
        cache and flight table with the threaded path; waiting on a
        coalesced flight polls its event at virtual 50ms — free in real
        time, cancellable at every poll."""
        key = self._fetch_key(relation, given)
        while True:
            self.check_deadline("fetch:%s" % relation.name)
            self._watch_cancel(watchers, "fetch:%s" % relation.name)
            leader = False
            with self._lock:
                cached = self._cache.get(key)
                if cached is None:
                    flight = self._flights.get(key)
                    if flight is None:
                        flight = self._flights[key] = InFlight()
                        leader = True
            if cached is not None:
                with self._lock:
                    self.cache_hits += 1
                self.metrics.counter("engine.context_cache_hits").inc()
                span = TraceSpan("fetch", relation.name, attrs={"host": relation.host})
                span.cache = "hit"
                with self._lock:
                    parent.children.append(span)
                return cached
            if not leader:
                self.metrics.counter("engine.coalesced").inc()
                while not flight.event.is_set():
                    self._fabric_checkpoint("fetch:%s" % relation.name, watchers)
                    await asyncio.sleep(0.05)
                continue  # result (or nothing, if the leader failed) is cached now
            try:
                result = await self._aguarded_fetch(
                    relation, given, handle, parent, watchers
                )
            except BaseException:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
                raise
            with self._lock:
                self._cache[key] = result
                self._flights.pop(key, None)
            flight.event.set()
            return result

    async def _aguarded_fetch(
        self,
        relation: "VirtualRelation",
        given: dict[str, Any],
        handle: AccessHandle,
        parent: TraceSpan,
        watchers: "list[AccessHandle]",
    ) -> "Relation":
        """The resilience gate on the fabric: the breaker half is the
        shared (sync, thread-safe) :meth:`ResilienceManager.admit`; the
        bulkhead half is loop-confined counting — a coroutine must never
        block a thread on the manager's semaphore, so required accesses
        poll at virtual 20ms, exactly the threaded gate's cadence."""
        if self.resilience is None or not self.resilience.policy.enabled:
            return await self._afetch_with_retries(
                relation, given, handle, parent, watchers
            )
        host = relation.host
        self.resilience.admit(host, speculative=handle.speculative)
        limit = self.resilience.policy.bulkhead_per_host
        if limit is None:
            return await self._afetch_with_retries(
                relation, given, handle, parent, watchers
            )
        if self._abulk_used.get(host, 0) >= limit:
            if handle.speculative:
                self.metrics.counter("resilience.bulkhead_shed").inc()
                raise BulkheadSaturated(
                    "bulkhead for host %s is at its limit of %d" % (host, limit)
                )
            self.metrics.counter("resilience.bulkhead_waits").inc()
            while self._abulk_used.get(host, 0) >= limit:
                self._fabric_checkpoint("bulkhead:%s" % relation.name, watchers)
                await asyncio.sleep(0.02)
        self._abulk_used[host] = self._abulk_used.get(host, 0) + 1
        try:
            return await self._afetch_with_retries(
                relation, given, handle, parent, watchers
            )
        finally:
            self._abulk_used[host] -= 1

    async def _afetch_with_retries(
        self,
        relation: "VirtualRelation",
        given: dict[str, Any],
        handle: AccessHandle,
        parent: TraceSpan,
        watchers: "list[AccessHandle]",
    ) -> "Relation":
        """The fabric twin of :meth:`_fetch_with_retries`: identical
        retry/timeout/trace/resilience/accounting semantics, with trace
        spans built by hand (the thread-local span stack would interleave
        across coroutines sharing the loop thread) and backoff awaited as
        virtual time instead of charged to a lane clock."""
        aexec = self._async_executor()
        policy = self.retry
        attempts_allowed = max(1, policy.max_attempts)
        fspan = TraceSpan("fetch", relation.name, attrs={"host": relation.host})
        fspan.cache = "miss"
        with self._lock:
            parent.children.append(fspan)
        pages_total = 0
        seconds_total = 0.0
        last_error: Exception | None = None
        result: "Relation | None" = None
        attempts_used = 0
        run: Any = None

        def checkpoint() -> None:
            # Polled by the executor before every page navigation.
            self._fabric_checkpoint("page:%s" % relation.name, watchers)

        try:
            for attempt in range(1, attempts_allowed + 1):
                attempts_used = attempt
                self.metrics.counter("engine.fetch_attempts").inc()
                if attempt > 1:
                    self.check_deadline("retry:%s" % relation.name)
                    self._watch_cancel(watchers, "retry:%s" % relation.name)
                    delay = policy.delay_before(attempt)
                    seconds_total += delay
                    await asyncio.sleep(delay)
                    with self._lock:
                        self.retries += 1
                    self.metrics.counter("engine.retries").inc()
                run = aexec.new_run(cancel_check=checkpoint)
                aspan = TraceSpan("attempt", "#%d" % attempt)
                fspan.children.append(aspan)
                try:
                    fetched = await relation.afetch(given, executor=aexec, run=run)
                except TransientNetworkError as exc:
                    aspan.network_seconds = run.network_seconds
                    aspan.pages = run.pages
                    aspan.status = "error"
                    aspan.error = str(exc)
                    pages_total += run.pages
                    seconds_total += run.network_seconds
                    last_error = exc
                    if self.resilience is not None:
                        self.resilience.record_failure(relation.host)
                    continue
                aspan.network_seconds = run.network_seconds
                aspan.pages = run.pages
                pages_total += run.pages
                seconds_total += run.network_seconds
                if (
                    self.timeout_seconds is not None
                    and aspan.network_seconds > self.timeout_seconds
                ):
                    aspan.status = "error"
                    aspan.error = "timed out: %.2fs > %.2fs budget" % (
                        aspan.network_seconds,
                        self.timeout_seconds,
                    )
                    last_error = FetchTimeout(aspan.error)
                    if self.resilience is not None:
                        self.resilience.record_failure(relation.host)
                    continue
                if self.resilience is not None:
                    self.resilience.record_success(
                        relation.host, aspan.network_seconds
                    )
                result = fetched
                break
        except AccessCancelled as exc:
            fspan.status = "cancelled"
            fspan.error = str(exc)
            handle.pages = pages_total + (run.pages if run is not None else 0)
            raise
        handle.pages = pages_total
        fspan.network_seconds = seconds_total
        fspan.pages = pages_total
        fspan.attrs["attempts"] = attempts_used
        with self._lock:
            self.fetches += 1
            self.network_by_host[relation.host] = (
                self.network_by_host.get(relation.host, 0.0) + seconds_total
            )
            self.pages_by_host[relation.host] = (
                self.pages_by_host.get(relation.host, 0) + pages_total
            )
            self._fabric_network_total += seconds_total
        self.metrics.counter("engine.fetches").inc()
        self.metrics.histogram("engine.fetch_seconds").observe(seconds_total)
        self.metrics.histogram("engine.fetch_pages").observe(pages_total)
        self._note_pages(relation.name, given, pages_total)
        if result is None:
            fspan.status = "error"
            fspan.error = str(last_error)
            failure = FetchFailure(
                relation=relation.name,
                host=relation.host,
                attempts=attempts_used,
                error=str(last_error),
            )
            with self._lock:
                self.failures.append(failure)
            self.metrics.counter("engine.failures").inc()
            raise FetchFailedError(failure) from last_error
        return result

    def _run_fetch_batch_fabric(
        self,
        relation: "VirtualRelation",
        keyed: "list[tuple[tuple, dict[str, Any]]]",
        items: "list[tuple[tuple, dict[str, Any]]]",
    ) -> AccessBatch:
        """Every distinct binding becomes one fabric coroutine — no
        chunking, no bundle checkout: the loop multiplexes all of them and
        the per-host connection semaphore provides the realistic ceiling.

        The whole batch goes to the loop as *one* submitted coroutine
        that gathers the binding tasks: every task is created inside the
        loop, in ``items`` order, so the interleaving (and with it the
        cooperative-checkpoint ordinals and the virtual-time window) is a
        pure function of the seeded workload — never of how fast the
        submitting thread raced a loop that was already advancing virtual
        time past earlier submissions.  Speculation tasks are drained
        before returning so page accounting is deterministic too."""
        active = self._active_handle()
        speculative = active.speculative if active is not None else False
        stack = getattr(self._local, "handles", None) or []
        parent = self.current_span()
        runtime = self._runtime()
        fetched: dict[tuple, AccessHandle] = {}
        jobs = []
        for key, given in items:
            handle = AccessHandle(
                relation.name,
                relation.host,
                given,
                speculative=speculative,
                owner=self,
            )
            self._register_handle(handle)
            fetched[key] = handle
            watchers = list(stack) + [handle]
            jobs.append(self._afetch_binding(relation, given, handle, parent, watchers))

        async def _drive() -> None:
            await asyncio.gather(*jobs)
            if self._aexec is not None:
                await self._aexec.drain_speculation()

        try:
            runtime.run(_drive())
        finally:
            for key, _ in items:
                self._unregister_handle(fetched[key])
        return AccessBatch([fetched[key] for key, _ in keyed])

    def run_fetch_batch(
        self, relation: "VirtualRelation", givens: list[dict[str, Any]]
    ) -> AccessBatch:
        """Fetch one VPS relation for a whole probe batch; the returned
        :class:`AccessBatch` holds one (already terminal) handle per
        binding, in ``givens`` order (the batched leg of a dependent
        join) — ``batch.results()`` yields the relations.

        The distinct binding keys are split into at most ``max_workers``
        chunks; each chunk checks out one worker bundle and runs its
        bindings inside a single executor :meth:`batch_session`, so the
        compiled program's shared prefix pages memoize across the chunk
        (and, through the query-scoped page cache, across chunks and
        hosts' other fetches too).  Every binding still gets the full
        engine treatment — per-context cache, single-flight, timeout,
        retries, trace spans.  :meth:`AccessBatch.results` mirrors
        :meth:`map`'s failure semantics: one failing binding re-raises as
        itself, several raise a :class:`FanoutError`, and a deadline
        expiry trumps both.
        """
        if not givens:
            return AccessBatch([])
        self.metrics.histogram("nav.batch_size").observe(len(givens))
        if not self.batch_enabled or len(givens) == 1:
            return AccessBatch(self.map(lambda g: self.run_fetch(relation, g), givens))
        keyed = [(self._fetch_key(relation, given), given) for given in givens]
        unique: dict[tuple, dict[str, Any]] = {}
        for key, given in keyed:
            unique.setdefault(key, given)
        items = list(unique.items())
        if self.fabric == "async":
            return self._run_fetch_batch_fabric(relation, keyed, items)
        chunks = self.plan_batch_chunks(relation, items)

        def run_chunk(chunk: list) -> dict:
            out: dict[tuple, AccessHandle] = {}
            # No slot is held across the chunk: a binding may wait on a
            # flight led by a slot-holding worker elsewhere, and parking a
            # slot while waiting could starve that leader (deadlock).
            chunk_bundle = self.pool.checkout()
            self._install_nav_hooks(chunk_bundle)
            try:
                with chunk_bundle.executor.batch_session():
                    for key, chunk_given in chunk:
                        handle = self.run_fetch(
                            relation, chunk_given, bundle=chunk_bundle
                        )
                        out[key] = handle
                        if isinstance(handle.error, DeadlineExceeded):
                            break  # the chunk's remaining bindings are dead
            finally:
                self._uninstall_nav_hooks(chunk_bundle)
                self.pool.checkin(chunk_bundle)
            for key, chunk_given in chunk:
                if key not in out:  # abandoned after the deadline break
                    dead = AccessHandle(
                        relation.name, relation.host, chunk_given, owner=self
                    )
                    dead.cancel("deadline exceeded before the binding ran")
                    out[key] = dead
            return out

        fetched: dict[tuple, AccessHandle] = {}
        for out in self.map(run_chunk, chunks):
            fetched.update(out)
        return AccessBatch([fetched[key] for key, _ in keyed])

    def speculate(
        self,
        fn: Callable[[], Any],
        name: str,
        given: dict[str, Any],
        index: int = 0,
        host: str = "",
    ) -> AccessHandle:
        """Run ``fn`` as a *speculative probe* on a background thread and
        return its (live) :class:`AccessHandle` immediately.

        The dependent join uses this to start inner-side probes before
        the outer finishes: ``given`` records the probe bindings that
        justified the access, so the join can :meth:`~AccessHandle.cancel`
        the handle the moment those bindings prove irrelevant.  Every
        fetch ``fn`` issues inherits the speculative flag (sheddable by
        breakers/bulkheads) and the handle's cancellation.

        Probes run on a separate slot budget (they never starve demanded
        fetches) and probe ``index`` is delayed by ``index ×``
        :attr:`~repro.core.resilience.ResiliencePolicy.speculate_stagger_seconds`
        — cancellation interrupts the delay, so staggered probes that are
        pruned early cost nothing at all.
        """
        handle = AccessHandle(name, host, given, speculative=True, owner=self)
        self._register_handle(handle)
        self.metrics.counter("resilience.speculated").inc()
        parent = self.current_span()
        policy = self.resilience.policy if self.resilience is not None else None
        delay = index * policy.speculate_stagger_seconds if policy is not None else 0.0

        def worker() -> None:
            try:
                if delay > 0.0:
                    handle._cancel.wait(delay)
                acquired = False
                while not handle.cancel_requested and not self._cancelled.is_set():
                    if self._spec_slots.acquire(timeout=0.02):
                        acquired = True
                        break
                if not acquired:
                    handle._finish(
                        ACCESS_CANCELLED,
                        error=AccessCancelled(
                            handle.cancel_reason or "speculative probe cancelled"
                        ),
                    )
                    return
                try:
                    self.adopt(parent)
                    self._push_handle(handle)
                    if not handle._mark_running():
                        return  # cancelled between the slot grant and the start
                    try:
                        value = fn()
                    except (AccessCancelled, DeadlineExceeded) as exc:
                        handle._finish(ACCESS_CANCELLED, error=exc)
                    except (CircuitOpenError, BulkheadSaturated) as exc:
                        handle._finish(ACCESS_SHED, error=exc)
                    except Exception as exc:  # noqa: BLE001 - stored on the handle
                        handle._finish(ACCESS_BROKEN, error=exc)
                    else:
                        handle._finish(ACCESS_DONE, value=value)
                finally:
                    self._pop_handle(handle)
                    self._spec_slots.release()
            finally:
                self._unregister_handle(handle)

        thread = threading.Thread(target=worker, daemon=True)
        with self._lock:
            self._spec_threads.append(thread)
        thread.start()
        return handle

    def drain_speculation(self, timeout: float | None = None) -> None:
        """Join every speculative probe thread started so far (cancelled
        probes unwind at their next checkpoint, so this is prompt)."""
        with self._lock:
            threads = self._spec_threads
            self._spec_threads = []
        for thread in threads:
            thread.join(timeout)

    def _fetch_with_retries(
        self,
        relation: "VirtualRelation",
        given: dict[str, Any],
        bundle: ExecutorBundle,
        handle: AccessHandle | None = None,
    ) -> "Relation":
        policy = self.retry
        attempts_allowed = max(1, policy.max_attempts)
        with self.span("fetch", relation.name, host=relation.host) as fspan:
            fspan.cache = "miss"
            started = bundle.clock.network_seconds
            pages_total = 0
            last_error: Exception | None = None
            result: "Relation | None" = None
            attempts_used = 0
            # A cancelled handle interrupts the navigation between pages:
            # the executor polls this hook before every page fetch.
            bundle.executor.cancel_check = lambda: self.check_cancelled(
                "page:%s" % relation.name
            )
            try:
                for attempt in range(1, attempts_allowed + 1):
                    attempts_used = attempt
                    self.metrics.counter("engine.fetch_attempts").inc()
                    if attempt > 1:
                        # The deadline is re-checked between retries, so a dying
                        # query stops burning its retry budget on a lost cause —
                        # and so is cancellation, so a revoked access never
                        # spends backoff on a fetch nobody wants.
                        self.check_deadline("retry:%s" % relation.name)
                        self.check_cancelled("retry:%s" % relation.name)
                        bundle.clock.charge(policy.delay_before(attempt))
                        with self._lock:
                            self.retries += 1
                        self.metrics.counter("engine.retries").inc()
                    attempt_start = bundle.clock.network_seconds
                    with self.span("attempt", "#%d" % attempt) as aspan:
                        try:
                            fetched = relation.fetch(given, executor=bundle.executor)
                        except TransientNetworkError as exc:
                            aspan.network_seconds = (
                                bundle.clock.network_seconds - attempt_start
                            )
                            aspan.pages = bundle.executor.pages_last_fetch
                            aspan.status = "error"
                            aspan.error = str(exc)
                            pages_total += aspan.pages
                            last_error = exc
                            if self.resilience is not None:
                                self.resilience.record_failure(relation.host)
                            continue
                        aspan.network_seconds = (
                            bundle.clock.network_seconds - attempt_start
                        )
                        aspan.pages = bundle.executor.pages_last_fetch
                        pages_total += aspan.pages
                        if (
                            self.timeout_seconds is not None
                            and aspan.network_seconds > self.timeout_seconds
                        ):
                            aspan.status = "error"
                            aspan.error = "timed out: %.2fs > %.2fs budget" % (
                                aspan.network_seconds,
                                self.timeout_seconds,
                            )
                            last_error = FetchTimeout(aspan.error)
                            if self.resilience is not None:
                                self.resilience.record_failure(relation.host)
                            continue
                        if self.resilience is not None:
                            self.resilience.record_success(
                                relation.host, aspan.network_seconds
                            )
                    result = fetched
                    break
            except AccessCancelled as exc:
                fspan.status = "cancelled"
                fspan.error = str(exc)
                if handle is not None:
                    handle.pages = pages_total + bundle.executor.pages_last_fetch
                raise
            finally:
                bundle.executor.cancel_check = None
            if handle is not None:
                handle.pages = pages_total
            total = bundle.clock.network_seconds - started
            fspan.network_seconds = total
            fspan.pages = pages_total
            fspan.attrs["attempts"] = attempts_used
            with self._lock:
                self.fetches += 1
                self.network_by_host[relation.host] = (
                    self.network_by_host.get(relation.host, 0.0) + total
                )
                self.pages_by_host[relation.host] = (
                    self.pages_by_host.get(relation.host, 0) + pages_total
                )
                lane = min(range(self.max_workers), key=self._lane_seconds.__getitem__)
                self._lane_seconds[lane] += total
            self.metrics.counter("engine.fetches").inc()
            self.metrics.histogram("engine.fetch_seconds").observe(total)
            self.metrics.histogram("engine.fetch_pages").observe(pages_total)
            self._note_pages(relation.name, given, pages_total)
            if result is None:
                fspan.status = "error"
                fspan.error = str(last_error)
                failure = FetchFailure(
                    relation=relation.name,
                    host=relation.host,
                    attempts=attempts_used,
                    error=str(last_error),
                )
                with self._lock:
                    self.failures.append(failure)
                self.metrics.counter("engine.failures").inc()
                raise FetchFailedError(failure) from last_error
            return result
