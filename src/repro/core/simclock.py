"""Deterministic simulated time for the async navigation fabric.

The fabric multiplexes thousands of in-flight page navigations on one
event loop.  Testing (and benchmarking) that kind of concurrency with
real wall-clock sleeps would be slow *and* flaky, so the fabric never
runs on a real clock: it runs on a :class:`SimLoop`, a selector-driven
``asyncio`` event loop whose clock is **virtual**.

The trick is the selector.  ``asyncio``'s loop asks its selector to wait
``timeout`` seconds for I/O, where ``timeout`` is the gap to the next
scheduled timer.  :class:`_VirtualTimeSelector` never actually waits for
a timer: it *advances the virtual clock by the gap* and polls.  The
consequences:

* ``await asyncio.sleep(latency)`` costs zero real time but exactly
  ``latency`` virtual seconds — so simulated network waits overlap
  across every in-flight task, and the loop's elapsed virtual time *is*
  the workload's simulated makespan;
* callback ordering is the loop's deterministic FIFO/heap order, so a
  run is reproducible: same submissions, same virtual timestamps, same
  interleaving, run after run — which is what lets a failing seed be
  replayed and shrunk;
* when the loop is idle (no timers, no ready callbacks) the selector
  really blocks, so a :class:`FabricRuntime` thread parks cheaply until
  ``call_soon_threadsafe`` wakes it with new work.

:class:`SimulationPlan` packages the *other* half of a deterministic
concurrency test: every random choice — fault plans, host latency
spikes, cancellation points, binding sets — derived from one seed via
named streams, so ``REPRO_TEST_SEED=1234`` replays a failure exactly.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import random
import selectors
import threading
from typing import Any, Callable, Coroutine, Mapping, Sequence


class VirtualClock:
    """A monotonic virtual-time counter (seconds, starts at zero)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now.  Time never rewinds."""
        if seconds < 0:
            raise ValueError("cannot advance time by %r" % seconds)
        self._now += seconds
        return self._now


class _VirtualTimeSelector(selectors.BaseSelector):
    """A selector that converts timer waits into virtual-time advances.

    Wraps a real selector for the file-descriptor plumbing the loop
    needs (its self-pipe, in particular, which is how other threads wake
    it).  A ``select(timeout)`` with a positive timeout means "the next
    timer is ``timeout`` seconds away and there is nothing ready": the
    wrapper advances the loop's virtual clock by exactly that gap and
    polls instead of sleeping.  A ``select(None)`` means the loop is
    truly idle, so it really blocks until woken.
    """

    def __init__(self, loop: "SimLoop") -> None:
        self._loop = loop
        self._real = selectors.DefaultSelector()

    def register(self, fileobj, events, data=None):
        return self._real.register(fileobj, events, data)

    def unregister(self, fileobj):
        return self._real.unregister(fileobj)

    def modify(self, fileobj, events, data=None):
        return self._real.modify(fileobj, events, data)

    def select(self, timeout=None):
        if timeout is not None and timeout > 0:
            self._loop.clock.advance(timeout)
            timeout = 0
        return self._real.select(timeout)

    def close(self):
        return self._real.close()

    def get_key(self, fileobj):
        return self._real.get_key(fileobj)

    def get_map(self):
        return self._real.get_map()


class SimLoop(asyncio.SelectorEventLoop):
    """A selector event loop running on virtual time.

    ``loop.time()`` reads a :class:`VirtualClock` that only moves when
    the loop would otherwise wait for a timer, so sleeps are free in
    real time and additive only along the simulated critical path.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = VirtualClock(start)
        super().__init__(_VirtualTimeSelector(self))

    def time(self) -> float:
        return self.clock.now


class FabricRuntime:
    """One :class:`SimLoop` on a dedicated daemon thread.

    The execution engine's client threads stay synchronous: they
    :meth:`submit` coroutines and block on ordinary futures while the
    loop multiplexes every in-flight navigation in virtual time.  Since
    virtual waits cost no real time, submitted work completes promptly
    in wall-clock terms no matter how much simulated latency it spans.

    Shared across queries (one runtime per webbase): virtual time is
    monotone across the webbase's life, like a real deployment's clock.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.loop = SimLoop(start)
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="fabric-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._started.set)
        try:
            self.loop.run_forever()
            self.loop.run_until_complete(self.loop.shutdown_asyncgens())
        finally:
            self.loop.close()

    @property
    def now(self) -> float:
        """Current virtual time (seconds since the runtime started)."""
        return self.loop.time()

    def submit(self, coro: Coroutine[Any, Any, Any]) -> concurrent.futures.Future:
        """Schedule ``coro`` on the fabric loop; returns a waitable future."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def run(self, coro: Coroutine[Any, Any, Any], timeout: float | None = None) -> Any:
        """Submit and wait.  ``timeout`` is *real* seconds — virtual waits
        are free, so a healthy fabric returns promptly and a generous
        real-time bound only ever fires on a genuine deadlock."""
        return self.submit(coro).result(timeout)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the loop and join the thread (idempotent)."""
        if not self._thread.is_alive():
            return
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout)


class SimulationPlan:
    """Every random choice of one simulation scenario, from one seed.

    Streams are named, so adding a new random decision to a test never
    perturbs the existing ones (``plan.rng("faults")`` is independent of
    ``plan.rng("bindings")``), and a failure report that prints the seed
    is a complete reproduction recipe.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def __repr__(self) -> str:
        return "SimulationPlan(seed=%d)" % self.seed

    def rng(self, stream: str) -> random.Random:
        """An independent, deterministic RNG for one named stream."""
        return random.Random("%d:%s" % (self.seed, stream))

    def derive(self, stream: str) -> "SimulationPlan":
        """A sub-plan (its streams independent of this plan's)."""
        return SimulationPlan(self.rng(stream).randrange(2**31))

    def fault_plan(
        self,
        error_rates: Sequence[float] = (0.0, 0.1, 0.25),
        spike_rates: Sequence[float] = (0.0, 0.2),
        spike_seconds: float = 4.0,
        hosts: Sequence[str] | None = None,
    ) -> Any:
        """A seeded :class:`~repro.web.server.FaultPlan` drawn from the
        given rate menus (import deferred: core must not require web at
        module load)."""
        from repro.web.server import FaultPlan

        rng = self.rng("faults")
        return FaultPlan(
            seed=rng.randrange(2**31),
            error_rate=rng.choice(list(error_rates)),
            spike_rate=rng.choice(list(spike_rates)),
            spike_seconds=spike_seconds,
            hosts=tuple(hosts) if hosts is not None else None,
        )

    def latencies(
        self,
        hosts: Sequence[str],
        rtt_range: tuple[float, float] = (0.1, 0.8),
        per_kilobyte: float = 0.012,
    ) -> Mapping[str, Any]:
        """A per-host latency table (each host's RTT drawn independently)."""
        from repro.web.clock import LatencyModel

        rng = self.rng("latencies")
        return {
            host: LatencyModel(
                rtt=round(rng.uniform(*rtt_range), 3), per_kilobyte=per_kilobyte
            )
            for host in sorted(hosts)
        }

    def cancel_point(self, checkpoints: int) -> int:
        """Which cooperative checkpoint a cancellation test fires at."""
        if checkpoints <= 0:
            return 0
        return self.rng("cancel").randrange(checkpoints)


def checkpoint_injector(
    fire_at: int, action: Callable[[], None]
) -> Callable[[int], None]:
    """A fabric checkpoint hook that runs ``action`` exactly once, at the
    ``fire_at``-th checkpoint — the interleaving-sweep harness's way of
    driving ``cancel()`` at every await point of a batch, one run per
    point, deterministically."""
    fired = [False]

    def hook(ordinal: int) -> None:
        if not fired[0] and ordinal >= fire_at:
            fired[0] = True
            action()

    return hook
