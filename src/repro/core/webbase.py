"""The webbase facade: the paper's architecture, assembled.

:class:`WebBase` wires the three layers together over a simulated Web:

* the designer sessions build navigation maps by example;
* the maps compile into navigation expressions and handles — the
  **virtual physical schema**;
* Table 2's view definitions form the **logical schema** (optionally
  behind a result cache);
* the UsedCarUR concept hierarchy and compatibility rules form the
  **external schema**, queried with ``SELECT ... WHERE ...``.

>>> webbase = WebBase.build()
>>> answers = webbase.query("SELECT make, model, price WHERE make = 'ford' AND model = 'escort'")
"""

from __future__ import annotations

from typing import Any

from repro.core.sessions import build_all_builders
from repro.logical import car_logical_schema
from repro.logical.schema import LogicalSchema
from repro.navigation.builder import MapBuilder
from repro.navigation.compiler import CompiledSite, compile_map
from repro.navigation.executor import NavigationExecutor
from repro.relational.relation import Relation
from repro.sites.world import World, build_world
from repro.ur.planner import StructuredUR, URPlan
from repro.ur.usedcars import build_used_car_ur
from repro.vps.cache import CachingVps
from repro.vps.schema import VpsSchema


class WebBase:
    """A fully assembled webbase over the simulated car-domain Web."""

    def __init__(self, world: World, caching: bool = False) -> None:
        self.world = world
        self.builders: dict[str, MapBuilder] = build_all_builders(world)
        self.compiled: dict[str, CompiledSite] = {
            host: compile_map(builder.map) for host, builder in self.builders.items()
        }
        self.executor = NavigationExecutor(world.server)
        self.vps = VpsSchema(self.executor)
        for compiled in self.compiled.values():
            self.vps.add_compiled_site(compiled)
        self.cache: CachingVps | None = CachingVps(self.vps) if caching else None
        self.logical: LogicalSchema = car_logical_schema(self.cache or self.vps)
        self.ur: StructuredUR = build_used_car_ur(self.logical)

    @classmethod
    def build(
        cls, seed: int = 1999, ads_per_host: int = 120, caching: bool = False
    ) -> "WebBase":
        """Build the simulated Web and assemble the webbase over it."""
        return cls(build_world(seed=seed, ads_per_host=ads_per_host), caching=caching)

    # -- querying, layer by layer ------------------------------------------------

    def query(self, text: str) -> Relation:
        """Answer an end-user query against the universal relation."""
        return self.ur.answer(text)

    def plan(self, text: str) -> URPlan:
        """Show how a UR query decomposes into maximal objects."""
        return self.ur.plan(text)

    def query_report(self, text: str):
        """Answer a query with per-object provenance and cost accounting."""
        from repro.core.report import run_with_report

        return run_with_report(self, text)

    def fetch_logical(self, name: str, given: dict[str, Any]) -> Relation:
        """Query one logical relation directly (site-independent view)."""
        return self.logical.fetch(name, given)

    def fetch_vps(self, name: str, given: dict[str, Any]) -> Relation:
        """Query one VPS relation directly (one site's form interface)."""
        return (self.cache or self.vps).fetch(name, given)

    # -- introspection ---------------------------------------------------------------

    def vps_summary(self) -> str:
        lines = ["virtual physical schema (%d relations):" % len(self.vps.relations)]
        for name in self.vps.relation_names:
            relation = self.vps.relation(name)
            handles = "; ".join(
                "mandatory=%s optional=%s"
                % (sorted(h.mandatory), sorted(h.selection - h.mandatory))
                for h in relation.handles
            )
            lines.append(
                "  %s(%s) @ %s  [%s]"
                % (name, ", ".join(relation.schema), relation.host, handles)
            )
        return "\n".join(lines)

    def logical_summary(self) -> str:
        lines = ["logical schema (%d relations):" % len(self.logical.relations)]
        for name in self.logical.relation_names:
            relation = self.logical.relation(name)
            lines.append(
                "  %s(%s)  bindings=%s"
                % (
                    name,
                    ", ".join(relation.schema),
                    [sorted(m) for m in relation.binding_sets],
                )
            )
        return "\n".join(lines)

    def navigation_expression(self, relation: str) -> str:
        """The compiled Transaction F-logic program for a VPS relation —
        the expressions 'nobody, except the system builder, needs to see'."""
        return self.vps.relation(relation).handles[0].expression
