"""The webbase facade: the paper's architecture, assembled.

:class:`WebBase` wires the three layers together over a simulated Web:

* the designer sessions build navigation maps by example;
* the maps compile into navigation expressions and handles — the
  **virtual physical schema**;
* Table 2's view definitions form the **logical schema**, behind the
  always-present result-cache layer (a :class:`~repro.vps.cache.CachePolicy`
  decides whether it stores anything);
* the UsedCarUR concept hierarchy and compatibility rules form the
  **external schema**, queried with ``SELECT ... WHERE ...``.

Queries run on the parallel execution engine: every facade call gets (or
shares) an :class:`~repro.core.execution.ExecutionContext` that fans
independent fetches across a worker pool, retries transient failures, and
records a structured trace.  Assembly is driven by one
:class:`~repro.core.execution.WebBaseConfig` value::

>>> webbase = WebBase.create(WebBaseConfig(max_workers=4))
>>> answers = webbase.query("SELECT make, model, price WHERE make = 'ford' AND model = 'escort'")
"""

from __future__ import annotations

from typing import Any

from repro.core.execution import (
    BundlePool,
    ExecutionContext,
    RetryPolicy,
    WebBaseConfig,
)
from repro.core.metrics import MetricsRegistry
from repro.core.resilience import ResilienceManager
from repro.core.sessions import build_all_builders
from repro.logical import car_logical_schema
from repro.logical.mapping import car_catalog_stats
from repro.logical.schema import LogicalSchema
from repro.relational.cost import observe_trace
from repro.navigation.builder import MapBuilder
from repro.navigation.compiler import CompiledSite, compile_map
from repro.navigation.executor import NavigationExecutor
from repro.relational.relation import Relation
from repro.sites.world import World, build_world
from repro.ur.planner import StructuredUR, URPlan
from repro.ur.usedcars import build_used_car_ur
from repro.vps.cache import ResultCache
from repro.vps.schema import VpsSchema


class WebBase:
    """A fully assembled webbase over the simulated car-domain Web."""

    def __init__(self, world: World, config: WebBaseConfig | None = None) -> None:
        self.config = config = config or WebBaseConfig()
        self.world = world
        self.builders: dict[str, MapBuilder] = build_all_builders(world)
        self.compiled: dict[str, CompiledSite] = {
            host: compile_map(builder.map) for host, builder in self.builders.items()
        }
        self.executor = NavigationExecutor(world.server)
        self.vps = VpsSchema(self.executor)
        for compiled in self.compiled.values():
            self.vps.add_compiled_site(compiled)
        self.pool = BundlePool(world.server, self.compiled.values())
        # One registry spans the whole webbase: the cache and every
        # execution context count into it, so cache/fetch totals reconcile
        # with trace spans (``python -m repro metrics``).  Strict: an
        # off-scheme metric name is a bug, caught on first touch.
        self.metrics = MetricsRegistry(strict=True)
        self.cache: ResultCache = ResultCache(
            self.vps, config.cache, metrics=self.metrics
        )
        # Per-host circuit breakers and bulkheads, shared by every
        # execution context; breaker trips feed the cache's quarantine.
        self.resilience = ResilienceManager(
            config.resilience, metrics=self.metrics, cache=self.cache
        )
        self.logical: LogicalSchema = car_logical_schema(self.cache)
        self.ur: StructuredUR = build_used_car_ur(
            self.logical,
            optimizer=config.optimizer,
            stats=car_catalog_stats(self.logical, config.ads_per_host),
            metrics=self.metrics,
        )
        if config.faults is not None:
            world.server.install_faults(config.faults)
        # The shared virtual-time event loop for the async navigation
        # fabric, built on demand (``config.fabric == "async"``) and
        # shared by every context so their bindings multiplex together.
        self.fabric_runtime: Any = None
        # The engine context behind the most recent facade call that made
        # its own — the place to look for the trace and the cost accounting.
        self.last_context: ExecutionContext | None = None
        # Maintenance sweeps publish their findings here (change-data
        # capture); the service's standing-query registry subscribes.
        from repro.store.cdc import DeltaFeed

        self.cdc = DeltaFeed()
        # Optional cluster cache federation (attach_federation).
        self.federation: Any = None
        # Multi-query optimization (repro.mqo): in-flight subplan sharing
        # plus containment reuse of gold answers.  ``None`` when off.
        self.mqo: Any = None
        if config.mqo:
            from repro.mqo.optimizer import MultiQueryOptimizer

            self.mqo = MultiQueryOptimizer(self)
        # Optional tiered persistence underneath the whole stack.
        self.store: Any = None
        if config.store_dir:
            from repro.store.tiered import TieredStore

            self.attach_store(
                TieredStore(
                    config.store_dir,
                    fsync=config.store_fsync,
                    metrics=self.metrics,
                ),
                warm=config.store_warm,
            )

    def attach_store(self, store: Any, warm: bool = True) -> None:
        """Layer a tiered store under the webbase: bronze records every
        served page, silver mirrors cache fills, gold materializes
        answers; ``warm`` loads current-revision silver into the cache so
        a restart answers repeat queries without live fetches.

        Silver segments are stamped with the *navigation-map revision*
        they were extracted under, so before warming, any host whose
        freshly built map differs from the persisted one (the site moved
        while the store was closed) gets its revision bumped — its stale
        segments are then skipped by the revision check, never by
        eviction order."""
        from repro.navigation.serialize import map_to_dict

        self.store = store
        self.cache.attach_store(store)
        persisted = store.load_navmaps()
        for host, builder in sorted(self.builders.items()):
            old = persisted.get(host)
            if old is not None and map_to_dict(old) != map_to_dict(builder.map):
                self.cache.bump_revision(host)
        store.save_navmaps({h: b.map for h, b in self.builders.items()})
        self.world.server.page_sink = store.record_page
        if warm:
            self.cache.warm_from_store()

    def attach_federation(self, federation: Any) -> None:
        """Join a cluster's cross-shard cache federation: this webbase's
        result cache consults it before live fetches and publishes its
        fills and revision bumps to it (see
        :mod:`repro.cluster.federation`).  Strictly fail-open — a dead
        federation degrades to the local cache, never to an error."""
        self.federation = federation
        self.cache.federation = federation

    def adopt_store_dir(self, store_dir: str) -> dict[str, Any]:
        """Shard takeover: warm this webbase from a *dead sibling's*
        tiered store directory.

        Adopts the sibling's navigation-map revisions (max-merge — never
        backwards), warms its current-revision silver segments into the
        result cache, and returns its persisted standing queries for the
        service layer to merge (``"standing"`` in the result).  The
        foreign store is opened read-only-in-spirit and closed again; its
        logs are never adopted as this webbase's own write path."""
        from repro.store.tiered import TieredStore

        foreign = TieredStore(store_dir, fsync=False)
        try:
            revisions = foreign.revisions()
            adopted = 0
            for host, revision in sorted(revisions.items()):
                if self.cache.adopt_revision(host, revision):
                    adopted += 1
            for host in sorted(foreign.quarantined()):
                self.cache.quarantine(host)
            warmed = self.cache.warm_from_store(store=foreign)
            standing = foreign.standing_queries()
        finally:
            foreign.close()
        return {
            "store_dir": store_dir,
            "revisions_adopted": adopted,
            "warmed": warmed,
            "standing": standing,
        }

    @classmethod
    def create(cls, config: WebBaseConfig | None = None) -> "WebBase":
        """Build the simulated Web per ``config`` and assemble the webbase
        (the canonical constructor)."""
        config = config or WebBaseConfig()
        world = build_world(seed=config.seed, ads_per_host=config.ads_per_host)
        return cls(world, config=config)

    # -- the execution engine ---------------------------------------------------

    def execution_context(
        self,
        label: str = "query",
        max_workers: int | None = None,
        retry: RetryPolicy | None = None,
        timeout_seconds: float | None = None,
        deadline_seconds: float | None = None,
    ) -> ExecutionContext:
        """A fresh per-query engine context, defaulting to the webbase
        config's worker/retry/timeout policies.  ``deadline_seconds``
        bounds the query's wall-clock time (checked before each fetch and
        between retries).  Pass the same context to several facade calls
        to pool their workers, per-context cache, accounting and trace."""
        config = self.config
        ctx = ExecutionContext(
            self.pool,
            max_workers=config.max_workers if max_workers is None else max_workers,
            retry=retry or config.retry,
            timeout_seconds=(
                config.timeout_seconds if timeout_seconds is None else timeout_seconds
            ),
            label=label,
            metrics=self.metrics,
            deadline_seconds=deadline_seconds,
            batch_enabled=config.batch,
            page_revisions=self.cache.revision,
            page_stamp_sink=(
                None
                if self.federation is None
                else getattr(self.federation, "page_stamp", None)
            ),
            resilience=self.resilience,
            fabric=config.fabric,
            fabric_runtime=self._fabric_runtime(),
        )
        # Plan-level single-flight: the UR evaluator routes each maximal
        # object through the shared registry when one is attached.
        ctx.mqo_registry = None if self.mqo is None else self.mqo.registry
        return ctx

    def _fabric_runtime(self):
        """The webbase's one virtual-time loop (``None`` in thread mode)."""
        if self.config.fabric != "async":
            return None
        if self.fabric_runtime is None:
            from repro.core.simclock import FabricRuntime

            self.fabric_runtime = FabricRuntime()
        return self.fabric_runtime

    # -- maintenance -------------------------------------------------------------

    def run_maintenance(self, host: str | None = None):
        """One maintenance cycle over the mapped sites (or just ``host``):
        re-check each navigation map against the live site, absorb the
        auto-applicable changes, and drive the result cache's invalidation
        — revision bumps for absorbed changes, quarantine for changes that
        need the designer.  Returns the non-clean reports by host."""
        from repro.navigation.maintenance import reconcile_site
        from repro.web.browser import Browser

        reports = {}
        for site_host, builder in sorted(self.builders.items()):
            if host is not None and site_host != host:
                continue
            report = reconcile_site(
                builder.map,
                Browser(self.world.server),
                invalidation=self.cache,
                cdc=self.cdc,
            )
            if not report.clean:
                reports[site_host] = report
        if reports and self.store is not None:
            # Absorbed auto changes edited the maps in place; keep the
            # persisted maps (the rebuild path's compilation source and
            # the next restart's drift baseline) in step.
            self.store.save_navmaps({h: b.map for h, b in self.builders.items()})
        return reports

    # -- querying, layer by layer ------------------------------------------------

    def query(self, text: str, context: ExecutionContext | None = None) -> Relation:
        """Answer an end-user query against the universal relation."""
        if context is None and self.mqo is not None:
            # Containment first: a revision-current gold answer that
            # subsumes this query serves it with zero fetches.
            subsumed = self.mqo.subsume(text)
            if subsumed is not None:
                return subsumed
        ctx = context or self.execution_context(label=text)
        self.last_context = ctx
        with ctx.accounted(), ctx.span("query", text):
            with ctx.span("plan", "ur") as span:
                plan = self.ur.plan(text)
                span.attrs["objects"] = len(plan.objects)
                span.attrs["feasible"] = len(plan.feasible_objects)
                span.attrs["optimizer"] = plan.optimizer
                plan.record_spans(ctx)
            answer = self.ur.answer(text, plan=plan, context=ctx)
        if context is None:
            # Feed the fresh trace's access/fetch counts back into the
            # planner's live statistics (a shared context is observed by
            # whoever owns it, to avoid double counting).
            observe_trace(self.metrics, ctx.root)
            if self.store is not None:
                # Gold: materialize the answer with the revision vector of
                # every host it touched — the same bumps that evict the
                # cache invalidate it.  Only for contexts this call owns;
                # a shared context's spans straddle several queries.
                hosts = sorted(
                    {
                        span.attrs.get("host", "")
                        for span in ctx.root.spans("fetch")
                    }
                    - {""}
                )
                self.store.persist_answer(
                    text, answer, {h: self.cache.revision(h) for h in hosts}
                )
        return answer

    def query_stream(self, text: str, context: ExecutionContext | None = None):
        """Answer a query *incrementally*: yields ``(ObjectPlan, Relation)``
        pairs as each maximal object completes (the serving path — see
        :meth:`repro.ur.planner.StructuredUR.answer_stream`).  Rows may
        repeat across objects; callers that need exact ``query`` semantics
        deduplicate (the service layer does)."""
        ctx = context or self.execution_context(label=text)
        self.last_context = ctx
        with ctx.accounted(), ctx.span("query", text):
            with ctx.span("plan", "ur") as span:
                plan = self.ur.plan(text)
                span.attrs["objects"] = len(plan.objects)
                span.attrs["feasible"] = len(plan.feasible_objects)
                span.attrs["optimizer"] = plan.optimizer
                plan.record_spans(ctx)
            for obj, piece in self.ur.answer_stream(text, plan=plan, context=ctx):
                if piece is not None:
                    yield obj, piece
        if context is None:
            observe_trace(self.metrics, ctx.root)

    def explain(self, text: str):
        """Plan and run a query, pairing the planner's per-node fetch
        estimates with the measured counts (``python -m repro explain``)."""
        from repro.core.explain import explain

        return explain(self, text)

    def plan(self, text: str) -> URPlan:
        """Show how a UR query decomposes into maximal objects."""
        return self.ur.plan(text)

    def query_report(self, text: str, context: ExecutionContext | None = None):
        """Answer a query with per-object provenance, cost accounting, and
        the engine's structured trace."""
        from repro.core.report import run_with_report

        return run_with_report(self, text, context=context)

    def fetch_logical(
        self,
        name: str,
        given: dict[str, Any],
        context: ExecutionContext | None = None,
    ) -> Relation:
        """Query one logical relation directly (site-independent view)."""
        ctx = context or self.execution_context(label="logical:%s" % name)
        self.last_context = ctx
        with ctx.accounted():
            return self.logical.fetch(name, given, context=ctx)

    def fetch_vps(
        self,
        name: str,
        given: dict[str, Any],
        context: ExecutionContext | None = None,
    ) -> Relation:
        """Query one VPS relation directly (one site's form interface)."""
        ctx = context or self.execution_context(label="vps:%s" % name)
        self.last_context = ctx
        with ctx.accounted():
            return self.cache.fetch(name, given, context=ctx)

    # -- introspection ---------------------------------------------------------------

    def vps_summary(self) -> str:
        lines = ["virtual physical schema (%d relations):" % len(self.vps.relations)]
        for name in self.vps.relation_names:
            relation = self.vps.relation(name)
            handles = "; ".join(
                "mandatory=%s optional=%s"
                % (sorted(h.mandatory), sorted(h.selection - h.mandatory))
                for h in relation.handles
            )
            lines.append(
                "  %s(%s) @ %s  [%s]"
                % (name, ", ".join(relation.schema), relation.host, handles)
            )
        return "\n".join(lines)

    def logical_summary(self) -> str:
        lines = ["logical schema (%d relations):" % len(self.logical.relations)]
        for name in self.logical.relation_names:
            relation = self.logical.relation(name)
            lines.append(
                "  %s(%s)  bindings=%s"
                % (
                    name,
                    ", ".join(relation.schema),
                    [sorted(m) for m in relation.binding_sets],
                )
            )
        return "\n".join(lines)

    def navigation_expression(self, relation: str) -> str:
        """The compiled Transaction F-logic program for a VPS relation —
        the expressions 'nobody, except the system builder, needs to see'."""
        return self.vps.relation(relation).handles[0].expression
