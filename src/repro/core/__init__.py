"""The webbase core: the layered architecture assembled and instrumented."""

from repro.core.execution import (
    BundlePool,
    ExecutionContext,
    FanoutError,
    FetchFailedError,
    FetchFailure,
    FetchTimeout,
    RetryPolicy,
    TraceSpan,
    WebBaseConfig,
)
from repro.core.parallel import (
    ParallelOutcome,
    parallel_site_query,
    sequential_site_query,
)
from repro.core.sessions import SESSIONS, build_all_builders, build_all_maps
from repro.core.stats import (
    SiteTiming,
    format_timing_table,
    primary_relation,
    site_given,
    site_query_timings,
)
from repro.core.webbase import WebBase

__all__ = [
    "BundlePool",
    "ExecutionContext",
    "FanoutError",
    "FetchFailedError",
    "FetchFailure",
    "FetchTimeout",
    "ParallelOutcome",
    "RetryPolicy",
    "SESSIONS",
    "SiteTiming",
    "TraceSpan",
    "WebBase",
    "WebBaseConfig",
    "build_all_builders",
    "build_all_maps",
    "format_timing_table",
    "parallel_site_query",
    "primary_relation",
    "sequential_site_query",
    "site_given",
    "site_query_timings",
]
