"""The webbase core: the layered architecture assembled and instrumented."""

from repro.core.parallel import (
    ParallelOutcome,
    parallel_site_query,
    sequential_site_query,
)
from repro.core.sessions import SESSIONS, build_all_builders, build_all_maps
from repro.core.stats import (
    SiteTiming,
    format_timing_table,
    primary_relation,
    site_given,
    site_query_timings,
)
from repro.core.webbase import WebBase

__all__ = [
    "ParallelOutcome",
    "SESSIONS",
    "SiteTiming",
    "WebBase",
    "build_all_builders",
    "build_all_maps",
    "format_timing_table",
    "parallel_site_query",
    "primary_relation",
    "sequential_site_query",
    "site_given",
    "site_query_timings",
]
