"""EXPLAIN: the planner's predictions paired with the measured run.

:func:`explain` plans a UR query, executes it on a fresh engine context,
and walks the resulting trace to put the cost model's per-relation fetch
estimates next to the counts the run actually produced.  The rendered
tree (``python -m repro explain <query>``) is how an operator judges the
cost model: a node whose error stays small is a statistic worth trusting;
one that drifts points at a stale cardinality or distinct-value guess.

Actuals are read the same way the planner's feedback loop reads them
(:func:`~repro.relational.cost.observe_trace`): a relation's *accesses*
are its ``view`` spans under the object, and its *live fetches* are the
``fetch`` spans with ``cache == "miss"`` beneath those views — cache hits
cost nothing on the Web, so they are not charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.execution import TraceSpan
from repro.relational.cost import observe_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.webbase import WebBase


@dataclass
class ExplainNode:
    """One relation's slot in an object's join order: estimate vs. run."""

    relation: str
    mode: str  # scan | independent | probe
    est_accesses: float
    est_fetches: float
    actual_accesses: int
    actual_fetches: int
    # Pages navigated: the estimate is the planner's learned
    # prefix-amortised pages-per-access weight times the predicted
    # accesses (0.0 until the relation has been observed at least once).
    est_pages: float = 0.0
    actual_pages: int = 0

    @property
    def error_pct(self) -> float | None:
        """Signed estimate error relative to the actual live fetches
        (``None`` when the run fetched nothing — nothing to divide by)."""
        if self.actual_fetches == 0:
            return None
        return 100.0 * (self.est_fetches - self.actual_fetches) / self.actual_fetches

    def describe(self) -> str:
        if self.error_pct is None:
            error = "n/a"
        else:
            error = "%+.0f%%" % self.error_pct
        line = (
            "%s [%s]  est %.1f fetches / %.1f accesses, "
            "actual %d fetches / %d accesses, err %s"
            % (
                self.relation,
                self.mode,
                self.est_fetches,
                self.est_accesses,
                self.actual_fetches,
                self.actual_accesses,
                error,
            )
        )
        if self.est_pages:
            line += ", pages est %.1f actual %d" % (self.est_pages, self.actual_pages)
        elif self.actual_pages:
            line += ", %d page(s)" % self.actual_pages
        return line


@dataclass
class ExplainObject:
    """One maximal object: its chosen order with per-node numbers."""

    relations: tuple[str, ...]
    strategy: str
    nodes: list[ExplainNode] = field(default_factory=list)
    skipped: str = ""
    # Multi-query optimizer annotations (when ``--mqo`` is on): the
    # object's plan fingerprint prefix, and how the run obtained the
    # object ("lead" ran it, "hit" shared another query's in-flight run).
    fingerprint: str = ""
    shared: str = ""

    @property
    def est_fetches(self) -> float:
        return sum(n.est_fetches for n in self.nodes)

    @property
    def actual_fetches(self) -> int:
        return sum(n.actual_fetches for n in self.nodes)


@dataclass
class ExplainReport:
    """The full EXPLAIN for one UR query."""

    query_text: str
    optimizer: str
    objects: list[ExplainObject] = field(default_factory=list)
    rows: int = 0
    trace: TraceSpan | None = field(default=None, repr=False)
    # Containment verdict: the gold query whose revision-current answer
    # subsumed this one (zero fetches), or "" when it ran normally.
    subsumed_by: str = ""

    @property
    def est_fetches(self) -> float:
        return sum(o.est_fetches for o in self.objects)

    @property
    def actual_fetches(self) -> int:
        return sum(o.actual_fetches for o in self.objects)

    def render(self) -> str:
        lines = [
            "explain: %s" % self.query_text,
            "optimizer=%s, %d answer row(s)" % (self.optimizer, self.rows),
        ]
        if self.subsumed_by:
            lines.append(
                "subsumed by gold answer %r — served by filtering "
                "materialized rows, 0 live fetches" % self.subsumed_by
            )
        for obj in self.objects:
            if obj.skipped:
                lines.append(
                    "object %s  [skipped: %s]"
                    % (" ⋈ ".join(obj.relations), obj.skipped)
                )
                continue
            tags = [obj.strategy]
            if obj.fingerprint:
                tags.append("fp %s" % obj.fingerprint)
            if obj.shared:
                tags.append("shared %s" % obj.shared)
            lines.append(
                "object %s  [%s, est %.1f fetches, actual %d]"
                % (
                    " ⋈ ".join(obj.relations),
                    ", ".join(tags),
                    obj.est_fetches,
                    obj.actual_fetches,
                )
            )
            for depth, node in enumerate(obj.nodes):
                lines.append("  " * (depth + 1) + "→ " + node.describe())
        lines.append(
            "total: est %.1f live fetches, actual %d"
            % (self.est_fetches, self.actual_fetches)
        )
        return "\n".join(lines)


def _actuals(object_span: TraceSpan, relation: str) -> tuple[int, int, int]:
    """(accesses, live fetches, pages) for ``relation`` under one object
    span."""
    accesses = fetches = pages = 0
    for view in object_span.spans("view"):
        if view.name != relation:
            continue
        # A batched probe collapses K per-binding accesses into one view
        # span carrying ``batch=K`` — still K accesses for cost purposes.
        accesses += int(view.attrs.get("batch", 1))
        fetches += sum(1 for f in view.spans("fetch") if f.cache == "miss")
        pages += sum(f.pages for f in view.spans("fetch") if f.cache == "miss")
    return accesses, fetches, pages


def explain(webbase: "WebBase", text: str) -> ExplainReport:
    """Plan ``text``, run it, and pair every plan node's estimate with the
    measured access/fetch counts from the run's trace."""
    if webbase.mqo is not None:
        subsumed = webbase.mqo.subsume(text)
        if subsumed is not None:
            # The MQO decision ladder short-circuited execution entirely:
            # report the plan (with fingerprints) and the zero-fetch serve.
            plan = webbase.ur.plan(text)
            report = ExplainReport(
                query_text=text,
                optimizer=plan.optimizer,
                rows=len(subsumed),
                subsumed_by=webbase.mqo.last_subsumed_by,
            )
            for obj in plan.objects:
                if not obj.feasible:
                    report.objects.append(
                        ExplainObject(obj.relations, strategy="-", skipped=obj.note)
                    )
                    continue
                strategy = (
                    obj.estimate.strategy if obj.estimate is not None else "fixed"
                )
                report.objects.append(
                    ExplainObject(
                        obj.relations,
                        strategy=strategy,
                        fingerprint=obj.fingerprint[:12],
                    )
                )
            return report
    ctx = webbase.execution_context(label="explain:%s" % text)
    webbase.last_context = ctx
    with ctx.accounted(), ctx.span("query", text):
        with ctx.span("plan", "ur") as pspan:
            plan = webbase.ur.plan(text)
            pspan.attrs["objects"] = len(plan.objects)
            pspan.attrs["feasible"] = len(plan.feasible_objects)
            pspan.attrs["optimizer"] = plan.optimizer
            plan.record_spans(ctx)
        answer = webbase.ur.answer(text, plan=plan, context=ctx)
    observe_trace(webbase.metrics, ctx.root)

    report = ExplainReport(
        query_text=text,
        optimizer=plan.optimizer,
        rows=len(answer),
        trace=ctx.root,
    )
    object_spans = {s.name: s for s in ctx.root.spans("object")}
    for obj in plan.objects:
        if not obj.feasible:
            report.objects.append(
                ExplainObject(obj.relations, strategy="-", skipped=obj.note)
            )
            continue
        strategy = obj.estimate.strategy if obj.estimate is not None else "fixed"
        explained = ExplainObject(
            obj.relations,
            strategy=strategy,
            fingerprint=obj.fingerprint[:12] if webbase.mqo is not None else "",
        )
        span = object_spans.get(" ⋈ ".join(obj.relations))
        if span is not None:
            explained.shared = str(span.attrs.get("mqo", ""))
        steps = list(obj.estimate.steps) if obj.estimate is not None else []
        for position, relation in enumerate(obj.relations):
            step = steps[position] if position < len(steps) else None
            accesses, fetches, pages = (
                _actuals(span, relation) if span is not None else (0, 0, 0)
            )
            explained.nodes.append(
                ExplainNode(
                    relation=relation,
                    mode=step.mode if step is not None else "?",
                    est_accesses=step.est_accesses if step is not None else 0.0,
                    est_fetches=step.est_fetches if step is not None else 0.0,
                    actual_accesses=accesses,
                    actual_fetches=fetches,
                    est_pages=step.est_pages if step is not None else 0.0,
                    actual_pages=pages,
                )
            )
        report.objects.append(explained)
    return report
