"""A small in-process metrics registry: counters, gauges, histograms.

The paper's Section 7 argues that caching and parallelization carry the
response-time budget; to *operate* a webbase on those two levers you have
to see them working.  This registry is the observability spine: the
cross-query result cache (:mod:`repro.vps.cache`) counts hits, misses,
evictions, expirations, invalidations and stale serves into it, and the
execution engine (:mod:`repro.core.execution`) feeds fetch attempts,
retries, failures and latency histograms.  One registry lives on each
:class:`~repro.core.webbase.WebBase` and is shared by its cache and every
execution context it creates, so counter totals reconcile with the trace
spans of the queries that produced them (``python -m repro metrics``
demonstrates exactly that reconciliation).

Everything is thread-safe — the engine's worker fan-out increments these
from many threads — and deliberately dependency-free: names are flat
dotted strings, values are numbers, and a snapshot is a plain dict.
"""

from __future__ import annotations

import math
import random
import re
import threading
from typing import Any

#: The naming scheme every webbase metric follows (documented in README):
#: ``<subsystem>.<name>`` in lowercase snake_case, where the subsystem is
#: one of the fixed prefixes below and further dotted segments are allowed
#: for per-entity families (``planner.observed.pages.<relation>``).
NAME_PATTERN = re.compile(
    r"^(nav|cache|engine|service|planner|resilience|store|cluster|mqo)\.[a-z0-9_]+(\.[a-z0-9_]+)*$"
)


class Counter:
    """A monotonically increasing count (events observed)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; got %r" % amount)
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can move in both directions (entries resident, etc.)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Summary statistics of an observed distribution (fetch latencies).

    Keeps count/sum/min/max plus a bounded reservoir of observations:
    enough for the mean, the extremes, and tail percentiles (p50/p95/p99
    — what a service's latency SLO is written in) in O(1) memory per
    histogram and with no bucket-boundary bikeshed.  The reservoir is
    uniform (Vitter's algorithm R) with a fixed-seed generator, so a
    deterministic observation sequence yields deterministic percentiles.
    """

    RESERVOIR = 2048

    __slots__ = ("name", "_count", "_total", "_min", "_max", "_samples", "_rng", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._samples: list[float] = []
        self._rng = random.Random(0x5EED)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._samples) < self.RESERVOIR:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.RESERVOIR:
                    self._samples[slot] = value

    def percentile(self, q: float) -> float:
        """The q-th percentile (nearest-rank over the reservoir); 0 when
        nothing has been observed."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]; got %r" % q)
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
            rank = max(1, math.ceil(q / 100.0 * len(ordered)))
            return ordered[rank - 1]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def summary(self) -> dict[str, float]:
        with self._lock:
            ordered = sorted(self._samples)

            def rank(q: float) -> float:
                if not ordered:
                    return 0.0
                return ordered[max(1, math.ceil(q / 100.0 * len(ordered))) - 1]

            return {
                "count": self._count,
                "sum": self._total,
                "min": self._min if self._min is not None else 0.0,
                "max": self._max if self._max is not None else 0.0,
                "mean": self._total / self._count if self._count else 0.0,
                "p50": rank(50),
                "p95": rank(95),
                "p99": rank(99),
            }


class MetricsRegistry:
    """Get-or-create registry of named metrics, shared across threads.

    ``strict=True`` enforces :data:`NAME_PATTERN` on every registered
    name — the webbase's own registry runs strict, so an off-scheme
    metric name fails the first time it is touched instead of drifting
    into dashboards; bare registries (tests, scratch tools) stay lenient.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_name(self, name: str) -> None:
        if self.strict and NAME_PATTERN.match(name) is None:
            raise ValueError(
                "metric name %r does not match the <subsystem>.<name> "
                "naming scheme (%s)" % (name, NAME_PATTERN.pattern)
            )

    def _other_kinds(self, name: str, mine: dict) -> None:
        # A name may exist in exactly one kind, or value() turns ambiguous.
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not mine and name in kind:
                raise ValueError("metric %r already registered with another kind" % name)

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_name(name)
                self._other_kinds(name, self._counters)
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_name(name)
                self._other_kinds(name, self._gauges)
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_name(name)
                self._other_kinds(name, self._histograms)
                metric = self._histograms[name] = Histogram(name)
            return metric

    def value(self, name: str) -> float:
        """The current value of a counter or gauge (0 if never touched)."""
        with self._lock:
            if name in self._counters:
                counter = self._counters[name]
            elif name in self._gauges:
                return self._gauges[name].value
            else:
                return 0
        return counter.value

    def snapshot(self) -> dict[str, Any]:
        """Every metric's current state as one plain dict (JSON-friendly)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(histograms.items())
            },
        }

    def render(self) -> str:
        """The registry as an aligned text table (the CLI's output)."""
        snap = self.snapshot()
        lines: list[str] = []
        names = list(snap["counters"]) + list(snap["gauges"])
        width = max((len(n) for n in names + list(snap["histograms"])), default=0)
        for name, value in snap["counters"].items():
            lines.append("%-*s  %d" % (width, name, value))
        for name, value in snap["gauges"].items():
            lines.append("%-*s  %g" % (width, name, value))
        for name, summary in snap["histograms"].items():
            lines.append(
                "%-*s  count=%d sum=%.3f min=%.3f max=%.3f mean=%.3f "
                "p50=%.3f p95=%.3f p99=%.3f"
                % (
                    width,
                    name,
                    summary["count"],
                    summary["sum"],
                    summary["min"],
                    summary["max"],
                    summary["mean"],
                    summary["p50"],
                    summary["p95"],
                    summary["p99"],
                )
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"
