"""Per-site query accounting: the Section 7 timing table.

The paper reports, for ``SELECT make,model,year,price WHERE make=ford AND
model=escort`` over 10 car-related sites: the number of pages navigated,
cpu time and elapsed time per site.  :func:`site_query_timings` regenerates
that table against the simulated Web: cpu time is measured with
``time.process_time`` and elapsed time is cpu plus the simulated network
seconds charged by each site's latency model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.webbase import WebBase
from repro.logical.standardize import fuzzy_match
from repro.sites.world import TIMING_TABLE_HOSTS
from repro.web.clock import CpuTimer


@dataclass
class SiteTiming:
    """One row of the timing table."""

    host: str
    relation: str
    rows: int
    pages: int
    cpu_seconds: float
    network_seconds: float

    @property
    def elapsed_seconds(self) -> float:
        return self.cpu_seconds + self.network_seconds


# Values supplied for mandatory attributes the ford/escort query does not
# bind (Kelley's needs a condition, CarFinance a zip code) — the same
# defaults a canned shopping interface would fill in.
DEFAULT_EXTRAS: dict[str, str] = {"condition": "good", "zip_code": "10001"}


def primary_relation(webbase: WebBase, host: str) -> str:
    """The host's main (site-kind) VPS relation."""
    for rel in webbase.compiled[host].relations:
        if rel.kind == "site":
            return rel.name
    raise KeyError("host %s has no site relation" % host)


def site_given(
    webbase: WebBase, relation_name: str, query: dict[str, Any]
) -> dict[str, Any]:
    """Translate canonical query attributes into one site's vocabulary.

    Uses fuzzy name matching (``make`` -> ``manufacturer`` fails the
    distance test, so an explicit alias map covers it; ``zip`` ->
    ``zip_code`` succeeds).  Mandatory attributes the query leaves unbound
    are filled from :data:`DEFAULT_EXTRAS`.
    """
    relation = webbase.vps.relation(relation_name)
    vocabulary = sorted(
        set(relation.schema.attrs)
        | {a for h in relation.handles for a in h.selection}
    )
    aliases = {"make": ["manufacturer"], "price": ["asking_price"]}
    given: dict[str, Any] = {}
    for attr, value in query.items():
        target = attr if attr in vocabulary else None
        if target is None:
            for alias in aliases.get(attr, []):
                if alias in vocabulary:
                    target = alias
                    break
        if target is None:
            target = fuzzy_match(attr, vocabulary)
        if target is not None:
            given[target] = value
    for handle in relation.handles:
        for attr in handle.mandatory:
            if attr not in given and attr in DEFAULT_EXTRAS:
                given[attr] = DEFAULT_EXTRAS[attr]
    return given


def site_query_timings(
    webbase: WebBase,
    query: dict[str, Any] | None = None,
    hosts: list[str] | None = None,
) -> list[SiteTiming]:
    """Run the per-site query against every timing-table host.

    Each site runs on its own single-worker execution context, so the
    table's pages and network seconds come from the engine's per-host
    accounting — the same instrumentation the query path reports."""
    query = query or {"make": "ford", "model": "escort"}
    hosts = hosts or TIMING_TABLE_HOSTS
    timings = []
    for host in hosts:
        relation_name = primary_relation(webbase, host)
        given = site_given(webbase, relation_name, query)
        context = webbase.execution_context(
            label="timing:%s" % host, max_workers=1
        )
        timer = CpuTimer().start()
        result = webbase.vps.fetch(relation_name, given, context=context)
        cpu = timer.stop()
        timings.append(
            SiteTiming(
                host=host,
                relation=relation_name,
                rows=len(result),
                pages=context.pages_by_host.get(host, 0),
                cpu_seconds=cpu,
                network_seconds=context.network_by_host.get(host, 0.0),
            )
        )
    return timings


def format_timing_table(timings: list[SiteTiming]) -> str:
    """Render the table the way Section 7 prints it."""
    lines = [
        "%-22s %6s %8s %10s %12s" % ("Site", "rows", "# pages", "cpu time", "elapsed time"),
        "-" * 62,
    ]
    for t in timings:
        lines.append(
            "%-22s %6d %8d %9.3fs %11.2fs"
            % (t.host, t.rows, t.pages, t.cpu_seconds, t.elapsed_seconds)
        )
    return "\n".join(lines)
