"""Query reports: observability and provenance for UR evaluation.

A webbase query fans out across sites; operators need to see where
answers came from and what they cost.  :func:`run_with_report` evaluates
a UR query *per maximal object* (instead of folding everything into one
union) on the execution engine and accounts for the Web work each object
caused: answer counts, pages fetched per host, simulated network seconds,
and measured cpu time — all read back from the engine's structured trace,
which the report also carries (``report.trace``) for span-level drill-down
(retries, cache hits, per-fetch costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.execution import (
    ExecutionContext,
    FanoutError,
    FetchFailedError,
    FetchFailure,
    TraceSpan,
)
from repro.core.webbase import WebBase
from repro.relational.algebra import evaluate
from repro.relational.bindings import BindingError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.ur.planner import PlanError, URPlan
from repro.web.clock import CpuTimer


@dataclass
class ObjectReport:
    """One maximal object's contribution and cost."""

    relations: tuple[str, ...]
    rows: int
    pages_by_host: dict[str, int]
    network_seconds: float
    cpu_seconds: float
    skipped: str = ""

    @property
    def pages(self) -> int:
        return sum(self.pages_by_host.values())


@dataclass
class QueryReport:
    """The full accounting of one UR query."""

    query_text: str
    answer: Relation
    objects: list[ObjectReport] = field(default_factory=list)
    trace: TraceSpan | None = field(default=None, repr=False)
    failures: list[FetchFailure] = field(default_factory=list)

    @property
    def total_pages(self) -> int:
        return sum(o.pages for o in self.objects)

    @property
    def total_network_seconds(self) -> float:
        return sum(o.network_seconds for o in self.objects)

    @property
    def total_cpu_seconds(self) -> float:
        return sum(o.cpu_seconds for o in self.objects)

    @property
    def total_retries(self) -> int:
        return self.trace.total_retries if self.trace is not None else 0

    def _cache_flag_count(self, flag: str) -> int:
        if self.trace is None:
            return 0
        return sum(1 for s in self.trace.spans("fetch") if s.cache == flag)

    @property
    def cache_hits(self) -> int:
        """Fetches served from a cache (per-context or cross-query)."""
        return self._cache_flag_count("hit")

    @property
    def cache_misses(self) -> int:
        """Fetches that went to the live site."""
        return self._cache_flag_count("miss")

    @property
    def stale_serves(self) -> int:
        """Quarantined entries served with the explicit staleness flag."""
        return self._cache_flag_count("stale")

    def pretty(self) -> str:
        lines = ["query: %s" % self.query_text]
        for obj in self.objects:
            if obj.skipped:
                lines.append("  %s: skipped (%s)" % (" ⋈ ".join(obj.relations), obj.skipped))
                continue
            hosts = ", ".join(
                "%s:%d" % (host, pages)
                for host, pages in sorted(obj.pages_by_host.items())
                if pages
            )
            lines.append(
                "  %s: %d row(s), %d page(s) [%s], %.2fs network, %.3fs cpu"
                % (
                    " ⋈ ".join(obj.relations),
                    obj.rows,
                    obj.pages,
                    hosts or "cache",
                    obj.network_seconds,
                    obj.cpu_seconds,
                )
            )
        lines.append(
            "total: %d answer row(s), %d page(s), %.2fs network, %.3fs cpu"
            % (
                len(self.answer),
                self.total_pages,
                self.total_network_seconds,
                self.total_cpu_seconds,
            )
        )
        if self.cache_hits or self.stale_serves:
            cache_line = "cache: %d hit(s), %d miss(es)" % (
                self.cache_hits,
                self.cache_misses,
            )
            if self.stale_serves:
                cache_line += ", %d served stale" % self.stale_serves
            lines.append(cache_line)
        if self.total_retries:
            lines.append("retries absorbed: %d" % self.total_retries)
        for failure in self.failures:
            lines.append("partial failure: %s" % failure.describe())
        return "\n".join(lines)


def _pages_by_host(span: TraceSpan) -> dict[str, int]:
    """Per-host page counts from the fetch spans under ``span``."""
    pages: dict[str, int] = {}
    for fetch in span.spans("fetch"):
        if fetch.pages:
            host = str(fetch.attrs.get("host", "?"))
            pages[host] = pages.get(host, 0) + fetch.pages
    return pages


def run_with_report(
    webbase: WebBase, query_text: str, context: ExecutionContext | None = None
) -> QueryReport:
    """Evaluate a UR query object by object on the engine, reading each
    object's Web work off its trace subtree."""
    ctx = context or webbase.execution_context(label=query_text)
    webbase.last_context = ctx
    evaluated = 0
    with ctx.accounted(), ctx.span("query", query_text):
        with ctx.span("plan", "ur") as pspan:
            plan: URPlan = webbase.plan(query_text)
            pspan.attrs["objects"] = len(plan.objects)
            pspan.attrs["feasible"] = len(plan.feasible_objects)
            pspan.attrs["optimizer"] = plan.optimizer
            plan.record_spans(ctx)
        outputs = plan.query.outputs
        answer = Relation(Schema(outputs), [])
        report = QueryReport(query_text=query_text, answer=answer, trace=ctx.root)
        for obj in plan.objects:
            if not obj.feasible:
                report.objects.append(
                    ObjectReport(obj.relations, 0, {}, 0.0, 0.0, skipped=obj.note)
                )
                continue
            timer = CpuTimer().start()
            piece: Relation | None = None
            skipped = ""
            with ctx.span("object", " ⋈ ".join(obj.relations)) as ospan:
                try:
                    piece = evaluate(obj.expression, webbase.logical, context=ctx)
                except BindingError as exc:
                    ospan.status = "skipped"
                    ospan.error = skipped = str(exc)
                except FetchFailedError as exc:
                    # Exhausted retries under this object: report it as a
                    # partial failure instead of aborting the query.
                    ospan.status = "error"
                    ospan.error = skipped = str(exc)
                except FanoutError as exc:
                    expected = (BindingError, FetchFailedError)
                    if any(not isinstance(e, expected) for e in exc.errors):
                        raise  # a real defect, not a fetch/binding outcome
                    ospan.status = "error"
                    ospan.error = skipped = str(exc)
            cpu = timer.stop()
            ospan.cpu_seconds = cpu
            if piece is None:
                report.objects.append(
                    ObjectReport(
                        obj.relations,
                        0,
                        _pages_by_host(ospan),
                        ospan.total_network_seconds,
                        cpu,
                        skipped=skipped,
                    )
                )
                continue
            report.objects.append(
                ObjectReport(
                    relations=obj.relations,
                    rows=len(piece),
                    pages_by_host=_pages_by_host(ospan),
                    network_seconds=ospan.total_network_seconds,
                    cpu_seconds=cpu,
                )
            )
            answer = answer.union(piece)
            evaluated += 1
    report.failures = list(ctx.failures)
    if evaluated == 0:
        detail = plan.describe()
        if ctx.failures:
            detail += "\n" + ctx.failure_report()
        raise PlanError("no maximal object was evaluable; plan:\n%s" % detail)
    report.answer = answer
    return report
