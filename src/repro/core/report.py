"""Query reports: observability and provenance for UR evaluation.

A webbase query fans out across sites; operators need to see where
answers came from and what they cost.  :func:`run_with_report` evaluates
a UR query *per maximal object* (instead of folding everything into one
union) and accounts for the Web work each object caused: answer counts,
pages fetched per host, simulated network seconds, and measured cpu time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.webbase import WebBase
from repro.relational.algebra import evaluate
from repro.relational.bindings import BindingError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.ur.planner import PlanError, URPlan
from repro.web.clock import CpuTimer


@dataclass
class ObjectReport:
    """One maximal object's contribution and cost."""

    relations: tuple[str, ...]
    rows: int
    pages_by_host: dict[str, int]
    network_seconds: float
    cpu_seconds: float
    skipped: str = ""

    @property
    def pages(self) -> int:
        return sum(self.pages_by_host.values())


@dataclass
class QueryReport:
    """The full accounting of one UR query."""

    query_text: str
    answer: Relation
    objects: list[ObjectReport] = field(default_factory=list)

    @property
    def total_pages(self) -> int:
        return sum(o.pages for o in self.objects)

    @property
    def total_network_seconds(self) -> float:
        return sum(o.network_seconds for o in self.objects)

    @property
    def total_cpu_seconds(self) -> float:
        return sum(o.cpu_seconds for o in self.objects)

    def pretty(self) -> str:
        lines = ["query: %s" % self.query_text]
        for obj in self.objects:
            if obj.skipped:
                lines.append("  %s: skipped (%s)" % (" ⋈ ".join(obj.relations), obj.skipped))
                continue
            hosts = ", ".join(
                "%s:%d" % (host, pages)
                for host, pages in sorted(obj.pages_by_host.items())
                if pages
            )
            lines.append(
                "  %s: %d row(s), %d page(s) [%s], %.2fs network, %.3fs cpu"
                % (
                    " ⋈ ".join(obj.relations),
                    obj.rows,
                    obj.pages,
                    hosts or "cache",
                    obj.network_seconds,
                    obj.cpu_seconds,
                )
            )
        lines.append(
            "total: %d answer row(s), %d page(s), %.2fs network, %.3fs cpu"
            % (
                len(self.answer),
                self.total_pages,
                self.total_network_seconds,
                self.total_cpu_seconds,
            )
        )
        return "\n".join(lines)


def run_with_report(webbase: WebBase, query_text: str) -> QueryReport:
    """Evaluate a UR query object by object, accounting for the Web work."""
    plan: URPlan = webbase.plan(query_text)
    server = webbase.world.server
    clock = webbase.executor.browser.clock
    outputs = plan.query.outputs
    answer = Relation(Schema(outputs), [])
    report = QueryReport(query_text=query_text, answer=answer)
    evaluated = 0
    for obj in plan.objects:
        if not obj.feasible:
            report.objects.append(
                ObjectReport(obj.relations, 0, {}, 0.0, 0.0, skipped=obj.note)
            )
            continue
        pages_before = {host: server.stats[host].pages_ok for host in server.stats}
        network_before = clock.network_seconds
        timer = CpuTimer().start()
        try:
            piece = evaluate(obj.expression, webbase.logical)
        except BindingError as exc:
            timer.stop()
            report.objects.append(
                ObjectReport(obj.relations, 0, {}, 0.0, 0.0, skipped=str(exc))
            )
            continue
        cpu = timer.stop()
        pages = {
            host: server.stats[host].pages_ok - pages_before[host]
            for host in server.stats
            if server.stats[host].pages_ok != pages_before[host]
        }
        report.objects.append(
            ObjectReport(
                relations=obj.relations,
                rows=len(piece),
                pages_by_host=pages,
                network_seconds=clock.network_seconds - network_before,
                cpu_seconds=cpu,
            )
        )
        answer = answer.union(piece)
        evaluated += 1
    if evaluated == 0:
        raise PlanError("no maximal object was evaluable; plan:\n%s" % plan.describe())
    report.answer = answer
    return report
