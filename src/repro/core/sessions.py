"""Scripted designer sessions: mapping every simulated site by example.

In the paper a human webbase designer browses each site for ~30 minutes
while the map builder watches.  These functions are those browsing
sessions, scripted: each one drives a browser through the site's flows
(including the dynamically generated second form and the "More" loop
where the site has them), points at one example tuple per data page, and
returns the finished :class:`~repro.navigation.builder.MapBuilder`.

The hints passed to each builder are the session's *manual* facts — the
attribute renames and mandatory-text declarations the paper quantifies as
"less than 5% of the information in the map".
"""

from __future__ import annotations

from typing import Callable

from repro.navigation.builder import DesignerHints, MapBuilder
from repro.navigation.navmap import NavigationMap
from repro.sites.world import World
from repro.web.browser import Browser


def _first_data_row(page, columns: list[str]) -> dict[str, str]:
    """Read the first row of the page's data table as an example tuple."""
    for table in page.tables():
        if len(table) >= 2:
            return dict(zip(columns, table[1]))
    raise ValueError("no data table on %s" % page.url)


def _first_block(page, labels: list[str]) -> dict[str, str]:
    """Read the first labeled block (dl) as an example tuple."""
    dl = page.dom.find_all("dl")[0]
    values = [dd.text() for dd in dl.find_all("dd")]
    return dict(zip(labels, values))


def _follow_more(browser) -> None:
    """Page through a listing the way a designer demonstrating the More
    loop would (one More click records the self-edge; we walk to the end
    so sessions also serve as full-listing sanity checks)."""
    while browser.page is not None and browser.page.has_link_named("More"):
        browser.follow_named("More")


def _reach_data_page(browser, make_field: str, make: str, model_field: str, model: str):
    """Submit the first form; if the site answers with a refinement form
    (too many matches), fill it too.  Mirrors what a designer would do and
    keeps sessions robust across world sizes."""
    page = browser.submit_by_attribute({make_field: make})
    if page.forms:
        page = browser.submit_by_attribute({model_field: model})
    return page


def _detail_href(page, link_name: str) -> str:
    for link in page.links:
        if link.name == link_name:
            return str(link.address)
    raise ValueError("no %r link on %s" % (link_name, page.url))


def map_newsday(world: World) -> MapBuilder:
    """Figure 2: link(auto), form f1(make), the conditional form f2, data
    pages with More, and per-row Car Features detail pages."""
    browser = Browser(world.server)
    builder = MapBuilder("www.newsday.com")
    browser.subscribe(builder)

    browser.get("http://www.newsday.com/")
    browser.follow_named("Auto")
    page = _reach_data_page(browser, "make", "ford", "model", "escort")
    row = page.tables()[0][1]
    builder.mark_data_page(
        "newsday",
        {
            "make": row[0],
            "model": row[1],
            "year": row[2],
            "price": row[3],
            "contact": row[4],
            "url": _detail_href(page, "Car Features"),
        },
    )
    _follow_more(browser)
    # Demonstrate the direct branch (few ads -> data page immediately),
    # the More loop, and a detail page.
    browser.get("http://www.newsday.com/classified/cars")
    browser.submit_by_attribute({"make": "saab"})
    _follow_more(browser)
    page = browser.page
    detail = browser.follow(next(l for l in page.links if l.name == "Car Features"))
    dds = [dd.text() for dd in detail.dom.find_all("dd")]
    builder.mark_data_page(
        "newsday_car_features", {"features": dds[0], "picture": dds[1]}
    )
    return builder


def map_nytimes(world: World) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder("www.nytimes.com")
    browser.subscribe(builder)
    browser.get("http://www.nytimes.com/")
    browser.follow_named("Automobiles")
    page = browser.submit_by_attribute({"manufacturer": "ford"})
    builder.mark_data_page(
        "nytimes",
        _first_data_row(
            page,
            ["manufacturer", "model", "year", "features", "asking_price", "contact"],
        ),
    )
    _follow_more(browser)
    return builder


def map_carpoint(world: World) -> MapBuilder:
    hints = DesignerHints(attr_renames={"zipcode": "zip"})
    browser = Browser(world.server)
    builder = MapBuilder("www.carpoint.com", hints)
    browser.subscribe(builder)
    browser.get("http://www.carpoint.com/")
    browser.follow_named("Used Inventory")
    page = _reach_data_page(browser, "make", "ford", "model", "escort")
    builder.mark_data_page(
        "carpoint",
        _first_data_row(
            page, ["make", "model", "year", "price", "features", "zip", "dealer"]
        ),
    )
    _follow_more(browser)
    browser.get("http://www.carpoint.com/used")
    browser.submit_by_attribute({"make": "saab"})  # few -> direct data page
    _follow_more(browser)
    return builder


def map_autoweb(world: World) -> MapBuilder:
    hints = DesignerHints(attr_renames={"zip": "zip_code"})
    browser = Browser(world.server)
    builder = MapBuilder("www.autoweb.com", hints)
    browser.subscribe(builder)
    browser.get("http://www.autoweb.com/")
    browser.follow_named("Browse Cars")
    page = browser.submit_by_attribute({"make": "ford"})
    builder.mark_data_page(
        "autoweb",
        _first_data_row(
            page,
            ["year", "make", "model", "options", "price", "zip_code", "seller"],
        ),
    )
    _follow_more(browser)
    return builder


def map_kellys(world: World) -> MapBuilder:
    hints = DesignerHints(
        attr_renames={"blue_book_price": "bb_price"}, mandatory_text={"model"}
    )
    browser = Browser(world.server)
    builder = MapBuilder("www.kbb.com", hints)
    browser.subscribe(builder)
    browser.get("http://www.kbb.com/")
    browser.follow_named("Used Car Values")
    page = browser.submit_by_attribute(
        {"make": "ford", "model": "escort", "condition": "good"}
    )
    builder.mark_data_page(
        "kellys", _first_data_row(page, ["make", "model", "year", "condition", "bb_price"])
    )
    return builder


def map_caranddriver(world: World) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder("www.caranddriver.com")
    browser.subscribe(builder)
    browser.get("http://www.caranddriver.com/")
    browser.follow_named("Safety Ratings")
    page = browser.submit_by_attribute({"make": "jaguar"})
    builder.mark_data_page(
        "caranddriver", _first_data_row(page, ["make", "model", "year", "safety"])
    )
    return builder


def map_carfinance(world: World) -> MapBuilder:
    hints = DesignerHints(
        attr_renames={"zipcode": "zip_code"}, mandatory_text={"zip_code"}
    )
    browser = Browser(world.server)
    builder = MapBuilder("www.carfinance.com", hints)
    browser.subscribe(builder)
    browser.get("http://www.carfinance.com/")
    browser.follow_named("Loan Rates")
    page = browser.submit_by_attribute({"zipcode": "10001"})
    builder.mark_data_page(
        "carfinance", _first_data_row(page, ["zip_code", "duration", "rate"])
    )
    return builder


def map_wwwheels(world: World) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder("www.wwwheels.com")
    browser.subscribe(builder)
    browser.get("http://www.wwwheels.com/")
    browser.follow_named("Find a Car")
    page = browser.submit_by_attribute({"make": "ford"})
    builder.mark_data_page(
        "wwwheels",
        _first_data_row(page, ["make", "model", "year", "price", "zip", "contact"]),
    )
    _follow_more(browser)
    return builder


def map_carreviews(world: World) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder("www.carreviews.com")
    browser.subscribe(builder)
    browser.get("http://www.carreviews.com/")
    browser.follow_named("Classifieds")
    page = browser.submit_by_attribute({"make": "ford"})
    builder.mark_data_page(
        "carreviews",
        _first_data_row(page, ["make", "model", "year", "price", "contact"]),
    )
    _follow_more(browser)
    return builder


def map_nydailynews(world: World) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder("www.nydailynews.com")
    browser.subscribe(builder)
    browser.get("http://www.nydailynews.com/")
    browser.follow_named("Auto Classifieds")
    page = _reach_data_page(browser, "make", "ford", "model", "escort")
    builder.mark_data_page(
        "nydaily", _first_data_row(page, ["make", "model", "year", "price", "contact"])
    )
    _follow_more(browser)
    browser.get("http://www.nydailynews.com/classified/auto")
    browser.submit_by_attribute({"make": "saab"})  # direct branch
    _follow_more(browser)
    return builder


def map_autoconnect(world: World) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder("www.autoconnect.com")
    browser.subscribe(builder)
    browser.get("http://www.autoconnect.com/")
    browser.follow_named("Dealer Search")
    page = _reach_data_page(browser, "make", "ford", "model", "escort")
    builder.mark_data_page(
        "autoconnect",
        _first_data_row(
            page,
            ["make", "model", "year", "price", "equipment", "location", "contact"],
        ),
    )
    _follow_more(browser)
    browser.get("http://www.autoconnect.com/dealers")
    browser.submit_by_attribute({"make": "saab"})
    _follow_more(browser)
    return builder


def map_yahoocars(world: World) -> MapBuilder:
    browser = Browser(world.server)
    builder = MapBuilder("cars.yahoo.com")
    browser.subscribe(builder)
    browser.get("http://cars.yahoo.com/")
    browser.follow_named("Used Car Listings")
    page = browser.submit_by_attribute({"make": "ford"})
    builder.mark_data_page(
        "yahoocars", _first_block(page, ["make", "model", "year", "price", "contact"])
    )
    _follow_more(browser)
    return builder


def map_usedcarmart(world: World) -> MapBuilder:
    """The multi-handle site: the designer demonstrates *both* access
    forms (by make and by zip code), so the compiler derives two handles
    with different mandatory sets for the same relation (Section 3)."""
    browser = Browser(world.server)
    builder = MapBuilder("www.usedcarmart.com")
    browser.subscribe(builder)
    browser.get("http://www.usedcarmart.com/")
    browser.follow_named("Search by Make")
    page = browser.submit_by_attribute({"make": "ford"})
    builder.mark_data_page(
        "usedcarmart",
        _first_data_row(page, ["make", "model", "year", "price", "zip", "contact"]),
    )
    _follow_more(browser)
    browser.get("http://www.usedcarmart.com/")
    browser.follow_named("Search by Zip Code")
    browser.submit_by_attribute({"zip": "10001"})
    _follow_more(browser)
    return builder


SESSIONS: dict[str, Callable[[World], MapBuilder]] = {
    "www.newsday.com": map_newsday,
    "www.nytimes.com": map_nytimes,
    "www.carpoint.com": map_carpoint,
    "www.autoweb.com": map_autoweb,
    "www.kbb.com": map_kellys,
    "www.caranddriver.com": map_caranddriver,
    "www.carfinance.com": map_carfinance,
    "www.wwwheels.com": map_wwwheels,
    "www.carreviews.com": map_carreviews,
    "www.nydailynews.com": map_nydailynews,
    "www.autoconnect.com": map_autoconnect,
    "cars.yahoo.com": map_yahoocars,
    "www.usedcarmart.com": map_usedcarmart,
}


def build_all_maps(world: World) -> dict[str, NavigationMap]:
    """Run every designer session; returns host -> finished navigation map."""
    return {host: session(world).map for host, session in SESSIONS.items()}


def build_all_builders(world: World) -> dict[str, MapBuilder]:
    """Run every designer session; returns host -> builder (with stats)."""
    return {host: session(world) for host, session in SESSIONS.items()}
