"""One importable home for the webbase's error hierarchy.

Every structured error the webbase raises — engine failures, navigation
faults, binding infeasibility, resilience shedding, service rejections —
derives from :class:`WebBaseError`, so callers can catch the whole family
with one ``except`` clause, or import any concrete error from here
instead of memorizing which layer defines it::

    from repro.errors import WebBaseError, DeadlineExceeded, FetchFailedError

The concrete classes continue to *live* in the modules that raise them
(keeping each layer self-contained); this module re-exports them lazily
via module ``__getattr__`` (PEP 562), so importing :mod:`repro.errors`
never drags in the navigation or service stacks until a specific error
class is actually touched.

Exceptions that model the *simulated Web itself* (``HttpError``,
``TransientHttpError`` in :mod:`repro.web.server`) are deliberately not
part of the family: they stand in for a remote site's behaviour, not for
a webbase failure, and the browser layer translates them at the boundary.
"""

from __future__ import annotations

import importlib


class WebBaseError(Exception):
    """Common base class of every structured webbase error."""


#: Where each re-exported error class actually lives.
_HOMES = {
    "AccessCancelled": "repro.core.execution",
    "BindingError": "repro.relational.bindings",
    "BulkheadSaturated": "repro.core.resilience",
    "CircuitOpenError": "repro.core.resilience",
    "ClientLimited": "repro.service.client",
    "DeadlineExceeded": "repro.core.execution",
    "DeadlineExceededError": "repro.service.client",
    "ExecutorError": "repro.navigation.executor",
    "FanoutError": "repro.core.execution",
    "FetchFailedError": "repro.core.execution",
    "FetchTimeout": "repro.core.execution",
    "HandleError": "repro.vps.handle",
    "NavigationError": "repro.web.browser",
    "Overloaded": "repro.service.client",
    "PageBudgetExceeded": "repro.navigation.executor",
    "ServiceError": "repro.service.client",
    "ServiceShuttingDown": "repro.service.client",
    "TransientNetworkError": "repro.web.browser",
}

__all__ = ["WebBaseError", *sorted(_HOMES)]


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    return getattr(importlib.import_module(home), name)


def __dir__() -> list[str]:
    return sorted(__all__)
