"""Unit tests for the Transaction F-logic interpreter."""

import pytest

from repro.flogic.engine import DepthLimitExceeded, Engine, UnknownPredicate
from repro.flogic.formulas import Ins, Pred, Program, Rule, Serial, serial
from repro.flogic.store import ObjectStore
from repro.flogic.syntax import parse_formula, parse_rules
from repro.flogic.terms import Var

X, Y = Var("X"), Var("Y")


def _engine(source: str, store: ObjectStore | None = None) -> Engine:
    return Engine(parse_rules(source), store=store)


class TestFactsAndRules:
    def test_fact_query(self):
        engine = _engine("p(1). p(2).")
        assert sorted(r["X"] for r in engine.ask(parse_formula("p(X)"), [X])) == [1, 2]

    def test_ground_query_success_and_failure(self):
        engine = _engine("p(1).")
        assert engine.succeeds(parse_formula("p(1)"))
        assert not engine.succeeds(parse_formula("p(2)"))

    def test_rule_chaining(self):
        engine = _engine("p(1). q(X) <- p(X) * eq(Y, X) * p(Y).")
        assert engine.ask(parse_formula("q(X)"), [X]) == [{"X": 1}]

    def test_variables_are_renamed_per_rule_use(self):
        engine = _engine("p(1). p(2). pair(X, Y) <- p(X) * p(Y).")
        pairs = {
            (r["X"], r["Y"])
            for r in engine.ask(parse_formula("pair(X, Y)"), [X, Y])
        }
        assert pairs == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_recursion(self):
        engine = _engine(
            """
            edge(a, b). edge(b, c). edge(c, d).
            path(A, B) <- edge(A, B) ; edge(A, C) * path(C, B).
            """
        )
        reach = sorted(r["X"] for r in engine.ask(parse_formula("path(a, X)"), [X]))
        assert reach == ["b", "c", "d"]

    def test_unknown_predicate_raises(self):
        engine = _engine("p(1).")
        with pytest.raises(UnknownPredicate):
            engine.succeeds(parse_formula("nosuch(1)"))

    def test_defined_but_empty_choice_branch(self):
        engine = _engine("p(1). q(X) <- fail ; p(X).")
        assert engine.ask(parse_formula("q(X)"), [X]) == [{"X": 1}]

    def test_depth_limit(self):
        engine = Engine(parse_rules("loop <- loop."), depth_limit=50)
        with pytest.raises(DepthLimitExceeded):
            engine.succeeds(parse_formula("loop"))


class TestSerialAndState:
    def test_serial_threads_state(self):
        engine = _engine("t <- ins_attr(o, v, 1) * attr(o, v, X) * eq(X, 1).")
        assert engine.run(parse_formula("t")) is not None

    def test_updates_visible_left_to_right_only(self):
        engine = _engine("t <- attr(o, v, X) * ins_attr(o, v, 1).")
        assert engine.run(parse_formula("t")) is None  # nothing to read yet

    def test_run_commits_final_state(self):
        engine = _engine("t <- ins_attr(o, v, 1) * ins_attr(o, v, 2).")
        state = engine.run(parse_formula("t"))
        assert sorted(state.values("o", "v")) == [1, 2]
        assert sorted(engine.store.values("o", "v")) == [1, 2]

    def test_failed_transaction_leaves_store(self):
        engine = _engine("t <- ins_attr(o, v, 1) * fail.")
        assert engine.run(parse_formula("t")) is None
        assert engine.store.values("o", "v") == []

    def test_backtracking_discards_updates(self):
        engine = _engine("t <- (ins_attr(o, v, 1) * fail) ; ins_attr(o, v, 2).")
        state = engine.run(parse_formula("t"))
        assert state.values("o", "v") == [2]

    def test_delete(self):
        engine = _engine("t <- ins_attr(o, v, 1) * del_attr(o, v, 1) * not attr(o, v, 1).")
        state = engine.run(parse_formula("t"))
        assert state is not None
        assert state.values("o", "v") == []

    def test_ins_isa(self):
        engine = _engine("t <- ins_isa(o, widget) * isa(o, widget).")
        assert engine.run(parse_formula("t")) is not None

    def test_update_with_unbound_argument_raises(self):
        engine = _engine("t <- ins_attr(o, v, X).")
        with pytest.raises(ValueError):
            engine.run(parse_formula("t"))

    def test_choice_explores_alternative_states(self):
        engine = _engine(
            "t(X) <- (ins_attr(o, v, 1) ; ins_attr(o, v, 2)) * attr(o, v, X)."
        )
        values = sorted(r["X"] for r in engine.ask(parse_formula("t(X)"), [X]))
        assert values == [1, 2]


class TestBuiltins:
    def test_eq_unifies(self):
        engine = _engine("t(X) <- eq(X, 42).")
        assert engine.ask(parse_formula("t(X)"), [X]) == [{"X": 42}]

    def test_comparisons(self):
        engine = Engine(Program())
        assert engine.succeeds(parse_formula("lt(1, 2)"))
        assert not engine.succeeds(parse_formula("lt(2, 1)"))
        assert engine.succeeds(parse_formula("le(2, 2)"))
        assert engine.succeeds(parse_formula("gt(3, 2)"))
        assert engine.succeeds(parse_formula("ge(2, 2)"))
        assert engine.succeeds(parse_formula("neq(1, 2)"))

    def test_comparison_on_unbound_raises(self):
        engine = Engine(Program())
        with pytest.raises(ValueError):
            engine.succeeds(parse_formula("lt(X, 1)"))

    def test_incomparable_types_fail_quietly(self):
        engine = Engine(Program())
        assert not engine.succeeds(parse_formula("lt(1, 'a')"))

    def test_member_enumerates(self):
        engine = Engine(Program())
        results = engine.ask(parse_formula("member(X, [1, 2, 3])"), [X])
        assert [r["X"] for r in results] == [1, 2, 3]

    def test_member_unifies_structured_rows(self):
        engine = Engine(Program())
        results = engine.ask(parse_formula("member([X, Y], [[1, a], [2, b]])"), [X, Y])
        assert [(r["X"], r["Y"]) for r in results] == [(1, "a"), (2, "b")]

    def test_member_requires_bound_collection(self):
        engine = Engine(Program())
        with pytest.raises(ValueError):
            engine.succeeds(parse_formula("member(1, X)"))

    def test_ground(self):
        engine = Engine(Program())
        assert engine.succeeds(parse_formula("ground(1)"))
        assert not engine.succeeds(parse_formula("ground(X)"))

    def test_naf(self):
        engine = _engine("p(1).")
        assert engine.succeeds(parse_formula("not p(2)"))
        assert not engine.succeeds(parse_formula("not p(1)"))

    def test_custom_builtin_registration(self):
        engine = Engine(Program())

        def double(args, subst, state):
            from repro.flogic.terms import resolve, unify

            value = resolve(args[0], subst)
            bound = unify(args[1], value * 2, subst)
            if bound is not None:
                yield bound, state

        engine.register_builtin("double", 2, double)
        assert engine.ask(parse_formula("double(21, X)"), [X]) == [{"X": 42}]


class TestStoreIntegration:
    def test_isa_and_attr_molecules(self):
        store = (
            ObjectStore()
            .with_subclass("form", "action")
            .with_member("f1", "form")
            .with_attr("f1", "method", "POST")
        )
        engine = Engine(
            parse_rules("post_action(X) <- X : action * X[method -> 'POST']."),
            store=store,
        )
        assert engine.ask(parse_formula("post_action(X)"), [X]) == [{"X": "f1"}]

    def test_solve_against_explicit_store(self):
        engine = Engine(Program())
        store = ObjectStore().with_attr("o", "a", 1)
        results = list(engine.solve(parse_formula("o[a -> X]"), store=store))
        assert len(results) == 1
