"""Tests for the computer-equipment domain."""

import pytest

from repro.domains.hardware import (
    BRANDS,
    PCDIRECT_HOST,
    REVIEWS_HOST,
    WAREHOUSE_HOST,
    HardwareDataset,
    HardwareWebBase,
    build_hardware_world,
)


@pytest.fixture(scope="module")
def hardware():
    return HardwareWebBase()


class TestDataset:
    def test_deterministic(self):
        assert HardwareDataset(seed=3).listings == HardwareDataset(seed=3).listings

    def test_guaranteed_bargain_laptops(self):
        data = HardwareDataset()
        ratings = {(r.brand, r.model): r.rating for r in data.reviews}
        for host in (WAREHOUSE_HOST, PCDIRECT_HOST):
            winners = [
                l
                for l in data.listings_for(host, category="laptop")
                if l.price < 2500 and ratings[(l.brand, l.model)] >= 4.0
            ]
            assert winners, host


class TestLayers:
    def test_vendor_vocabularies_differ_at_vps(self, hardware):
        assert "maker" in hardware.vps.relation("pcdirect").schema
        assert "brand" in hardware.vps.relation("warehouse").schema

    def test_logical_unifies_vocabularies(self, hardware):
        stock = hardware.logical.relation("stock")
        assert set(stock.schema.attrs) == {"category", "brand", "model", "price"}

    def test_stock_unions_both_vendors(self, hardware):
        result = hardware.logical.fetch("stock", {"category": "printer"})
        expected = len(
            hardware.world.dataset.listings_for(WAREHOUSE_HOST, category="printer")
        ) + len(hardware.world.dataset.listings_for(PCDIRECT_HOST, category="printer"))
        # Identical (vendor, price) duplicates collapse under set semantics.
        assert 0 < len(result) <= expected

    def test_reviews_site_mandatory_brand(self, hardware):
        handles = hardware.vps.relation("reviews").handles
        assert [sorted(h.mandatory) for h in handles] == [["brand"]]


class TestFlagshipQuery:
    QUERY = (
        "SELECT brand, model, price, rating "
        "WHERE category = 'laptop' AND price < 2500 AND rating >= 4"
    )

    def test_matches_ground_truth(self, hardware):
        data = hardware.world.dataset
        ratings = {(r.brand, r.model): r.rating for r in data.reviews}
        expected = {
            (l.brand, l.model, l.price, ratings[(l.brand, l.model)])
            for host in (WAREHOUSE_HOST, PCDIRECT_HOST)
            for l in data.listings_for(host, category="laptop")
            if l.price < 2500 and ratings[(l.brand, l.model)] >= 4.0
        }
        assert set(hardware.query(self.QUERY).rows) == expected

    def test_join_feeds_brand_to_reviews(self, hardware):
        plan = hardware.plan(self.QUERY)
        assert len(plan.feasible_objects) == 1
        relations = plan.feasible_objects[0].relations
        assert relations.index("ratings") > relations.index("stock")

    def test_world_isolation(self):
        assert len(build_hardware_world().server.hosts) == 3
