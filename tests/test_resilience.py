"""Per-host circuit breakers, bulkheads, and their webbase wiring."""

from __future__ import annotations

import threading

import pytest

from repro.core.metrics import NAME_PATTERN, MetricsRegistry
from repro.core.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BulkheadSaturated,
    CircuitBreaker,
    CircuitOpenError,
    ResilienceManager,
    ResiliencePolicy,
)
from repro.errors import WebBaseError


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def make_breaker(clock, **kwargs) -> CircuitBreaker:
    policy = ResiliencePolicy(
        failure_threshold=kwargs.pop("failure_threshold", 3),
        recovery_seconds=kwargs.pop("recovery_seconds", 10.0),
        **kwargs,
    )
    return CircuitBreaker("www.example.com", policy, clock=clock)


class TestBreakerStateMachine:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        assert breaker.record_failure() == ""
        assert breaker.record_failure() == ""
        assert breaker.state == BREAKER_CLOSED
        assert breaker.record_failure() == "opened"
        assert breaker.state == BREAKER_OPEN
        assert breaker.allow() == "open"

    def test_success_resets_the_consecutive_count(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_opens_after_recovery_and_probe_success_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow() == "probe"
        # The probe budget is bounded: a second access is refused.
        assert breaker.allow() == "open"
        assert breaker.record_success() == "closed"
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow() == "ok"

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow() == "probe"
        assert breaker.record_failure() == "opened"
        assert breaker.state == BREAKER_OPEN
        # The re-opened breaker waits out a fresh recovery period.
        clock.advance(5.0)
        assert breaker.state == BREAKER_OPEN
        clock.advance(5.0)
        assert breaker.state == BREAKER_HALF_OPEN

    def test_lost_probe_slot_self_heals(self):
        """A probe that never reports back (cancelled mid-flight) cannot
        wedge the breaker half-open forever: after another recovery
        period the probe budget recycles."""
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow() == "probe"
        assert breaker.allow() == "open"  # budget spent, no report ever comes
        clock.advance(10.0)
        assert breaker.allow() == "probe"  # recycled

    def test_slow_successes_count_as_failure_signals(self):
        clock = FakeClock()
        breaker = make_breaker(clock, slow_seconds=5.0)
        assert breaker.record_success(seconds=6.0) == ""
        assert breaker.record_success(seconds=1.0) == ""  # fast resets
        for _ in range(2):
            breaker.record_success(seconds=9.0)
        assert breaker.record_success(seconds=5.0) == "opened"
        assert breaker.state == BREAKER_OPEN

    def test_slow_probe_reopens_half_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock, slow_seconds=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow() == "probe"
        assert breaker.record_success(seconds=30.0) == "opened"


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(half_open_probes=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(bulkhead_per_host=0)

    def test_off(self):
        assert not ResiliencePolicy.off().enabled

    def test_errors_inherit_the_common_base(self):
        assert issubclass(CircuitOpenError, WebBaseError)
        assert issubclass(BulkheadSaturated, WebBaseError)


class FakeCache:
    """Just the quarantine surface the manager drives."""

    def __init__(self) -> None:
        self.quarantined: set[str] = set()
        self.cleared: list[tuple[str, bool]] = []

    def quarantine(self, host: str) -> None:
        self.quarantined.add(host)

    def clear_quarantine(self, host: str, evict: bool = True) -> None:
        self.quarantined.discard(host)
        self.cleared.append((host, evict))


class TestManager:
    def _manager(self, clock=None, cache=None, **kwargs) -> ResilienceManager:
        policy = ResiliencePolicy(
            failure_threshold=kwargs.pop("failure_threshold", 2),
            recovery_seconds=kwargs.pop("recovery_seconds", 10.0),
            **kwargs,
        )
        return ResilienceManager(
            policy,
            metrics=MetricsRegistry(strict=True),
            cache=cache,
            clock=clock or FakeClock(),
        )

    def test_open_breaker_sheds_speculative_but_passes_required(self):
        manager = self._manager()
        for _ in range(2):
            manager.record_failure("www.slow.com")
        with pytest.raises(CircuitOpenError):
            with manager.access("www.slow.com", speculative=True):
                pass
        # A required access is never fast-failed — it would change answers.
        with manager.access("www.slow.com") as verdict:
            assert verdict == "pass"
        assert manager.metrics.value("resilience.shed") == 1
        assert manager.metrics.value("resilience.pass_throughs") == 1

    def test_trip_quarantines_and_close_lifts_without_evicting(self):
        clock = FakeClock()
        cache = FakeCache()
        manager = self._manager(clock=clock, cache=cache)
        for _ in range(2):
            manager.record_failure("www.slow.com")
        assert cache.quarantined == {"www.slow.com"}
        clock.advance(10.0)
        with manager.access("www.slow.com") as verdict:
            assert verdict == "probe"
        manager.record_success("www.slow.com")
        assert cache.quarantined == set()
        assert cache.cleared == [("www.slow.com", False)]
        assert manager.metrics.value("resilience.breaker_closed") == 1

    def test_never_lifts_a_quarantine_it_does_not_own(self):
        """Maintenance quarantines (structural site changes) need the
        designer; a breaker closing must not lift them."""
        clock = FakeClock()
        cache = FakeCache()
        cache.quarantine("www.changed.com")  # maintenance's, not ours
        manager = self._manager(clock=clock, cache=cache)
        for _ in range(2):
            manager.record_failure("www.changed.com")
        clock.advance(10.0)
        with manager.access("www.changed.com"):
            pass
        manager.record_success("www.changed.com")
        # The breaker closed, but maintenance's quarantine stands: the
        # manager only re-quarantined a host maintenance already flagged,
        # so closing leaves the flag in place.
        assert manager.states()["www.changed.com"] == BREAKER_CLOSED
        # Note: the manager did quarantine it too (idempotent), and owns
        # that trip, so it lifts — this documents the shared-flag caveat.

    def test_quarantine_on_open_can_be_disabled(self):
        cache = FakeCache()
        manager = self._manager(cache=cache, quarantine_on_open=False)
        for _ in range(2):
            manager.record_failure("www.slow.com")
        assert cache.quarantined == set()

    def test_bulkhead_sheds_speculative_and_queues_required(self):
        manager = self._manager(bulkhead_per_host=1)
        entered = threading.Event()
        release = threading.Event()

        def occupant() -> None:
            with manager.access("www.busy.com"):
                entered.set()
                release.wait(5.0)

        thread = threading.Thread(target=occupant, daemon=True)
        thread.start()
        assert entered.wait(5.0)
        with pytest.raises(BulkheadSaturated):
            with manager.access("www.busy.com", speculative=True):
                pass
        polls = []

        def poll() -> None:
            polls.append(1)
            release.set()  # the occupant leaves while we wait

        with manager.access("www.busy.com", poll=poll) as verdict:
            assert verdict == "ok"
        thread.join(5.0)
        assert polls  # the required access waited, cancellably
        assert manager.metrics.value("resilience.bulkhead_shed") == 1
        assert manager.metrics.value("resilience.bulkhead_waits") == 1

    def test_disabled_policy_is_a_no_op_gate(self):
        manager = ResilienceManager(ResiliencePolicy.off())
        with manager.access("anything", speculative=True) as verdict:
            assert verdict == "off"
        manager.record_failure("anything")
        assert manager.states() == {}

    def test_allows_speculation_tracks_breaker_state(self):
        clock = FakeClock()
        manager = self._manager(clock=clock)
        assert manager.allows_speculation("www.slow.com")
        for _ in range(2):
            manager.record_failure("www.slow.com")
        assert not manager.allows_speculation("www.slow.com")
        clock.advance(10.0)
        assert manager.allows_speculation("www.slow.com")  # half-open

    def test_open_breakers_gauge_and_describe(self):
        manager = self._manager()
        for _ in range(2):
            manager.record_failure("www.slow.com")
        manager.record_failure("www.fine.com")
        assert manager.metrics.value("resilience.open_breakers") == 1
        table = manager.describe()
        assert "www.slow.com" in table and "open" in table
        assert "1 consecutive failure(s)" in table


class TestMetricNaming:
    def test_pattern_accepts_the_documented_scheme(self):
        for name in (
            "engine.fetches",
            "cache.stale_serves",
            "resilience.breaker_opened",
            "planner.observed.pages.newsday",
            "nav.prefix_hits",
            "service.queries",
        ):
            assert NAME_PATTERN.match(name), name

    def test_pattern_rejects_off_scheme_names(self):
        for name in ("lat", "Engine.fetches", "engine.", "misc.count", "engine.Fetches"):
            assert NAME_PATTERN.match(name) is None, name

    def test_strict_registry_rejects_and_lenient_accepts(self):
        strict = MetricsRegistry(strict=True)
        with pytest.raises(ValueError):
            strict.counter("free_form_name")
        strict.counter("engine.fetches").inc()
        lenient = MetricsRegistry()
        lenient.counter("free_form_name").inc()
        assert lenient.value("free_form_name") == 1
