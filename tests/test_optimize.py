"""Unit and property tests for the algebra optimizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.algebra import (
    Base,
    Derive,
    Join,
    Project,
    Rename,
    Select,
    Union,
    evaluate,
)
from repro.relational.bindings import binding_sets
from repro.relational.conditions import And, Attr, Comparison, Const, Or, conj, eq
from repro.relational.optimize import optimize
from repro.relational.relation import Relation


class Catalog:
    def __init__(self):
        self.fetches = []
        self.data = {
            "ads": Relation(
                ["make", "model", "year", "price"],
                [
                    ("ford", "escort", 1995, 4800),
                    ("ford", "escort", 1990, 2100),
                    ("ford", "taurus", 1996, 9000),
                    ("jaguar", "xj6", 1993, 21000),
                    ("jaguar", "xj6", 1990, 11000),
                ],
            ),
            "bb": Relation(
                ["make", "model", "year", "bbprice"],
                [
                    ("ford", "escort", 1995, 5000),
                    ("ford", "escort", 1990, 2000),
                    ("jaguar", "xj6", 1993, 25000),
                    ("jaguar", "xj6", 1990, 10000),
                ],
            ),
        }
        self.binds = {"ads": binding_sets(set()), "bb": binding_sets(set())}

    def base_schema(self, name):
        return self.data[name].schema

    def base_binding_sets(self, name):
        return self.binds[name]

    def fetch(self, name, given):
        self.fetches.append((name, dict(given)))
        relation = self.data[name]
        relevant = {k: v for k, v in given.items() if k in relation.schema}
        return relation.select(lambda row: all(row[k] == v for k, v in relevant.items()))


@pytest.fixture()
def catalog():
    return Catalog()


class TestRules:
    def test_merge_selects(self, catalog):
        expr = Select(Select(Base("ads"), eq("make", "ford")), eq("model", "escort"))
        out = optimize(expr, catalog)
        assert isinstance(out.expression, Select)
        assert isinstance(out.expression.child, Base)
        assert any(r.rule == "merge-selects" for r in out.rewrites)

    def test_push_through_project(self, catalog):
        expr = Select(Project(Base("ads"), ("make", "price")), eq("make", "ford"))
        out = optimize(expr, catalog)
        assert isinstance(out.expression, Project)
        assert isinstance(out.expression.child, Select)

    def test_push_through_rename(self, catalog):
        expr = Select(
            Rename(Base("ads"), (("make", "manufacturer"),)),
            eq("manufacturer", "ford"),
        )
        out = optimize(expr, catalog)
        assert isinstance(out.expression, Rename)
        inner = out.expression.child
        assert isinstance(inner, Select)
        assert inner.condition.attributes() == {"make"}

    def test_push_through_union(self, catalog):
        expr = Select(Union(Base("ads"), Base("ads")), eq("make", "ford"))
        out = optimize(expr, catalog)
        assert isinstance(out.expression, Union)
        assert isinstance(out.expression.left, Select)
        assert isinstance(out.expression.right, Select)

    def test_push_into_join_sides(self, catalog):
        cond = conj(
            eq("price", 4800),  # ads only
            eq("bbprice", 5000),  # bb only
            Comparison(Attr("price"), "<", Attr("bbprice")),  # spans both
        )
        expr = Select(Join(Base("ads"), Base("bb")), cond)
        out = optimize(expr, catalog)
        assert isinstance(out.expression, Select)  # the spanning conjunct stays
        join = out.expression.child
        assert isinstance(join, Join)
        assert isinstance(join.left, Select) and isinstance(join.right, Select)

    def test_push_through_derive_safe_conjuncts(self, catalog):
        expr = Select(
            Derive(Base("ads"), "price", lambda r: r["price"] // 1000),
            conj(eq("make", "ford"), eq("price", 4)),
        )
        out = optimize(expr, catalog)
        # make=ford moved below the derive; price=4 stayed above it.
        assert isinstance(out.expression, Select)
        assert out.expression.condition.attributes() == {"price"}

    def test_collapse_projects(self, catalog):
        expr = Project(Project(Base("ads"), ("make", "model", "year")), ("make",))
        out = optimize(expr, catalog)
        assert isinstance(out.expression, Project)
        assert isinstance(out.expression.child, Base)

    def test_drop_identity_project(self, catalog):
        expr = Project(Base("ads"), ("make", "model", "year", "price"))
        out = optimize(expr, catalog)
        assert out.expression == Base("ads")

    def test_explain_renders(self, catalog):
        expr = Select(Select(Base("ads"), eq("make", "ford")), eq("model", "escort"))
        out = optimize(expr, catalog)
        assert "merge-selects" in out.explain()

    def test_no_rewrites_on_plain_base(self, catalog):
        out = optimize(Base("ads"), catalog)
        assert out.expression == Base("ads")
        assert out.explain() == "(no rewrites applied)"


class TestEffectiveness:
    def test_pushed_selection_shrinks_dependent_join_fanout(self):
        """Filtering the outer side before a dependent join reduces the
        number of inner fetches — the Web-facing payoff."""
        catalog = Catalog()
        catalog.binds["bb"] = binding_sets({"make", "model"})
        cond = conj(eq("make", "jaguar"), Comparison(Attr("year"), ">=", Const(1993)))
        expr = Select(Join(Base("ads"), Base("bb")), cond)

        plain = evaluate(expr, catalog)
        plain_bb_fetches = len([f for f in catalog.fetches if f[0] == "bb"])

        catalog.fetches.clear()
        optimized = optimize(expr, catalog).expression
        improved = evaluate(optimized, catalog)
        optimized_bb_fetches = len([f for f in catalog.fetches if f[0] == "bb"])

        assert improved == plain
        assert optimized_bb_fetches < plain_bb_fetches


# -- generative equivalence ---------------------------------------------------------

_conditions = st.one_of(
    st.builds(lambda v: eq("make", v), st.sampled_from(["ford", "jaguar", "saab"])),
    st.builds(lambda v: eq("model", v), st.sampled_from(["escort", "xj6"])),
    st.builds(
        lambda n: Comparison(Attr("year"), ">=", Const(n)), st.integers(1988, 1998)
    ),
    st.builds(
        lambda n: Comparison(Attr("price"), "<", Const(n)), st.integers(1000, 30000)
    ),
)


def _exprs(depth=3):
    if depth == 0:
        return st.just(Base("ads"))
    sub = _exprs(depth - 1)
    return st.one_of(
        st.just(Base("ads")),
        st.builds(Select, sub, _conditions),
        st.builds(Select, sub, st.builds(lambda a, b: conj(a, b), _conditions, _conditions)),
        st.builds(lambda c: Project(c, ("make", "model", "year", "price")), sub),
        # Union requires matching schemas; normalize both sides first.
        st.builds(
            lambda l, r: Union(
                Project(l, ("make", "model", "year", "price")),
                Project(r, ("make", "model", "year", "price")),
            ),
            sub,
            sub,
        ),
        st.builds(lambda c: Join(c, Base("bb")), sub),
        st.builds(
            lambda c: Derive(c, "price", lambda row: (row["price"] or 0) * 2), sub
        ),
    )


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(_exprs())
    def test_optimization_preserves_results(self, expr):
        catalog = Catalog()
        baseline = evaluate(expr, catalog)
        rewritten = optimize(expr, catalog).expression
        assert evaluate(rewritten, catalog) == baseline

    @settings(max_examples=30, deadline=None)
    @given(_exprs(), st.sampled_from([{}, {"make": "ford"}, {"year": 1990}]))
    def test_optimization_preserves_results_under_given(self, expr, given):
        catalog = Catalog()
        baseline = evaluate(expr, catalog, dict(given))
        rewritten = optimize(expr, catalog).expression
        assert evaluate(rewritten, catalog, dict(given)) == baseline
