"""End-to-end tests of the assembled webbase against dataset ground truth."""

import pytest

from repro.core.execution import WebBaseConfig
from repro.core.parallel import parallel_site_query, sequential_site_query
from repro.core.stats import format_timing_table, site_query_timings
from repro.core.webbase import WebBase
from repro.vps.cache import CachePolicy
from repro.flogic.syntax import parse_rules
from repro.sites.dataset import NY_ZIPCODES, Car
from repro.sites.world import TIMING_TABLE_HOSTS


JAGUAR_QUERY = (
    "SELECT make, model, year, price, bb_price, safety, contact "
    "WHERE make = 'jaguar' AND year >= 1993 AND condition = 'good' "
    "AND safety IN ('good', 'excellent') AND price < bb_price"
)


def _expected_jaguars(world, hosts):
    """Ground-truth evaluation of the Jaguar query straight off the dataset."""
    expected = set()
    for host in hosts:
        for ad in world.dataset.ads_for(host, make="jaguar"):
            if ad.car.year < 1993:
                continue
            safety = world.dataset.safety_of(ad.car).safety
            if safety not in ("good", "excellent"):
                continue
            bb = world.dataset.bluebook_price(ad.car, "good").bb_price
            if ad.price < bb:
                expected.add(
                    ("jaguar", ad.car.model, ad.car.year, ad.price, bb, safety, ad.contact)
                )
    return expected


class TestJaguarQuery:
    """Example 2.1 / the introduction's running query."""

    def test_answers_match_ground_truth(self, webbase):
        result = webbase.query(JAGUAR_QUERY)
        expected = _expected_jaguars(
            webbase.world,
            [
                "www.newsday.com",
                "www.nytimes.com",
                "www.carpoint.com",
                "www.autoweb.com",
            ],
        )
        assert set(result.rows) == expected
        assert len(result) > 5

    def test_every_answer_is_a_bargain(self, webbase):
        for row in webbase.query(JAGUAR_QUERY).to_dicts():
            assert row["price"] < row["bb_price"]
            assert row["year"] >= 1993
            assert row["safety"] in ("good", "excellent")


class TestLayerConsistency:
    def test_vps_matches_dataset_per_site(self, webbase):
        world = webbase.world
        result = webbase.fetch_vps("newsday", {"make": "ford", "model": "escort"})
        expected = world.dataset.ads_for("www.newsday.com", make="ford", model="escort")
        assert len(result) == len(expected)

    def test_logical_union_covers_vps_sources(self, webbase):
        classifieds = webbase.fetch_logical("classifieds", {"make": "saab"})
        newsday = webbase.fetch_vps("newsday", {"make": "saab"})
        nytimes = webbase.fetch_vps("nytimes", {"manufacturer": "saab"})
        assert len(classifieds) == len(newsday) + len(nytimes)

    def test_navigation_expressions_are_valid_calculus(self, webbase):
        for name in webbase.vps.relation_names:
            text = webbase.navigation_expression(name)
            program = parse_rules(text)
            assert len(program.rules) >= 2, name

    def test_summaries_render(self, webbase):
        assert "virtual physical schema" in webbase.vps_summary()
        assert "logical schema" in webbase.logical_summary()


class TestTimingHarness:
    def test_all_ten_sites_timed(self, webbase):
        timings = site_query_timings(webbase)
        assert [t.host for t in timings] == TIMING_TABLE_HOSTS

    def test_every_site_returns_rows_and_pages(self, webbase):
        for t in site_query_timings(webbase):
            assert t.rows > 0, t.host
            assert t.pages >= 3, t.host  # entry + search + results at least

    def test_elapsed_exceeds_cpu(self, webbase):
        for t in site_query_timings(webbase):
            assert t.elapsed_seconds > t.cpu_seconds
            assert t.network_seconds > 0

    def test_format_table(self, webbase):
        text = format_timing_table(site_query_timings(webbase))
        assert "www.newsday.com" in text and "elapsed" in text


class TestParallelAblation:
    def test_parallel_equals_sequential_results(self, webbase):
        seq = sequential_site_query(webbase)
        par = parallel_site_query(webbase)
        assert seq.rows_by_host == par.rows_by_host

    def test_parallel_elapsed_model_wins(self, webbase):
        outcome = parallel_site_query(webbase)
        assert outcome.parallel_elapsed < outcome.sequential_elapsed
        assert outcome.speedup > 2.0

    def test_worker_cap_respected(self, webbase):
        outcome = parallel_site_query(webbase, max_workers=2)
        assert len(outcome.rows_by_host) == len(TIMING_TABLE_HOSTS)


class TestCachingAblation:
    def test_cached_webbase_equivalent_and_faster(self):
        cached = WebBase.create(WebBaseConfig(cache=CachePolicy.lru()))
        plain = WebBase.create(WebBaseConfig(cache=CachePolicy.noop()))
        query = "SELECT make, model, price WHERE make = 'saab'"
        first = cached.query(query)
        assert first == plain.query(query)
        misses_after_first = cached.cache.misses
        second = cached.query(query)
        assert second == first
        assert cached.cache.misses == misses_after_first  # all hits
        assert cached.cache.hits > 0


class TestDeterminism:
    def test_two_builds_agree(self):
        a = WebBase.create()
        b = WebBase.create()
        query = "SELECT make, model, price WHERE make = 'honda'"
        assert a.query(query) == b.query(query)

    def test_repeated_queries_agree(self, webbase):
        query = "SELECT make, model, price WHERE make = 'bmw'"
        assert webbase.query(query) == webbase.query(query)


class TestNyAreaShopping:
    def test_zip_filter_on_dealers(self, webbase):
        query = (
            "SELECT make, model, price, zip "
            "WHERE make = 'jaguar' AND zip IN ('%s')" % "', '".join(NY_ZIPCODES)
        )
        result = webbase.query(query)
        assert len(result) > 0
        assert all(d["zip"] in NY_ZIPCODES for d in result.to_dicts())

    def test_financing_join(self, webbase):
        result = webbase.query(
            "SELECT make, model, price, duration, rate "
            "WHERE make = 'saab' AND zip = '10001' AND duration = 36"
        )
        if len(result):  # saab ads in 10001 exist at some dealer
            assert all(d["duration"] == 36 for d in result.to_dicts())
