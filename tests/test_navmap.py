"""Unit tests for navigation-map structures and their F-logic lowering."""

import pytest

from repro.navigation.model import (
    FormEdge,
    FormKey,
    LinkEdge,
    PageSignature,
    flogic_base_store,
)
from repro.navigation.navmap import MapError, NavigationMap
from repro.web.http import Url
from repro.web.page import parse_page


SEARCH = """
<html><head><title>Search</title></head><body>
<form action="/cgi" method="post"><input type=text name=make></form>
</body></html>
"""
DATA = "<html><head><title>Results</title></head><body><table><tr><th>A</th></tr><tr><td>1</td></tr></table></body></html>"


def _page(body, path="/", query=""):
    return parse_page(Url("h.com", path, query), body)


class TestIdentity:
    def test_same_structure_same_node(self):
        navmap = NavigationMap("h.com")
        node1, created1 = navmap.node_for_page(_page(DATA, "/r", "start=0"))
        node2, created2 = navmap.node_for_page(_page(DATA, "/r", "start=10"))
        assert created1 and not created2
        assert node1 is node2

    def test_different_forms_different_nodes(self):
        navmap = NavigationMap("h.com")
        node1, _ = navmap.node_for_page(_page(SEARCH, "/cgi"))
        node2, _ = navmap.node_for_page(_page(DATA, "/cgi"))
        assert node1 is not node2

    def test_different_paths_different_nodes(self):
        navmap = NavigationMap("h.com")
        node1, _ = navmap.node_for_page(_page(DATA, "/a"))
        node2, _ = navmap.node_for_page(_page(DATA, "/b"))
        assert node1 is not node2

    def test_form_key_of_spec(self):
        page = _page(SEARCH)
        key = FormKey.of(page.forms[0])
        assert key.action_path == "/cgi"
        assert key.method == "POST"
        assert key.widgets == frozenset({"make"})
        assert key.matches(page.forms[0])

    def test_signature_ignores_query(self):
        a = PageSignature.of(_page(DATA, "/r", "x=1"))
        b = PageSignature.of(_page(DATA, "/r", "x=2"))
        assert a == b


class TestGraph:
    def _map(self):
        navmap = NavigationMap("h.com")
        root, _ = navmap.node_for_page(_page("<html><body></body></html>", "/"))
        search, _ = navmap.node_for_page(_page(SEARCH, "/search"))
        data, _ = navmap.node_for_page(_page(DATA, "/cgi"))
        navmap.add_edge(LinkEdge(root.node_id, search.node_id, "Go"))
        key = FormKey("/cgi", "POST", frozenset({"make"}))
        navmap.add_edge(FormEdge(search.node_id, data.node_id, key))
        return navmap, root, search, data

    def test_root_is_first_node(self):
        navmap, root, _, _ = self._map()
        assert navmap.root is root

    def test_duplicate_edges_rejected(self):
        navmap, root, search, _ = self._map()
        assert not navmap.add_edge(LinkEdge(root.node_id, search.node_id, "Go"))
        assert len(navmap.edges) == 2

    def test_out_in_edges(self):
        navmap, root, search, data = self._map()
        assert len(navmap.out_edges(root.node_id)) == 1
        assert len(navmap.in_edges(data.node_id)) == 1

    def test_unknown_node_raises(self):
        navmap, _, _, _ = self._map()
        with pytest.raises(MapError):
            navmap.node("n99")

    def test_empty_map_has_no_root(self):
        with pytest.raises(MapError):
            NavigationMap("h.com").root

    def test_reaches_data_requires_marking(self):
        navmap, root, _, data = self._map()
        assert not navmap.reaches_data(root.node_id)
        from repro.navigation.extract import wrapper_from_headers

        data.wrapper = wrapper_from_headers({"A": "a"})
        data.relation_name = "r"
        assert navmap.reaches_data(root.node_id)

    def test_reaches_data_skips_row_links(self):
        navmap, root, search, data = self._map()
        from repro.navigation.extract import wrapper_from_headers

        detail, _ = navmap.node_for_page(_page(DATA, "/detail"))
        detail.wrapper = wrapper_from_headers({"A": "a"})
        detail.relation_name = "d"
        navmap.add_edge(LinkEdge(data.node_id, detail.node_id, "Features", row_link=True))
        assert not navmap.reaches_data(root.node_id)

    def test_summary_mentions_nodes(self):
        navmap, _, _, _ = self._map()
        text = navmap.summary()
        assert "n0" in text and "link(Go)" in text


class TestFlogicLowering:
    def test_base_store_hierarchy(self):
        store = flogic_base_store()
        assert "action" in store.superclasses("form_submit")
        assert "web_page" in store.superclasses("data_page")
        assert store.signatures_of("form")

    def test_map_lowering_counts(self):
        navmap = NavigationMap("h.com")
        root, _ = navmap.node_for_page(_page("<html><body></body></html>", "/"))
        search, _ = navmap.node_for_page(_page(SEARCH, "/search"))
        navmap.add_edge(LinkEdge(root.node_id, search.node_id, "Go"))
        store = navmap.to_store()
        # Objects: 2 pages + 1 action + 1 link object (form objects are
        # modeled by the MapBuilder, which populates node.forms).
        assert navmap.object_count() == 4
        assert navmap.attribute_count() > 4
        assert store.is_member(root.node_id, "web_page")

    def test_data_node_lowered_as_data_page(self):
        from repro.navigation.extract import wrapper_from_headers

        navmap = NavigationMap("h.com")
        node, _ = navmap.node_for_page(_page(DATA, "/r"))
        node.wrapper = wrapper_from_headers({"A": "a"})
        node.relation_name = "r"
        store = navmap.to_store()
        assert store.is_member(node.node_id, "data_page")
        assert store.is_member(node.node_id, "web_page")
        assert store.value(node.node_id, "extract") == "r"

    def test_widget_facts_lowered(self):
        navmap = NavigationMap("h.com")
        node, _ = navmap.node_for_page(_page(SEARCH, "/search"))
        from repro.navigation.builder import MapBuilder

        builder = MapBuilder("h.com")
        node.forms = {
            FormKey.of(_page(SEARCH, "/search").forms[0]): builder._model_form(
                _page(SEARCH, "/search").forms[0]
            )
        }
        store = navmap.to_store()
        widget_ids = [o for o in store.all_objects() if str(o).endswith("_make")]
        assert widget_ids
        assert store.value(widget_ids[0], "type") == "text"
