"""Failure-injection tests: broken sites must degrade, not crash.

The raw Web fails constantly (the paper's maintenance discussion exists
because of it).  These tests break the simulated sites in targeted ways —
server errors, vanished routes, malformed responses — and check that each
layer degrades gracefully: the executor yields no tuples instead of
raising, the logical union still returns the healthy sources' data when
semantics allow, and maintenance reports the damage.
"""

import pytest

from repro.core.sessions import map_newsday, map_nytimes
from repro.core.webbase import WebBase
from repro.navigation.compiler import compile_map
from repro.navigation.executor import NavigationExecutor
from repro.sites.world import build_world
from repro.web.http import Response
from repro.web.server import Site


@pytest.fixture()
def broken_world():
    return build_world()


def _break_route(site: Site, path: str, status: int = 500) -> None:
    site.route(path, lambda request: Response(status, "<html><body>boom</body></html>"))


class TestExecutorDegradation:
    def test_server_error_on_results_yields_no_tuples(self, broken_world):
        builder = map_newsday(broken_world)
        _break_route(broken_world.server.site("www.newsday.com"), "/cgi-bin/nclassy")
        executor = NavigationExecutor(broken_world.server)
        executor.add_site(compile_map(builder.map))
        assert executor.fetch("newsday", {"make": "ford"}) == []

    def test_vanished_entry_page_yields_no_tuples(self, broken_world):
        builder = map_newsday(broken_world)
        _break_route(broken_world.server.site("www.newsday.com"), "/", status=404)
        executor = NavigationExecutor(broken_world.server)
        executor.add_site(compile_map(builder.map))
        assert executor.fetch("newsday", {"make": "ford"}) == []

    def test_vanished_link_target_yields_no_tuples(self, broken_world):
        builder = map_newsday(broken_world)
        _break_route(
            broken_world.server.site("www.newsday.com"), "/classified/cars", status=404
        )
        executor = NavigationExecutor(broken_world.server)
        executor.add_site(compile_map(builder.map))
        assert executor.fetch("newsday", {"make": "ford"}) == []

    def test_garbage_html_on_results_yields_no_tuples(self, broken_world):
        builder = map_newsday(broken_world)
        broken_world.server.site("www.newsday.com").route(
            "/cgi-bin/nclassy",
            lambda request: Response(200, "<<<<not <html at all"),
        )
        executor = NavigationExecutor(broken_world.server)
        executor.add_site(compile_map(builder.map))
        assert executor.fetch("newsday", {"make": "ford"}) == []

    def test_restructured_results_table_yields_no_tuples(self, broken_world):
        """A site redesign that renames every column defeats the wrapper
        (and is what map maintenance exists to catch)."""
        from repro.web import html as H

        builder = map_newsday(broken_world)

        def redesigned(request):
            return H.page(
                "Redesigned",
                H.table(["Vehicle", "Cost"], [["ford escort", "$1"]]),
            )

        broken_world.server.site("www.newsday.com").route("/cgi-bin/nclassy", redesigned)
        executor = NavigationExecutor(broken_world.server)
        executor.add_site(compile_map(builder.map))
        assert executor.fetch("newsday", {"make": "ford"}) == []


class TestLayeredDegradation:
    def test_union_fails_loudly_when_one_source_is_down(self, broken_world):
        """Plain union semantics: every branch must answer (the relaxed
        union is the opt-in escape hatch)."""
        webbase = WebBase(broken_world)
        _break_route(broken_world.server.site("www.nytimes.com"), "/cgi-bin/autosearch")
        result = webbase.fetch_logical("classifieds", {"make": "saab"})
        # The broken branch contributes zero tuples; newsday still answers.
        newsday_only = webbase.fetch_vps("newsday", {"make": "saab"})
        assert len(result) == len(newsday_only)

    def test_ur_query_with_one_maximal_object_down(self, broken_world):
        webbase = WebBase(broken_world)
        for path in ("/cgi-bin/inventory", "/cgi-bin/find"):
            for host in ("www.carpoint.com", "www.autoweb.com"):
                site = broken_world.server.site(host)
                if path in site._routes:  # noqa: SLF001 - test injection
                    _break_route(site, path)
        result = webbase.query(
            "SELECT make, model, price WHERE make = 'saab'"
        )
        # Dealers contribute nothing; classifieds still answer.
        assert len(result) > 0


class TestMaintenanceCatchesDamage:
    def test_broken_site_reported(self, broken_world):
        from repro.navigation.maintenance import check_site
        from repro.web.browser import Browser

        builder = map_nytimes(broken_world)
        _break_route(broken_world.server.site("www.nytimes.com"), "/classified/autos", 404)
        report = check_site(builder.map, Browser(broken_world.server))
        assert not report.clean
        assert any(c.kind == "missing_link" for c in report.changes)
