"""Stress: many threads querying one shared WebBase concurrently.

The service hands one ``WebBase`` — one cross-query cache, one metrics
registry — to every client thread at once.  That is only sound if the
shared structures hold up under contention: single-flight coalescing must
keep the "one miss per unique upstream fetch" invariant (no duplicate
live fetches for the same key), the answers must be byte-identical to a
sequential run, and no metric increment may be lost to a race.

The webbases here run with ``optimizer="off"`` so both runs execute the
identical plan (the cost optimizer's choices could otherwise depend on
which thread warmed which statistics first).
"""

from __future__ import annotations

import threading

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.vps.cache import CachePolicy

THREADS = 8

WORKLOAD = [
    "SELECT make, model, price WHERE make = 'saab'",
    "SELECT make, model, price WHERE make = 'honda'",
    "SELECT make, model, year, price, contact WHERE make = 'ford' AND model = 'escort'",
    "SELECT make, model, rate WHERE make = 'honda' AND duration = 36",
]


def _fresh_webbase() -> WebBase:
    return WebBase.create(
        WebBaseConfig(optimizer="off", cache=CachePolicy.lru())
    )


def _run_workload(webbase: WebBase) -> dict[str, list[tuple]]:
    return {text: sorted(webbase.query(text).rows) for text in WORKLOAD}


def _counters(webbase: WebBase) -> dict[str, float]:
    return dict(webbase.metrics.snapshot()["counters"])


def test_concurrent_queries_share_one_cache_without_duplicate_fetches():
    # The sequential run establishes ground truth: per-workload answers and
    # the exact number of cache misses / live fetches one pass costs.
    sequential = _fresh_webbase()
    expected = _run_workload(sequential)
    base = _counters(sequential)
    base_requests = base["cache.requests"]
    base_misses = base["cache.misses"]
    base_fetches = base["engine.fetches"]
    assert base_misses > 0 and base_fetches > 0

    shared = _fresh_webbase()
    barrier = threading.Barrier(THREADS)
    results: list[dict[str, list[tuple]] | None] = [None] * THREADS
    errors: list[BaseException] = []

    def drive(index: int) -> None:
        try:
            barrier.wait()
            results[index] = _run_workload(shared)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(i,), daemon=True)
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not errors, "concurrent query raised: %r" % errors[:1]

    # Every thread sees exactly the sequential answers.
    for result in results:
        assert result == expected

    after = _counters(shared)
    # No lost increments: all T*R lookups are accounted for...
    assert after["cache.requests"] == THREADS * base_requests
    # ...and single-flight collapsed them to ONE miss (and one live fetch)
    # per unique upstream key — the same counts as a single sequential pass,
    # despite 8x the traffic.
    assert after["cache.misses"] == base_misses
    assert after["engine.fetches"] == base_fetches
    assert (
        after["cache.hits"] + after.get("cache.stale_serves", 0)
        == THREADS * base_requests - base_misses
    )


def test_concurrent_contexts_keep_metrics_consistent():
    """Counter arithmetic must reconcile exactly after a concurrent burst:
    every fetch attempt is a fetch or a retry, every request a hit or miss."""
    shared = _fresh_webbase()
    barrier = threading.Barrier(THREADS)
    errors: list[BaseException] = []

    def drive(index: int) -> None:
        try:
            barrier.wait()
            shared.query(WORKLOAD[index % len(WORKLOAD)])
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(i,), daemon=True)
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not errors

    after = _counters(shared)
    assert (
        after["cache.hits"]
        + after["cache.misses"]
        + after.get("cache.stale_serves", 0)
        == after["cache.requests"]
    )
    assert after["engine.fetch_attempts"] == after["engine.fetches"] + after.get(
        "engine.retries", 0
    )
