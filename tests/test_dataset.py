"""Unit tests for the synthetic dataset: determinism and guarantees."""

from repro.sites.dataset import (
    CLASSIFIED_HOSTS,
    DEALER_HOSTS,
    NY_ZIPCODES,
    Car,
    generate,
)


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = generate(seed=7, ads_per_host=30)
        b = generate(seed=7, ads_per_host=30)
        assert a.ads == b.ads
        assert a.bluebook == b.bluebook
        assert a.safety == b.safety
        assert a.rates == b.rates

    def test_different_seed_different_ads(self):
        a = generate(seed=1, ads_per_host=30)
        b = generate(seed=2, ads_per_host=30)
        assert a.ads != b.ads

    def test_ads_per_host_respected(self):
        data = generate(ads_per_host=25)
        for host in CLASSIFIED_HOSTS + DEALER_HOSTS:
            assert len(data.ads_for(host)) == 25


class TestGuarantees:
    def test_every_site_carries_ford_escorts(self):
        data = generate()
        for host in CLASSIFIED_HOSTS + DEALER_HOSTS:
            escorts = data.ads_for(host, make="ford", model="escort")
            assert len(escorts) >= 3, host

    def test_ny_jaguars_recent_and_under_blue_book(self):
        data = generate()
        for host in CLASSIFIED_HOSTS + DEALER_HOSTS:
            bargains = [
                ad
                for ad in data.ads_for(host, make="jaguar")
                if ad.car.year >= 1993
                and ad.zipcode in NY_ZIPCODES
                and data.bluebook_price(ad.car, ad.condition).bb_price > ad.price
            ]
            assert bargains, host

    def test_recent_jaguars_have_good_safety(self):
        data = generate()
        for model in ("xj6", "xk8"):
            for year in range(1993, 2000):
                rating = data.safety_of(Car("jaguar", model, year))
                assert rating.safety in ("good", "excellent")

    def test_blue_book_ordering_by_condition(self):
        data = generate()
        car = Car("ford", "escort", 1995)
        excellent = data.bluebook_price(car, "excellent").bb_price
        good = data.bluebook_price(car, "good").bb_price
        fair = data.bluebook_price(car, "fair").bb_price
        assert excellent > good > fair

    def test_newer_years_generally_cost_more(self):
        data = generate()
        old = data.bluebook_price(Car("ford", "escort", 1990), "good").bb_price
        new = data.bluebook_price(Car("ford", "escort", 1999), "good").bb_price
        assert new > old


class TestLookups:
    def test_ads_for_filters(self):
        data = generate()
        host = CLASSIFIED_HOSTS[0]
        fords = data.ads_for(host, make="ford")
        assert fords and all(ad.car.make == "ford" for ad in fords)
        escorts = data.ads_for(host, make="ford", model="escort")
        assert escorts and all(ad.car.model == "escort" for ad in escorts)

    def test_ads_filter_case_insensitive(self):
        data = generate()
        host = CLASSIFIED_HOSTS[0]
        assert data.ads_for(host, make="Ford") == data.ads_for(host, make="ford")

    def test_ad_by_id(self):
        data = generate()
        ad = data.ads[0]
        assert data.ad_by_id(ad.ad_id) == ad
        assert data.ad_by_id(-1) is None

    def test_models_of(self):
        data = generate()
        assert data.models_of("jaguar") == ["xj6", "xk8"]
        assert data.models_of("nosuch") == []

    def test_rates_for(self):
        data = generate()
        rates = data.rates_for("10001")
        assert {r.duration for r in rates} == {24, 36, 48, 60}
        only48 = data.rates_for("10001", 48)
        assert len(only48) == 1 and only48[0].duration == 48

    def test_rates_unknown_zip_empty(self):
        data = generate()
        assert data.rates_for("00000") == []

    def test_ad_ids_unique(self):
        data = generate()
        ids = [ad.ad_id for ad in data.ads]
        assert len(ids) == len(set(ids))
