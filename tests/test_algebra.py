"""Unit tests for the binding-aware relational algebra evaluator."""

import pytest

from repro.relational.algebra import (
    Base,
    Derive,
    Fixed,
    Join,
    Project,
    Rename,
    Select,
    Union,
    binding_sets_of,
    evaluate,
    join_all,
    project,
    rename,
    schema_of,
    select,
    union_all,
)
from repro.relational.bindings import BindingError, binding_sets
from repro.relational.conditions import Attr, Comparison, Const, conj, eq
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class RecordingCatalog:
    """A catalog over fixed data that records every fetch it serves."""

    def __init__(self):
        self.fetches = []
        self.data = {
            "ads": Relation(
                ["make", "model", "year", "price"],
                [
                    ("ford", "escort", 1995, 4800),
                    ("ford", "escort", 1994, 4100),
                    ("ford", "taurus", 1996, 9000),
                    ("jaguar", "xj6", 1993, 21000),
                ],
            ),
            "bb": Relation(
                ["make", "model", "year", "bbprice"],
                [
                    ("ford", "escort", 1995, 5000),
                    ("ford", "escort", 1994, 4000),
                    ("jaguar", "xj6", 1993, 25000),
                ],
            ),
            "free": Relation(["zip", "rate"], [("10001", 7.5), ("10025", 8.0)]),
        }
        self.binds = {
            "ads": binding_sets({"make"}),
            "bb": binding_sets({"make", "model"}),
            "free": binding_sets(set()),
        }

    def base_schema(self, name):
        return self.data[name].schema

    def base_binding_sets(self, name):
        return self.binds[name]

    def fetch(self, name, given):
        self.fetches.append((name, dict(given)))
        relation = self.data[name]
        relevant = {k: v for k, v in given.items() if k in relation.schema}
        return relation.select(lambda row: all(row[k] == v for k, v in relevant.items()))


@pytest.fixture()
def catalog():
    return RecordingCatalog()


class TestStaticAnalyses:
    def test_schema_of_composites(self, catalog):
        expr = Project(
            Rename(Base("ads"), (("price", "asking"),)), ("make", "asking")
        )
        assert schema_of(expr, catalog) == Schema(["make", "asking"])

    def test_schema_of_join_unions_attrs(self, catalog):
        assert set(schema_of(Join(Base("ads"), Base("bb")), catalog).attrs) == {
            "make", "model", "year", "price", "bbprice",
        }

    def test_schema_of_derive_appends(self, catalog):
        expr = Derive(Base("ads"), "usd", lambda r: r["price"])
        assert "usd" in schema_of(expr, catalog)

    def test_binding_sets_select_absorbs(self, catalog):
        expr = Select(Base("ads"), eq("make", "ford"))
        assert binding_sets_of(expr, catalog) == binding_sets(set())

    def test_binding_sets_join(self, catalog):
        expr = Join(Base("ads"), Base("bb"))
        assert binding_sets_of(expr, catalog) == binding_sets({"make"})

    def test_binding_sets_fixed_is_free(self, catalog):
        rel = Relation(["x"], [(1,)])
        assert binding_sets_of(Fixed(rel), catalog) == binding_sets(set())

    def test_binding_sets_union(self, catalog):
        expr = Union(Base("ads"), Rename(Base("bb"), (("bbprice", "price"),)))
        sets = binding_sets_of(expr, catalog)
        assert sets == binding_sets({"make", "model"})


class TestEvaluation:
    def test_base_fetch_pushes_given(self, catalog):
        result = evaluate(Base("ads"), catalog, {"make": "ford"})
        assert len(result) == 3
        assert catalog.fetches == [("ads", {"make": "ford"})]

    def test_given_filters_even_if_catalog_ignores(self, catalog):
        # The catalog may return a superset; evaluate() must still filter.
        catalog.data["ads"] = catalog.data["ads"]  # unchanged
        result = evaluate(Base("ads"), catalog, {"make": "ford", "model": "escort"})
        assert all(d["model"] == "escort" for d in result.to_dicts())

    def test_select_pushes_constants_down(self, catalog):
        expr = Select(Base("ads"), conj(eq("make", "ford"), eq("model", "escort")))
        result = evaluate(expr, catalog)
        assert len(result) == 2
        assert catalog.fetches[0][1] == {"make": "ford", "model": "escort"}

    def test_select_residual_predicate_applied(self, catalog):
        expr = Select(
            Base("ads"),
            conj(eq("make", "ford"), Comparison(Attr("price"), "<", Const(5000))),
        )
        result = evaluate(expr, catalog)
        assert {d["price"] for d in result.to_dicts()} == {4800, 4100}

    def test_project_applies_given_before_dropping(self, catalog):
        expr = Project(Base("ads"), ("model",))
        result = evaluate(expr, catalog, {"make": "jaguar"})
        assert result.rows == (("xj6",),)

    def test_rename_translates_given(self, catalog):
        expr = Rename(Base("ads"), (("make", "manufacturer"),))
        result = evaluate(expr, catalog, {"manufacturer": "jaguar"})
        assert len(result) == 1
        assert catalog.fetches[0][1] == {"make": "jaguar"}

    def test_derive_blocks_pushdown_of_derived_attr(self, catalog):
        expr = Derive(Base("ads"), "price", lambda r: r["price"] // 1000)
        result = evaluate(expr, catalog, {"make": "ford", "price": 4})
        # price=4 filters *after* derivation; it is not pushed to the fetch.
        assert catalog.fetches[0][1] == {"make": "ford"}
        assert {d["price"] for d in result.to_dicts()} == {4}

    def test_union_evaluates_both_sides(self, catalog):
        expr = Union(
            Project(Base("ads"), ("make", "model")),
            Project(Base("bb"), ("make", "model")),
        )
        result = evaluate(expr, catalog, {"make": "ford", "model": "escort"})
        assert result.rows == (("ford", "escort"),)

    def test_union_infeasible_raises(self, catalog):
        expr = Union(
            Project(Base("ads"), ("make", "model")),
            Project(Base("bb"), ("make", "model")),
        )
        with pytest.raises(BindingError):
            evaluate(expr, catalog, {"make": "ford"})  # bb needs model too

    def test_relaxed_union_takes_feasible_side(self, catalog):
        expr = Union(
            Project(Base("ads"), ("make", "model")),
            Project(Base("bb"), ("make", "model")),
            relaxed=True,
        )
        result = evaluate(expr, catalog, {"make": "ford"})
        assert ("ford", "taurus") in result.rows

    def test_dependent_join_feeds_values(self, catalog):
        expr = Join(Base("ads"), Base("bb"))
        result = evaluate(expr, catalog, {"make": "ford"})
        assert len(result) == 2  # the two escorts with bb entries
        bb_fetches = [f for f in catalog.fetches if f[0] == "bb"]
        assert all("model" in given for _, given in bb_fetches)

    def test_dependent_join_empty_left_fetches_nothing(self, catalog):
        expr = Join(Base("ads"), Base("bb"))
        result = evaluate(expr, catalog, {"make": "nosuch"})
        assert result.is_empty
        assert [f for f in catalog.fetches if f[0] == "bb"] == []

    def test_join_orders_around_infeasible_side(self, catalog):
        # bb first in the AST, but only ads is feasible with {make}.
        expr = Join(Base("bb"), Base("ads"))
        result = evaluate(expr, catalog, {"make": "jaguar"})
        assert len(result) == 1

    def test_join_infeasible_raises(self, catalog):
        expr = Join(Base("ads"), Base("bb"))
        with pytest.raises(BindingError):
            evaluate(expr, catalog, {})

    def test_free_relation_needs_nothing(self, catalog):
        assert len(evaluate(Base("free"), catalog, {})) == 2

    def test_fixed_relation(self, catalog):
        rel = Relation(["x"], [(1,), (2,)])
        assert evaluate(Fixed(rel), catalog, {"x": 1}).rows == ((1,),)

    def test_helper_constructors(self, catalog):
        expr = select(Base("ads"), eq("make", "ford"))
        expr = project(expr, ["make", "model"])
        assert isinstance(expr, Project)
        assert union_all([Base("ads")]) == Base("ads")
        assert isinstance(join_all([Base("ads"), Base("bb")]), Join)
        with pytest.raises(ValueError):
            union_all([])
        with pytest.raises(ValueError):
            join_all([])

    def test_rename_helper_sorted(self):
        expr = rename(Base("x"), {"b": "y", "a": "z"})
        assert expr.mapping == (("a", "z"), ("b", "y"))

    def test_given_contradicting_selection_constant_is_empty(self, catalog):
        # Regression (found by the optimizer equivalence property): the
        # caller's binding must keep filtering even when the selection's
        # own equality constant overrides it during pushdown.
        expr = Select(Join(Base("ads"), Base("bb")), eq("make", "jaguar"))
        result = evaluate(expr, catalog, {"make": "ford"})
        assert result.is_empty

    def test_given_agreeing_with_selection_constant(self, catalog):
        expr = Select(Join(Base("ads"), Base("bb")), eq("make", "jaguar"))
        assert len(evaluate(expr, catalog, {"make": "jaguar"})) == 1
