"""Smoke tests: every shipped example runs cleanly and says what it should.

Examples rot unless executed; these run each script in-process (captured
stdout) and assert on its key landmarks.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "virtual physical schema" in out
        assert "cheap Ford Escorts" in out
        assert "UR plan" in out

    def test_jaguar_shopping(self, capsys):
        out = _run("jaguar_shopping.py", capsys)
        assert "classifieds ⋈ blue_price ⋈ reliability" in out
        assert "nav_entry" in out
        assert "Jaguars priced under blue book" in out

    def test_mapping_by_example(self, capsys):
        out = _run("mapping_by_example.py", capsys)
        assert "wrapper induced" in out
        assert "navigation map of www.newsday.com" in out
        assert "newsday(" in out  # the compiled program

    def test_site_maintenance(self, capsys):
        out = _run("site_maintenance.py", capsys)
        assert "0 changes" in out or "check 1" in out
        assert "domain_value_added" in out
        assert "new_form_attribute" in out
        assert "delorean" in out

    def test_timing_and_parallel(self, capsys):
        out = _run("timing_and_parallel.py", capsys)
        assert "elapsed time" in out
        assert "speedup" in out
        assert "no new misses" in out

    def test_jobs_domain(self, capsys):
        out = _run("jobs_domain.py", capsys)
        assert "market ⋈ postings" in out
        assert "above-median offers" in out

    def test_hardware_domain(self, capsys):
        out = _run("hardware_domain.py", capsys)
        assert "ratings" in out and "bargain laptops" in out

    def test_power_tools(self, capsys):
        out = _run("power_tools.py", capsys)
        assert "Datalog views" in out
        assert "push-select-into-join" in out
        assert "usedcarmart_h1" in out
        assert "identical: True" in out
