"""Crash-replay property suite for the tiered persistent store.

The contract under test is the write-ahead one: kill the writing process
at *any* global byte offset — a record boundary, mid-header, mid-payload
— and the reopened store serves exactly the longest record-aligned
prefix of the clean run: no torn record, no reordering, no invention.
Resuming the remaining operations then converges every tier
byte-for-byte with the never-crashed run.

Kill offsets are scheduled (:class:`repro.store.faults.StorageFault`),
not random at run time, so a failing offset reproduces exactly.  The
suite sweeps every record boundary, one byte short of each, mid-record
points, and a seeded random sample — well past the 50-kill-point floor.

Also pinned here (the mutable-state-leak satellite): cache entries must
never survive a revision bump via warm loading or eviction-order luck —
silver admission is keyed by revision stamp, adopted *before* any
restart drift bump — and the quarantined ``serve_stale`` path must do
its lookup and LRU touch under one lock hold so a concurrent bump cannot
evict the key between them.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.relational.relation import Relation
from repro.store import StorageFault, TieredStore
from repro.store.log import RecordLog, encode_record, scan_records

HOSTS = ["www.newsday.com", "www.autoweb.com", "www.kbb.com"]
RELATIONS = {"www.newsday.com": "newsday", "www.autoweb.com": "autoweb",
             "www.kbb.com": "bluebook"}


class _Url:
    def __init__(self, host: str, path: str) -> None:
        self.host = host
        self.path = path

    def __str__(self) -> str:
        return "http://%s%s" % (self.host, self.path)


class _Req:
    def __init__(self, host: str, path: str, params: tuple = ()) -> None:
        self.method = "GET"
        self.url = _Url(host, path)
        self.form_params = dict(params)


class _Resp:
    def __init__(self, body: str) -> None:
        self.status = 200
        self.body = body
        self.final_url = None
        self.location = None


def _script(seed: int) -> list[tuple[str, tuple]]:
    """A deterministic operation schedule; every op appends one record."""
    rng = random.Random(("store-recovery-script", seed).__repr__())
    ops: list[tuple[str, tuple]] = []
    revisions = {host: 0 for host in HOSTS}
    for step in range(16):
        host = rng.choice(HOSTS)
        relation = RELATIONS[host]
        kind = rng.randrange(8)
        if kind == 0:
            ops.append(("record_page", (
                _Req(host, "/page/%d" % step),
                _Resp("<html>body %d of %s</html>" % (step, host)),
            )))
        elif kind == 1:
            ops.append(("record_intent", (
                relation, host, revisions[host], (("make", "saab"),),
            )))
        elif kind == 2:
            revisions[host] += 1
            ops.append(("record_revision", (host, revisions[host])))
        elif kind == 3:
            ops.append(("record_quarantine", (host, bool(rng.randrange(2)))))
        elif kind == 4:
            ops.append(("persist_result", (
                relation, host, revisions[host],
                (("make", "ford"), ("model", "escort")),
                Relation(["make", "price"], [("ford", 4000 + step)]),
            )))
        elif kind == 5:
            ops.append(("persist_answer", (
                "SELECT make WHERE step = %d" % step,
                Relation(["make"], [("saab",)]),
                {host: revisions[host]},
            )))
        elif kind == 6:
            ops.append(("persist_snapshot", (
                "SELECT model WHERE make = 'jaguar'",
                ["model"], [("xj%d" % step,)], {host: revisions[host]}, step,
            )))
        else:
            ops.append(("record_standing", (
                "SELECT model WHERE make = 'jaguar'", bool(rng.randrange(2)),
            )))
    return ops


def _apply(store: TieredStore, op: tuple[str, tuple]) -> None:
    name, args = op
    getattr(store, name)(*args)


def _clean_run(tmp_path, ops, fsync):
    """Run the schedule uncrashed, capturing per-op (tier, record) and the
    global byte offset after each op (via the fault's write counter)."""
    fault = StorageFault(kill_at_byte=1 << 40)  # never fires
    store = TieredStore(str(tmp_path / "clean"), fsync=fsync, fault=fault)
    tiers = {"bronze": store.bronze, "silver": store.silver, "gold": store.gold}
    op_records: list[tuple[str, dict]] = []
    boundaries: list[int] = []
    counts = {name: 0 for name in tiers}
    for op in ops:
        _apply(store, op)
        grown = [n for n, log in tiers.items() if len(log) > counts[n]]
        assert len(grown) == 1, "every op must append exactly one record"
        tier = grown[0]
        counts[tier] = len(tiers[tier])
        op_records.append((tier, tiers[tier].records[-1]))
        boundaries.append(fault.written)
    tier_bytes = {
        name: b"".join(
            encode_record(r) for t, r in op_records if t == name
        )
        for name in tiers
    }
    state = _materialized(store)
    store.close()
    return op_records, boundaries, tier_bytes, state


def _materialized(store: TieredStore):
    """Everything the read path serves, as comparable plain data."""
    return (
        store.revisions(),
        store.quarantined(),
        sorted(store.page_index()),
        store.intents(current_only=False),
        sorted((k, r["revision"]) for k, r in store.silver_current().items()),
        store.current_answers(),
        store.standing_queries(),
    )


def _kill_points(boundaries, seed):
    total = boundaries[-1]
    points = {0}
    previous = 0
    for boundary in boundaries:
        points.add(boundary)  # crash exactly between two records
        points.add(boundary - 1)  # one byte short: torn checksum/payload
        points.add(previous + 4)  # torn inside the header
        points.add(previous + (boundary - previous) // 2)  # mid-payload
        previous = boundary
    points.update(StorageFault.sample_offsets(seed, total, 12))
    return sorted(p for p in points if 0 <= p < total)


class TestCrashReplayProperty:
    @pytest.mark.parametrize(
        "seed,fsync", [(0, False), (1, False), (2, False), (0, True)]
    )
    def test_every_kill_point_recovers_prefix_and_resumes_byte_identical(
        self, tmp_path, seed, fsync
    ):
        ops = _script(seed)
        op_records, boundaries, clean_bytes, clean_state = _clean_run(
            tmp_path, ops, fsync
        )
        kills = _kill_points(boundaries, seed)
        assert len(kills) >= 50, "the suite must sweep at least 50 kill points"
        for kill in kills:
            root = str(tmp_path / ("kill-%d" % kill))
            fault = StorageFault(kill_at_byte=kill)
            store = TieredStore(root, fsync=fsync, fault=fault)
            crashed_at = None
            for index, op in enumerate(ops):
                _apply(store, op)
                if crashed_at is None and store.crashed:
                    crashed_at = index
            assert crashed_at is not None, "kill %d never fired" % kill
            store.close()

            # Recovery: the reopened store serves exactly the ops that
            # completed before the crash — a record-aligned prefix.
            recovered = TieredStore(root, fsync=fsync)
            durable = op_records[:crashed_at]
            for tier_name in ("bronze", "silver", "gold"):
                log = getattr(recovered, tier_name)
                expected = [r for t, r in durable if t == tier_name]
                assert log.records == expected, (
                    "kill %d: %s served a non-prefix after recovery"
                    % (kill, tier_name)
                )
                with open(log.path, "rb") as handle:
                    on_disk = handle.read()
                assert on_disk == b"".join(encode_record(r) for r in expected)
                assert clean_bytes[tier_name].startswith(on_disk)
            # Torn bytes: exactly the part of the crashing op's frame that
            # reached the file before the kill.
            previous = boundaries[crashed_at - 1] if crashed_at else 0
            torn = (
                recovered.bronze.torn_bytes
                + recovered.silver.torn_bytes
                + recovered.gold.torn_bytes
            )
            assert torn == kill - previous, "kill %d: wrong torn tail" % kill

            # Resume the schedule from the crashed op: every tier converges
            # byte-for-byte with the clean run, as does the served state.
            for op in ops[crashed_at:]:
                _apply(recovered, op)
            for tier_name in ("bronze", "silver", "gold"):
                log = getattr(recovered, tier_name)
                with open(log.path, "rb") as handle:
                    assert handle.read() == clean_bytes[tier_name], (
                        "kill %d: %s did not converge after resume"
                        % (kill, tier_name)
                    )
            assert _materialized(recovered) == clean_state
            recovered.close()

    def test_crashed_store_goes_inert_not_raising(self, tmp_path):
        """After the fault fires, the store is a dead process' store: every
        further write is a silent no-op — upper layers (the fetch path!)
        must never see StorageCrash."""
        fault = StorageFault(kill_at_byte=10)
        store = TieredStore(str(tmp_path / "s"), fault=fault)
        assert not store.record_revision("www.newsday.com", 1)
        assert store.crashed
        assert not store.record_revision("www.newsday.com", 2)
        assert not store.persist_answer(
            "SELECT make", Relation(["make"], []), {}
        )
        store.close()

    def test_fault_counter_is_global_across_tiers(self, tmp_path):
        """One offset addresses the store's *total* write stream: bronze
        and silver share the counter, so a kill scheduled past the first
        bronze record fires inside the following silver write."""
        bronze_record = {"kind": "revision", "host": "h", "revision": 1}
        first = len(encode_record(bronze_record))
        fault = StorageFault(kill_at_byte=first + 3)
        store = TieredStore(str(tmp_path / "s"), fault=fault)
        assert store.record_revision("h", 1)
        assert not store.persist_result(
            "newsday", "h", 1, (("make", "saab"),),
            Relation(["make"], [("saab",)]),
        )
        assert store.crashed
        store.close()
        recovered = TieredStore(str(tmp_path / "s"))
        assert recovered.revisions() == {"h": 1}
        assert recovered.silver_current() == {}
        assert recovered.silver.torn_bytes == 3
        recovered.close()


class TestRecordLogRecovery:
    def test_torn_header_is_truncated(self, tmp_path):
        path = str(tmp_path / "log")
        frame = encode_record({"kind": "x", "n": 1})
        with open(path, "wb") as handle:
            handle.write(frame + frame[:5])
        log = RecordLog(path)
        assert len(log) == 1
        assert log.torn_bytes == 5
        with open(path, "rb") as handle:
            assert handle.read() == frame

    def test_torn_payload_is_truncated(self, tmp_path):
        path = str(tmp_path / "log")
        frame = encode_record({"kind": "x", "n": 1})
        with open(path, "wb") as handle:
            handle.write(frame + frame[:-3])
        log = RecordLog(path)
        assert log.records == [{"kind": "x", "n": 1}]
        assert log.torn_bytes == len(frame) - 3

    def test_corrupt_checksum_stops_the_scan(self, tmp_path):
        path = str(tmp_path / "log")
        good = encode_record({"kind": "x", "n": 1})
        bad = bytearray(encode_record({"kind": "x", "n": 2}))
        bad[-1] ^= 0xFF  # flip a payload byte; the CRC no longer holds
        trailing = encode_record({"kind": "x", "n": 3})
        with open(path, "wb") as handle:
            handle.write(good + bytes(bad) + trailing)
        log = RecordLog(path)
        # Nothing after the first bad frame is served, even valid-looking
        # later frames: a prefix, never a sieve.
        assert log.records == [{"kind": "x", "n": 1}]
        assert log.torn_bytes == len(bad) + len(trailing)

    def test_absurd_length_header_is_rejected(self, tmp_path):
        import struct

        path = str(tmp_path / "log")
        with open(path, "wb") as handle:
            handle.write(struct.pack("<II", 1 << 31, 0) + b"junk")
        log = RecordLog(path)
        assert log.records == []

    def test_append_after_recovery_continues_the_log(self, tmp_path):
        path = str(tmp_path / "log")
        frame = encode_record({"kind": "x", "n": 1})
        with open(path, "wb") as handle:
            handle.write(frame + b"\x07\x03")  # torn garbage tail
        log = RecordLog(path)
        log.append({"kind": "x", "n": 2})
        log.close()
        reopened = RecordLog(path)
        assert reopened.records == [{"kind": "x", "n": 1}, {"kind": "x", "n": 2}]
        assert reopened.torn_bytes == 0
        reopened.close()

    def test_scan_records_round_trips(self):
        records = [{"kind": "a", "i": i} for i in range(5)]
        data = b"".join(encode_record(r) for r in records)
        scanned, good_end = scan_records(data)
        assert scanned == records
        assert good_end == len(data)


# -- the mutable-state-leak regressions (cache entries vs revision bumps) ------


class _StubVps:
    """A minimal inner catalog: one relation per host, counting fetches."""

    def __init__(self) -> None:
        self.fetches = 0

    def host_of(self, name: str) -> str:
        return "www.%s.com" % name

    def fetch(self, name: str, given: dict, context=None) -> Relation:
        self.fetches += 1
        return Relation(["make", "price"], [("saab", 9000 + self.fetches)])


def _cache(policy=None):
    from repro.vps.cache import CachePolicy, ResultCache

    return ResultCache(_StubVps(), policy or CachePolicy.lru())


class TestRevisionKeyedWarmRegression:
    HOST = "www.newsday.com"

    def _seeded_store(self, tmp_path, revision: int) -> str:
        root = str(tmp_path / "store")
        store = TieredStore(root)
        if revision:
            store.record_revision(self.HOST, revision)
        store.persist_result(
            "newsday", self.HOST, revision, (("make", "saab"),),
            Relation(["make", "price"], [("saab", 1111)]),
        )
        store.close()
        return root

    def test_warm_admits_only_current_revision_segments(self, tmp_path):
        root = self._seeded_store(tmp_path, revision=1)
        cache = _cache()
        store = TieredStore(root)
        cache.attach_store(store)
        assert cache.warm_from_store() == 1
        # Served from the warmed entry, not the stub.
        value = cache.fetch("newsday", {"make": "saab"})
        assert list(value.rows) == [("saab", 1111)]
        assert cache.inner.fetches == 0
        store.close()

    def test_stale_segment_never_resurfaces_after_restart_bump(self, tmp_path):
        """The restart-collision bug this PR fixes: persisted revision 1 is
        adopted at attach, so a drift bump lands on revision 2 and the
        rev-1 segment is skipped by its *stamp* — not by eviction order
        or any other accident of cache state."""
        root = self._seeded_store(tmp_path, revision=1)
        cache = _cache()
        store = TieredStore(root)
        cache.attach_store(store)
        assert cache.revision(self.HOST) == 1  # adopted before any bump
        cache.bump_revision(self.HOST)  # the navmap drifted while closed
        assert cache.revision(self.HOST) == 2
        assert cache.warm_from_store() == 0, (
            "a segment stamped with a superseded revision warmed back in"
        )
        value = cache.fetch("newsday", {"make": "saab"})
        assert list(value.rows) != [("saab", 1111)]
        assert cache.inner.fetches == 1
        store.close()

    def test_live_entry_dies_with_its_revision_not_with_eviction_order(self, tmp_path):
        cache = _cache()
        first = cache.fetch("newsday", {"make": "saab"})
        assert cache.fetch("newsday", {"make": "saab"}) == first
        cache.bump_revision(self.HOST)
        assert cache.fetch("newsday", {"make": "saab"}) != first
        assert cache.inner.fetches == 2


class TestServeStaleBumpRace:
    HOST = "www.newsday.com"

    def test_concurrent_bumps_never_break_the_stale_serve_path(self):
        """Regression for the lookup/LRU-touch split: hammer the
        quarantined serve_stale path from several threads while revisions
        bump concurrently.  The old two-lock-holds code could interleave
        a bump's eviction between the lookup and ``move_to_end`` and
        raise KeyError out of the fetch path."""
        from repro.vps.cache import CachePolicy

        cache = _cache(CachePolicy.lru(stale_mode="serve_stale"))
        cache.fetch("newsday", {"make": "saab"})
        cache.quarantine(self.HOST)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                try:
                    cache.fetch("newsday", {"make": "saab"})
                except BaseException as exc:  # noqa: BLE001 - recorded for assert
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(200):
            cache.bump_revision(self.HOST)
            # Repopulate so the stale path keeps finding an entry to touch.
            cache.clear_quarantine(self.HOST, evict=False)
            cache.fetch("newsday", {"make": "saab"})
            cache.quarantine(self.HOST)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors, "stale-serve path raised under concurrent bumps: %r" % errors


class TestCompactionPreservesServedState:
    @staticmethod
    def _served(store: TieredStore):
        """What the read path serves.  Intents are compared deduplicated
        to the last per (relation, key) — compaction drops repeats, and
        the only intent consumer (rebuild) replays each key once."""
        import json

        state = list(_materialized(store))
        state[3] = {
            (r["relation"], json.dumps(r["key"])): r["revision"]
            for r in store.intents(current_only=True)
        }
        return state

    def test_compact_keeps_exactly_what_the_read_path_serves(self, tmp_path):
        ops = _script(seed=3)
        root = str(tmp_path / "store")
        store = TieredStore(root)
        for op in ops:
            _apply(store, op)
        before = self._served(store)
        outcome = store.compact()
        assert outcome["freed"] >= 0
        assert self._served(store) == before
        store.close()
        reopened = TieredStore(root)
        assert self._served(reopened) == before
        reopened.close()
