"""The async navigation fabric: equivalence, cancellation races, budgets.

Three contracts, each exercised under the deterministic simulation
harness (:mod:`repro.core.simclock`):

* **Byte-identical rows** — for seeded random binding batches, under
  seeded fault plans, with the result cache on and off and batching on
  and off, the async fabric returns exactly the rows the threaded
  engine returns, binding for binding.
* **Cancellation safety at every await point** — an interleaving sweep
  replays the same batch many times, firing ``cancel()`` at the Nth
  cooperative checkpoint for every sampled N; whatever the
  interleaving, every handle reaches a terminal state and the
  cancelled-access / reclaimed-page accounting reconciles.
* **Resilience and speculation semantics survive the fabric** —
  breakers shed speculative accesses, bulkheads bound per-host
  concurrency (with waits counted), and the speculation budget's
  adaptive wasted-pages allowance behaves identically to the threaded
  prefetcher's.
"""

from __future__ import annotations

import random

import pytest

from repro.core.execution import (
    ACCESS_CANCELLED,
    ACCESS_DONE,
    ACCESS_SHED,
    ACCESS_TERMINAL,
    AccessCancelled,
    DeadlineExceeded,
    FanoutError,
    RetryPolicy,
    WebBaseConfig,
)
from repro.core.resilience import CircuitOpenError, ResiliencePolicy
from repro.core.simclock import SimulationPlan, checkpoint_injector
from repro.core.webbase import WebBase
from repro.navigation.prefetch import SpeculationBudget
from repro.vps.cache import CachePolicy
from tests.conftest import derive_seeds

MAKES = ["saab", "ford", "honda", "jaguar", "bmw", "toyota", "volvo"]
RELATIONS = ["newsday", "autoweb"]


def _rows(relation) -> list[tuple]:
    return sorted(map(tuple, relation.rows))


def _build(
    fabric: str,
    seed_plan: SimulationPlan | None = None,
    cache: str = "noop",
    batch: bool = True,
    resilience: ResiliencePolicy | None = None,
) -> WebBase:
    return WebBase.create(
        WebBaseConfig(
            cache=CachePolicy.lru() if cache == "lru" else CachePolicy.noop(),
            max_workers=4,
            batch=batch,
            fabric=fabric,
            faults=(
                seed_plan.fault_plan(error_rates=(0.0, 0.15), spike_rates=(0.0, 0.2))
                if seed_plan is not None
                else None
            ),
            retry=RetryPolicy(max_attempts=6),
            resilience=resilience or ResiliencePolicy(),
        )
    )


def _scenario(seed: int) -> tuple[SimulationPlan, str, list[dict]]:
    """One seeded batch scenario: relation, bindings (with a duplicate)."""
    plan = SimulationPlan(seed)
    rng = plan.rng("bindings")
    relation = rng.choice(RELATIONS)
    givens = [{"make": rng.choice(MAKES)} for _ in range(rng.randint(4, 8))]
    givens.append(dict(givens[0]))  # a guaranteed duplicate binding
    return plan, relation, givens


class TestThreadAsyncEquivalence:
    """Property: the fabric is a concurrency mechanism, not a semantics
    change — rows are byte-identical to the threaded path across fault
    plans × cache modes × batching modes."""

    @pytest.mark.parametrize("cache", ["noop", "lru"])
    @pytest.mark.parametrize("seed", derive_seeds("fabric-equivalence", 3))
    def test_batched_rows_identical(self, seed, cache):
        plan, relation, givens = _scenario(seed)

        threaded_wb = _build("thread", plan, cache=cache)
        tctx = threaded_wb.execution_context(label="equiv-thread")
        threaded = threaded_wb.cache.fetch_batch(
            relation, [dict(g) for g in givens], context=tctx
        )
        assert not tctx.failures

        async_wb = _build("async", plan, cache=cache)
        actx = async_wb.execution_context(label="equiv-async")
        fabric = async_wb.cache.fetch_batch(
            relation, [dict(g) for g in givens], context=actx
        )
        assert not actx.failures

        assert [_rows(r) for r in fabric] == [_rows(r) for r in threaded]

    @pytest.mark.parametrize("seed", derive_seeds("fabric-equivalence-nobatch", 2))
    def test_unbatched_rows_identical(self, seed):
        plan, relation, givens = _scenario(seed)

        threaded_wb = _build("thread", plan, batch=False)
        threaded = [threaded_wb.fetch_vps(relation, dict(g)) for g in givens]

        async_wb = _build("async", plan, batch=False)
        fabric = [async_wb.fetch_vps(relation, dict(g)) for g in givens]

        assert [_rows(r) for r in fabric] == [_rows(r) for r in threaded]

    def test_full_query_identical(self):
        query = "SELECT make, model, price WHERE make = 'jaguar'"
        threaded = _build("thread").query(query)
        fabric = _build("async").query(query)
        assert _rows(fabric) == _rows(threaded)


class TestInterleavingSweep:
    """Drive ``cancel()`` at every sampled cooperative checkpoint of a
    batch session; terminal-state and accounting invariants must hold at
    every single interleaving."""

    SEED = derive_seeds("fabric-sweep", 1)[0]

    def _run_batch(self, fire_at: int | None):
        plan, relation, givens = _scenario(self.SEED)
        wb = _build("async", plan)
        ctx = wb.execution_context(label="sweep")
        if fire_at is not None:
            ctx.checkpoint_hook = checkpoint_injector(
                fire_at, lambda: ctx.cancel("sweep cancel")
            )
        rel = wb.vps.relation(relation)
        batch = ctx.run_fetch_batch(rel, [dict(g) for g in givens])
        return wb, ctx, batch

    def test_cancel_at_every_sampled_checkpoint(self):
        # A clean run measures the checkpoint space...
        wb, ctx, batch = self._run_batch(None)
        total = ctx._checkpoints
        assert total > 0
        assert all(h.state == ACCESS_DONE for h in batch)

        # ...then the sweep revisits it: first, last, and a seeded sample.
        rng = SimulationPlan(self.SEED).rng("sweep-points")
        points = {1, total}
        while len(points) < min(10, total):
            points.add(rng.randrange(1, total + 1))

        for fire_at in sorted(points):
            wb, ctx, batch = self._run_batch(fire_at)
            states = [h.state for h in batch]
            # Every handle reached a terminal state — nothing hangs, and
            # nothing lands outside DONE/CANCELLED.
            assert all(s in ACCESS_TERMINAL for s in states), (fire_at, states)
            assert set(states) <= {ACCESS_DONE, ACCESS_CANCELLED}, (fire_at, states)
            distinct = {id(h): h for h in batch}.values()
            cancelled = [h for h in distinct if h.state == ACCESS_CANCELLED]
            assert cancelled, "checkpoint %d fired but nothing cancelled" % fire_at
            for handle in cancelled:
                assert isinstance(
                    handle.error, (AccessCancelled, DeadlineExceeded)
                ), (fire_at, handle.error)
                assert handle.pages >= 0
            # Accounting reconciles: one resilience.cancelled event per
            # cancelled handle, and reclaimed pages never negative.
            counted = wb.metrics.counter("resilience.cancelled").value
            assert counted == len(cancelled), (fire_at, counted, len(cancelled))
            assert wb.metrics.counter("resilience.reclaimed_pages").value >= 0
            with pytest.raises((AccessCancelled, DeadlineExceeded, FanoutError)):
                batch.results()

    def test_checkpoint_count_is_deterministic(self):
        _, ctx_a, batch_a = self._run_batch(None)
        _, ctx_b, batch_b = self._run_batch(None)
        assert ctx_a._checkpoints == ctx_b._checkpoints
        assert ctx_a.fabric_window_seconds == ctx_b.fabric_window_seconds
        assert [
            _rows(h.result()) for h in batch_a
        ] == [_rows(h.result()) for h in batch_b]


class TestFabricResilience:
    def test_bulkhead_bounds_and_counts_waits(self):
        wb = _build(
            "async", resilience=ResiliencePolicy(bulkhead_per_host=1)
        )
        ctx = wb.execution_context(label="bulkhead")
        rel = wb.vps.relation("newsday")
        batch = ctx.run_fetch_batch(rel, [{"make": m} for m in MAKES])
        assert all(h.state == ACCESS_DONE for h in batch)
        # Seven concurrent bindings through a one-slot bulkhead: someone
        # waited, and the wait was counted like the threaded gate counts.
        assert wb.metrics.counter("resilience.bulkhead_waits").value >= 1

    def test_open_breaker_sheds_speculative_access(self):
        wb = _build("async")
        ctx = wb.execution_context(label="breaker")
        rel = wb.vps.relation("newsday")
        for _ in range(wb.config.resilience.failure_threshold):
            wb.resilience.record_failure(rel.host)
        assert not wb.resilience.allows_speculation(rel.host)
        handle = ctx.run_fetch(rel, {"make": "saab"}, speculative=True)
        assert handle.state == ACCESS_SHED
        assert isinstance(handle.error, CircuitOpenError)
        # A *required* access still passes through the open breaker.
        required = ctx.run_fetch(rel, {"make": "saab"})
        assert required.state == ACCESS_DONE
        assert wb.metrics.counter("resilience.pass_throughs").value >= 1


class TestSpeculationBudget:
    def test_allowance_caps_outstanding(self):
        budget = SpeculationBudget(wasted_pages=2)
        assert budget.try_issue("h")
        assert budget.try_issue("h")
        assert not budget.try_issue("h")  # at the cap
        assert budget.outstanding("h") == 2

    def test_consumption_grows_allowance(self):
        budget = SpeculationBudget(wasted_pages=2, max_allowance=4)
        for _ in range(2):
            assert budget.try_issue("h")
        budget.consumed("h")
        budget.consumed("h")
        assert budget.allowance("h") == 4
        assert budget.outstanding("h") == 0
        budget.consumed("h")  # capped at max_allowance
        assert budget.allowance("h") == 4
        assert budget.consumed_total == 3

    def test_waste_shrinks_allowance(self):
        budget = SpeculationBudget(wasted_pages=4, min_allowance=2)
        assert budget.try_issue("h")
        budget.wasted("h")
        assert budget.allowance("h") == 3
        budget.wasted("h")
        budget.wasted("h")
        assert budget.allowance("h") == 2  # floored at min_allowance
        assert budget.wasted_total == 3

    def test_release_is_neutral(self):
        budget = SpeculationBudget(wasted_pages=2)
        assert budget.try_issue("h")
        budget.release("h")
        assert budget.allowance("h") == 2
        assert budget.outstanding("h") == 0

    def test_hosts_are_independent(self):
        budget = SpeculationBudget(wasted_pages=1)
        assert budget.try_issue("a")
        assert not budget.try_issue("a")
        assert budget.try_issue("b")

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            SpeculationBudget(wasted_pages=0)

    def test_fabric_settles_reservations(self):
        """After an async batch with speculation, the budget's books
        balance: nothing stays reserved beyond the cache's speculative
        entries, and consumed + wasted never exceeds what was issued."""
        plan, relation, _ = _scenario(derive_seeds("fabric-budget", 1)[0])
        wb = _build("async")
        ctx = wb.execution_context(label="budget")
        rel = wb.vps.relation(relation)
        batch = ctx.run_fetch_batch(rel, [{"make": m} for m in MAKES[:5]])
        assert all(h.state == ACCESS_DONE for h in batch)
        budget = ctx.speculation_budget
        assert budget is not None
        issued = wb.metrics.counter("nav.prefetch_issued").value
        assert budget.consumed_total + budget.wasted_total <= max(issued, 0) + 1
        for host in [rel.host]:
            assert 0 <= budget.outstanding(host) <= budget.max_allowance


class TestFabricTimingModel:
    def test_window_reflects_overlap(self):
        """64 bindings on the fabric: the virtual-time window is far
        below the sum of per-fetch network seconds (the whole point)."""
        rng = random.Random(derive_seeds("fabric-window", 1)[0])
        givens = [{"make": rng.choice(MAKES)} for _ in range(64)]
        wb = _build("async")
        ctx = wb.execution_context(label="window")
        rel = wb.vps.relation("newsday")
        batch = ctx.run_fetch_batch(rel, givens)
        assert all(h.state == ACCESS_DONE for h in batch)
        assert ctx.fabric_window_seconds > 0
        assert ctx.fabric_window_seconds < ctx.network_seconds_total
        assert ctx.elapsed_seconds >= ctx.fabric_window_seconds
