"""Unit tests for the HTML element builder and render styles."""

from repro.web.html import (
    Element,
    RenderStyle,
    bullet_links,
    checkbox,
    el,
    escape,
    form,
    hidden_input,
    labeled,
    link,
    page,
    radio_group,
    select,
    submit_button,
    table,
    text_input,
)


class TestEscaping:
    def test_escape_specials(self):
        assert escape('<a href="x">&') == "&lt;a href=&quot;x&quot;&gt;&amp;"

    def test_text_children_are_escaped(self):
        assert "&lt;script&gt;" in el("p", "<script>").render()

    def test_attribute_values_are_escaped(self):
        assert 'alt="a&quot;b"' in el("img", alt='a"b').render()


class TestRendering:
    def test_simple_element(self):
        assert el("p", "hi").render() == "<p>hi</p>"

    def test_nested(self):
        assert el("div", el("b", "x")).render() == "<div><b>x</b></div>"

    def test_void_tag_has_no_end(self):
        assert el("br").render() == "<br>"

    def test_add_is_fluent(self):
        node = Element("ul").add(el("li", "a")).add(el("li", "b"))
        assert node.render() == "<ul><li>a</li><li>b</li></ul>"

    def test_uppercase_style(self):
        out = el("p", "x").render(RenderStyle(uppercase_tags=True))
        assert out == "<P>x</P>"

    def test_omit_optional_end_tags(self):
        out = el("ul", el("li", "a"), el("li", "b")).render(
            RenderStyle(omit_optional_end_tags=True)
        )
        assert "</li>" not in out
        assert "</ul>" in out

    def test_unquoted_attributes_only_when_safe(self):
        style = RenderStyle(unquoted_attributes=True)
        assert el("input", name="make").render(style) == "<input name=make>"
        assert 'alt="a b"' in el("img", alt="a b").render(style)


class TestWidgets:
    def test_text_input(self):
        out = text_input("make", "ford").render()
        assert 'type="text"' in out and 'name="make"' in out and 'value="ford"' in out

    def test_hidden_input(self):
        assert 'type="hidden"' in hidden_input("s", "1").render()

    def test_select_options_and_selection(self):
        out = select("make", ["ford", "honda"], selected="honda").render()
        assert out.count("<option") == 2
        assert 'selected="selected"' in out

    def test_radio_group(self):
        widgets = radio_group("cond", ["good", "fair"], checked="good")
        rendered = "".join(w.render() for w in widgets)
        assert rendered.count('type="radio"') == 2
        assert 'checked="checked"' in rendered

    def test_checkbox(self):
        assert 'type="checkbox"' in checkbox("x").render()

    def test_form_defaults_to_post(self):
        assert 'method="post"' in form("/cgi", submit_button()).render()

    def test_labeled_wraps_bold_label(self):
        out = labeled("Make", text_input("make")).render()
        assert "<b>Make: </b>" in out


class TestCompositeBuilders:
    def test_table_headers_and_rows(self):
        out = table(["A", "B"], [["1", "2"], ["3", "4"]]).render()
        assert out.count("<th>") == 2
        assert out.count("<td>") == 4

    def test_bullet_links(self):
        out = bullet_links([("Go", "/go"), ("Stop", "/stop")]).render()
        assert out.count("<li>") == 2
        assert 'href="/go"' in out

    def test_page_has_title_and_heading(self):
        out = page("My Title", el("p", "body")).render()
        assert "<title>My Title</title>" in out
        assert "<h1>My Title</h1>" in out

    def test_link(self):
        assert link("/a", "text").render() == '<a href="/a">text</a>'
