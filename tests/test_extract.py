"""Unit tests for extraction wrappers and wrapper induction by example."""

import pytest

from repro.navigation.extract import (
    ExtractionError,
    LabeledWrapper,
    TableWrapper,
    canonical_attr,
    induce_wrapper,
    wrapper_from_headers,
)
from repro.web.http import Url
from repro.web.page import parse_page


TABLE_PAGE = """
<html><head><title>Listings</title></head><body>
<table border=1>
 <tr><th>Make</th><th>Model</th><th>Asking Price</th><th>Details</th></tr>
 <tr><td>ford</td><td>escort</td><td>$4,800</td><td><a href="/d?ad=1">Car Features</a></td></tr>
 <tr><td>jaguar</td><td>xj6</td><td>$21,000</td><td><a href="/d?ad=2">Car Features</a></td></tr>
</table>
</body></html>
"""

DL_PAGE = """
<html><head><title>Y</title></head><body>
<dl><dt>Make</dt><dd>ford</dd><dt>Price</dt><dd>$4,800</dd></dl>
<dl><dt>Make</dt><dd>honda</dd><dt>Price</dt><dd>$8,000</dd></dl>
</body></html>
"""


def _page(body, path="/r"):
    return parse_page(Url("h.com", path), body)


class TestCanonicalAttr:
    def test_lowercases_and_underscores(self):
        assert canonical_attr("Asking Price") == "asking_price"

    def test_strips_punctuation(self):
        assert canonical_attr("Blue Book Price:") == "blue_book_price"

    def test_renames_apply(self):
        assert canonical_attr("Zip", {"zip": "zip_code"}) == "zip_code"


class TestTableWrapper:
    def _wrapper(self):
        return wrapper_from_headers(
            {"Make": "make", "Model": "model", "Asking Price": "price"},
        )

    def test_extracts_rows(self):
        rows = self._wrapper().extract(_page(TABLE_PAGE))
        assert rows == [
            {"make": "ford", "model": "escort", "price": "$4,800"},
            {"make": "jaguar", "model": "xj6", "price": "$21,000"},
        ]

    def test_matches(self):
        assert self._wrapper().matches(_page(TABLE_PAGE))
        assert not self._wrapper().matches(_page("<html><body><p>x</p></body></html>"))

    def test_extract_on_non_matching_page_is_empty(self):
        assert self._wrapper().extract(_page("<html><body></body></html>")) == []

    def test_link_column_yields_absolute_url(self):
        wrapper = TableWrapper(
            attrs=("make", "url"),
            header_attrs=(("details", "url"), ("make", "make")),
            link_attrs=(("url", "Car Features"),),
        )
        rows = wrapper.extract(_page(TABLE_PAGE))
        assert rows[0]["url"] == "http://h.com/d?ad=1"

    def test_partial_header_match_insufficient(self):
        wrapper = wrapper_from_headers({"Make": "make", "Mileage": "mileage"})
        assert not wrapper.matches(_page(TABLE_PAGE))

    def test_extra_unmapped_columns_are_ignored(self):
        wrapper = wrapper_from_headers({"Make": "make"})
        rows = wrapper.extract(_page(TABLE_PAGE))
        assert rows == [{"make": "ford"}, {"make": "jaguar"}]


class TestLabeledWrapper:
    def _wrapper(self):
        return LabeledWrapper(
            attrs=("make", "price"),
            label_attrs=(("make", "make"), ("price", "price")),
        )

    def test_extracts_blocks(self):
        rows = self._wrapper().extract(_page(DL_PAGE))
        assert rows == [
            {"make": "ford", "price": "$4,800"},
            {"make": "honda", "price": "$8,000"},
        ]

    def test_matches(self):
        assert self._wrapper().matches(_page(DL_PAGE))
        assert not self._wrapper().matches(_page(TABLE_PAGE))

    def test_incomplete_blocks_are_skipped(self):
        page = _page("<dl><dt>Make</dt><dd>ford</dd></dl>")
        assert self._wrapper().extract(page) == []


class TestInduction:
    def test_induces_table_wrapper(self):
        wrapper = induce_wrapper(
            _page(TABLE_PAGE),
            {"make": "ford", "model": "escort", "price": "$4,800"},
        )
        assert isinstance(wrapper, TableWrapper)
        rows = wrapper.extract(_page(TABLE_PAGE))
        assert len(rows) == 2
        assert rows[1]["price"] == "$21,000"

    def test_induces_link_column_from_url_value(self):
        wrapper = induce_wrapper(
            _page(TABLE_PAGE),
            {"make": "ford", "url": "http://h.com/d?ad=1"},
        )
        assert ("url", "Car Features") in wrapper.link_attrs
        assert wrapper.extract(_page(TABLE_PAGE))[1]["url"] == "http://h.com/d?ad=2"

    def test_induces_labeled_wrapper(self):
        wrapper = induce_wrapper(_page(DL_PAGE), {"make": "honda", "price": "$8,000"})
        assert isinstance(wrapper, LabeledWrapper)
        assert wrapper.extract(_page(DL_PAGE))[0]["make"] == "ford"

    def test_induction_fails_when_example_absent(self):
        with pytest.raises(ExtractionError):
            induce_wrapper(_page(TABLE_PAGE), {"make": "tesla"})

    def test_induction_works_from_second_row(self):
        wrapper = induce_wrapper(
            _page(TABLE_PAGE), {"make": "jaguar", "price": "$21,000"}
        )
        assert wrapper.extract(_page(TABLE_PAGE))[0]["make"] == "ford"

    def test_duplicate_values_map_distinct_columns(self):
        page = _page(
            "<table><tr><th>A</th><th>B</th></tr>"
            "<tr><td>same</td><td>same</td></tr></table>"
        )
        wrapper = induce_wrapper(page, {"a": "same", "b": "same"})
        assert wrapper.extract(page) == [{"a": "same", "b": "same"}]

    def test_induced_wrapper_generalizes_to_other_pages(self):
        wrapper = induce_wrapper(_page(TABLE_PAGE), {"make": "ford", "model": "escort"})
        other = _page(
            "<table><tr><th>Make</th><th>Model</th><th>Asking Price</th></tr>"
            "<tr><td>saab</td><td>900</td><td>$12,000</td></tr></table>",
            path="/other",
        )
        assert wrapper.extract(other) == [{"make": "saab", "model": "900"}]
