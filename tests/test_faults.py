"""Fault injection and the engine's retry/timeout/partial-failure paths."""

import pytest

from repro.core.execution import (
    FetchFailedError,
    FetchFailure,
    RetryPolicy,
    WebBaseConfig,
)
from repro.core.webbase import WebBase
from repro.ur.planner import PlanError
from repro.vps.cache import CachePolicy, ResultCache
from repro.web.server import FaultPlan

QUERY = "SELECT make, model, price WHERE make = 'saab'"
CLASSIFIED_HOSTS = ("www.newsday.com", "www.nytimes.com")


def _faulty_webbase(**fault_kwargs) -> WebBase:
    retry = fault_kwargs.pop("retry", RetryPolicy(max_attempts=4))
    return WebBase.create(
        WebBaseConfig(faults=FaultPlan(**fault_kwargs), retry=retry)
    )


class TestFaultPlan:
    def test_rolls_are_deterministic(self):
        plan = FaultPlan(seed=11, error_rate=0.5)
        decisions = [plan.should_fail("h.com", n) for n in range(50)]
        again = [
            FaultPlan(seed=11, error_rate=0.5).should_fail("h.com", n)
            for n in range(50)
        ]
        assert decisions == again
        assert any(decisions) and not all(decisions)

    def test_host_scoping(self):
        plan = FaultPlan(error_rate=1.0, hosts=("a.com",))
        assert plan.should_fail("a.com", 0)
        assert not plan.should_fail("b.com", 0)

    def test_server_counts_injected_faults(self, fresh_world):
        # Install after mapping-by-example so only query traffic is hit.
        webbase = WebBase(fresh_world)
        fresh_world.server.install_faults(
            FaultPlan(error_rate=1.0, max_consecutive=10**6)
        )
        with pytest.raises(PlanError):
            webbase.query(QUERY)
        assert sum(s.faults for s in fresh_world.server.stats.values()) > 0


class TestRetryRecovery:
    def test_retries_recover_byte_identical(self):
        """The acceptance scenario: a seeded fault run with retries gives
        byte-identical answers to the fault-free run, and the trace shows
        the retries that absorbed the faults."""
        clean = WebBase.create().query(QUERY)
        faulty = _faulty_webbase(error_rate=0.1)
        # One worker makes the per-host request ordinals — hence the fault
        # schedule — exactly reproducible.
        ctx = faulty.execution_context(max_workers=1)
        recovered = faulty.query(QUERY, context=ctx)
        assert recovered.rows == clean.rows  # same rows, same order
        assert ctx.retries > 0 and not ctx.failures
        retried = [s for s in ctx.root.spans("fetch") if s.attrs["attempts"] > 1]
        assert retried, "trace must record the retry spans"
        failed_attempts = [
            a for s in retried for a in s.children if a.status == "error"
        ]
        assert failed_attempts
        assert all("injected transient fault" in a.error for a in failed_attempts)

    def test_parallel_retry_recovery(self):
        clean = WebBase.create().query(QUERY)
        faulty = _faulty_webbase(error_rate=0.05, retry=RetryPolicy(max_attempts=5))
        ctx = faulty.execution_context(max_workers=4)
        assert faulty.query(QUERY, context=ctx) == clean
        assert not ctx.failures

    def test_backoff_charged_to_network_time(self):
        plain = WebBase.create()
        base_ctx = plain.execution_context()
        plain.fetch_vps("newsday", {"make": "saab"}, context=base_ctx)
        faulty = _faulty_webbase(
            error_rate=0.9, retry=RetryPolicy(max_attempts=6, backoff_seconds=2.0)
        )
        ctx = faulty.execution_context()
        try:
            faulty.fetch_vps("newsday", {"make": "saab"}, context=ctx)
        except FetchFailedError:
            pass  # at 0.9 the retries may exhaust; the charges still land
        assert ctx.retries > 0
        # Failed attempts + backoff cost strictly more simulated time.
        assert (
            ctx.network_by_host["www.newsday.com"]
            > base_ctx.network_by_host["www.newsday.com"]
        )


class TestPartialFailure:
    def test_dead_sites_degrade_to_partial_answer(self):
        """Exhausted retries on some sites produce a per-site failure
        report and a partial answer — not a whole-query abort."""
        clean = WebBase.create().query(QUERY)
        faulty = _faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, hosts=CLASSIFIED_HOSTS
        )
        ctx = faulty.execution_context()
        partial = faulty.query(QUERY, context=ctx)
        assert 0 < len(partial) < len(clean)
        assert set(partial.rows) <= set(clean.rows)
        assert ctx.failures
        assert {f.host for f in ctx.failures} <= set(CLASSIFIED_HOSTS)
        assert "fetch failure(s)" in ctx.failure_report()

    def test_report_carries_partial_failures(self):
        faulty = _faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, hosts=CLASSIFIED_HOSTS
        )
        report = faulty.query_report(QUERY)
        assert report.failures
        skipped = [o for o in report.objects if o.skipped]
        assert any("classifieds" in o.relations for o in skipped)
        assert "partial failure" in report.pretty()

    def test_every_site_dead_aborts_with_report(self):
        faulty = _faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, retry=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(PlanError) as info:
            faulty.query(QUERY)
        assert "fetch failure(s)" in str(info.value)

    def test_single_fetch_failure_surfaces(self):
        faulty = _faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, retry=RetryPolicy(max_attempts=2)
        )
        ctx = faulty.execution_context()
        with pytest.raises(FetchFailedError):
            faulty.fetch_vps("newsday", {"make": "saab"}, context=ctx)
        assert ctx.failures and ctx.failures[0].attempts == 2


class TestFaultsMeetCache:
    """The fault × cache matrix: failures must never poison the cache."""

    def _caching_faulty_webbase(self, **fault_kwargs) -> WebBase:
        retry = fault_kwargs.pop("retry", RetryPolicy(max_attempts=2))
        return WebBase.create(
            WebBaseConfig(
                cache=CachePolicy.lru(),
                faults=FaultPlan(**fault_kwargs),
                retry=retry,
            )
        )

    def test_exhausted_retries_leave_no_cache_entry(self):
        webbase = self._caching_faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, hosts=("www.newsday.com",)
        )
        with pytest.raises(FetchFailedError):
            webbase.fetch_vps("newsday", {"make": "saab"})
        assert webbase.cache.stats["entries"] == 0
        assert webbase.cache.stats["misses"] == 1
        # The failure is not remembered either: the next call retries the
        # live site (and fails again) instead of replaying a cached error.
        with pytest.raises(FetchFailedError):
            webbase.fetch_vps("newsday", {"make": "saab"})
        assert webbase.cache.stats["misses"] == 2

    def test_recovery_after_faults_clear(self):
        """A dead host poisons nothing: once the faults are lifted, the
        same cached webbase answers byte-identically to a clean one."""
        clean = WebBase.create().query(QUERY)
        webbase = self._caching_faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, hosts=("www.newsday.com",)
        )
        report = webbase.query_report(QUERY)
        assert report.failures  # degraded while the host is down
        webbase.world.server.install_faults(None)
        recovered = webbase.query(QUERY)
        assert recovered == clean
        assert webbase.cache.stats["entries"] > 0  # now safely warm

    def test_healthy_hosts_cache_through_a_partial_outage(self):
        """Fetches that succeeded during the outage were cached and are
        served warm afterwards; only the dead host refetches."""
        webbase = self._caching_faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, hosts=("www.newsday.com",)
        )
        webbase.query_report(QUERY)
        entries_during = webbase.cache.stats["entries"]
        assert entries_during > 0
        webbase.world.server.install_faults(None)
        hits_before = webbase.cache.stats["hits"]
        webbase.query(QUERY)
        assert webbase.cache.stats["hits"] > hits_before

    def test_coalesced_waiters_survive_leader_failure(self):
        """Single-flight under failure: when the leader's fetch dies, the
        waiting followers retry for themselves rather than inheriting the
        error, so one transient fault can't fan out across the pool."""
        import threading

        class FlakyCatalog:
            """First fetch blocks until followers pile up, then fails;
            every later fetch succeeds."""

            def __init__(self):
                self.calls = 0
                self.followers_waiting = threading.Event()
                self._lock = threading.Lock()

            def host_of(self, name):
                return "flaky.example"

            def fetch(self, name, given, context=None):
                with self._lock:
                    self.calls += 1
                    ordinal = self.calls
                if ordinal == 1:
                    self.followers_waiting.wait(timeout=5.0)
                    raise FetchFailedError(
                        FetchFailure(name, "flaky.example", 1, "boom")
                    )
                return ("rows", name)

        inner = FlakyCatalog()
        cache = ResultCache(inner, CachePolicy.lru())
        results, errors = [], []

        def request():
            try:
                results.append(cache.fetch("newsday", {"make": "saab"}))
            except FetchFailedError as exc:
                errors.append(exc)

        import time

        threads = [threading.Thread(target=request) for _ in range(4)]
        deadline = time.monotonic() + 5.0
        threads[0].start()
        while inner.calls == 0 and time.monotonic() < deadline:
            time.sleep(0.001)  # leader owns the flight before followers arrive
        for t in threads[1:]:
            t.start()
        while cache.stats["coalesced"] < 3 and time.monotonic() < deadline:
            time.sleep(0.001)  # all three followers queued on the flight
        inner.followers_waiting.set()
        for t in threads:
            t.join()
        assert len(errors) == 1  # only the leader saw its own failure
        assert len(results) == 3 and all(r == ("rows", "newsday") for r in results)
        # Exactly one follower re-fetched as the new leader; the other two
        # shared its result — the failure itself was never cached.
        assert inner.calls == 2
        assert cache.stats["misses"] == 2
        assert cache.stats["entries"] == 1


class TestSpikesAndTimeouts:
    def test_latency_spikes_slow_but_succeed(self):
        plain = WebBase.create()
        base_ctx = plain.execution_context()
        expected = plain.fetch_vps("newsday", {"make": "saab"}, context=base_ctx)
        spiky = WebBase.create(
            WebBaseConfig(faults=FaultPlan(spike_rate=1.0, spike_seconds=5.0))
        )
        ctx = spiky.execution_context()
        result = spiky.fetch_vps("newsday", {"make": "saab"}, context=ctx)
        assert result == expected and not ctx.failures
        pages = ctx.pages_by_host["www.newsday.com"]
        assert ctx.network_by_host["www.newsday.com"] == pytest.approx(
            base_ctx.network_by_host["www.newsday.com"] + 5.0 * pages
        )

    def test_timeout_exhausts_into_failure(self):
        # batch=False: with the query-scoped page cache on, a timed-out
        # attempt's pages replay from cache, so the retry succeeds under
        # budget instead of exhausting (pinned by the batch test suite).
        webbase = WebBase.create(WebBaseConfig(batch=False))
        ctx = webbase.execution_context(
            timeout_seconds=0.05, retry=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(FetchFailedError):
            webbase.fetch_vps("nytimes", {"manufacturer": "saab"}, context=ctx)
        assert ctx.failures and "timed out" in ctx.failures[0].error
        timed_out = [
            a
            for s in ctx.root.spans("fetch")
            for a in s.children
            if a.status == "error"
        ]
        assert timed_out and all("timed out" in a.error for a in timed_out)

    def test_generous_timeout_passes(self, webbase):
        ctx = webbase.execution_context(timeout_seconds=60.0)
        result = webbase.fetch_vps("autoweb", {"make": "saab"}, context=ctx)
        assert len(result) > 0 and not ctx.failures
