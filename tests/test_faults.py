"""Fault injection and the engine's retry/timeout/partial-failure paths."""

import pytest

from repro.core.execution import (
    FetchFailedError,
    RetryPolicy,
    WebBaseConfig,
)
from repro.core.webbase import WebBase
from repro.ur.planner import PlanError
from repro.web.server import FaultPlan

QUERY = "SELECT make, model, price WHERE make = 'saab'"
CLASSIFIED_HOSTS = ("www.newsday.com", "www.nytimes.com")


def _faulty_webbase(**fault_kwargs) -> WebBase:
    retry = fault_kwargs.pop("retry", RetryPolicy(max_attempts=4))
    return WebBase.create(
        WebBaseConfig(faults=FaultPlan(**fault_kwargs), retry=retry)
    )


class TestFaultPlan:
    def test_rolls_are_deterministic(self):
        plan = FaultPlan(seed=11, error_rate=0.5)
        decisions = [plan.should_fail("h.com", n) for n in range(50)]
        again = [
            FaultPlan(seed=11, error_rate=0.5).should_fail("h.com", n)
            for n in range(50)
        ]
        assert decisions == again
        assert any(decisions) and not all(decisions)

    def test_host_scoping(self):
        plan = FaultPlan(error_rate=1.0, hosts=("a.com",))
        assert plan.should_fail("a.com", 0)
        assert not plan.should_fail("b.com", 0)

    def test_server_counts_injected_faults(self, fresh_world):
        # Install after mapping-by-example so only query traffic is hit.
        webbase = WebBase(fresh_world)
        fresh_world.server.install_faults(
            FaultPlan(error_rate=1.0, max_consecutive=10**6)
        )
        with pytest.raises(PlanError):
            webbase.query(QUERY)
        assert sum(s.faults for s in fresh_world.server.stats.values()) > 0


class TestRetryRecovery:
    def test_retries_recover_byte_identical(self):
        """The acceptance scenario: a seeded fault run with retries gives
        byte-identical answers to the fault-free run, and the trace shows
        the retries that absorbed the faults."""
        clean = WebBase.build().query(QUERY)
        faulty = _faulty_webbase(error_rate=0.1)
        # One worker makes the per-host request ordinals — hence the fault
        # schedule — exactly reproducible.
        ctx = faulty.execution_context(max_workers=1)
        recovered = faulty.query(QUERY, context=ctx)
        assert recovered.rows == clean.rows  # same rows, same order
        assert ctx.retries > 0 and not ctx.failures
        retried = [s for s in ctx.root.spans("fetch") if s.attrs["attempts"] > 1]
        assert retried, "trace must record the retry spans"
        failed_attempts = [
            a for s in retried for a in s.children if a.status == "error"
        ]
        assert failed_attempts
        assert all("injected transient fault" in a.error for a in failed_attempts)

    def test_parallel_retry_recovery(self):
        clean = WebBase.build().query(QUERY)
        faulty = _faulty_webbase(error_rate=0.05, retry=RetryPolicy(max_attempts=5))
        ctx = faulty.execution_context(max_workers=4)
        assert faulty.query(QUERY, context=ctx) == clean
        assert not ctx.failures

    def test_backoff_charged_to_network_time(self):
        plain = WebBase.build()
        base_ctx = plain.execution_context()
        plain.fetch_vps("newsday", {"make": "saab"}, context=base_ctx)
        faulty = _faulty_webbase(
            error_rate=0.9, retry=RetryPolicy(max_attempts=6, backoff_seconds=2.0)
        )
        ctx = faulty.execution_context()
        try:
            faulty.fetch_vps("newsday", {"make": "saab"}, context=ctx)
        except FetchFailedError:
            pass  # at 0.9 the retries may exhaust; the charges still land
        assert ctx.retries > 0
        # Failed attempts + backoff cost strictly more simulated time.
        assert (
            ctx.network_by_host["www.newsday.com"]
            > base_ctx.network_by_host["www.newsday.com"]
        )


class TestPartialFailure:
    def test_dead_sites_degrade_to_partial_answer(self):
        """Exhausted retries on some sites produce a per-site failure
        report and a partial answer — not a whole-query abort."""
        clean = WebBase.build().query(QUERY)
        faulty = _faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, hosts=CLASSIFIED_HOSTS
        )
        ctx = faulty.execution_context()
        partial = faulty.query(QUERY, context=ctx)
        assert 0 < len(partial) < len(clean)
        assert set(partial.rows) <= set(clean.rows)
        assert ctx.failures
        assert {f.host for f in ctx.failures} <= set(CLASSIFIED_HOSTS)
        assert "fetch failure(s)" in ctx.failure_report()

    def test_report_carries_partial_failures(self):
        faulty = _faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, hosts=CLASSIFIED_HOSTS
        )
        report = faulty.query_report(QUERY)
        assert report.failures
        skipped = [o for o in report.objects if o.skipped]
        assert any("classifieds" in o.relations for o in skipped)
        assert "partial failure" in report.pretty()

    def test_every_site_dead_aborts_with_report(self):
        faulty = _faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, retry=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(PlanError) as info:
            faulty.query(QUERY)
        assert "fetch failure(s)" in str(info.value)

    def test_single_fetch_failure_surfaces(self):
        faulty = _faulty_webbase(
            error_rate=1.0, max_consecutive=10**6, retry=RetryPolicy(max_attempts=2)
        )
        ctx = faulty.execution_context()
        with pytest.raises(FetchFailedError):
            faulty.fetch_vps("newsday", {"make": "saab"}, context=ctx)
        assert ctx.failures and ctx.failures[0].attempts == 2


class TestSpikesAndTimeouts:
    def test_latency_spikes_slow_but_succeed(self):
        plain = WebBase.build()
        base_ctx = plain.execution_context()
        expected = plain.fetch_vps("newsday", {"make": "saab"}, context=base_ctx)
        spiky = WebBase.create(
            WebBaseConfig(faults=FaultPlan(spike_rate=1.0, spike_seconds=5.0))
        )
        ctx = spiky.execution_context()
        result = spiky.fetch_vps("newsday", {"make": "saab"}, context=ctx)
        assert result == expected and not ctx.failures
        pages = ctx.pages_by_host["www.newsday.com"]
        assert ctx.network_by_host["www.newsday.com"] == pytest.approx(
            base_ctx.network_by_host["www.newsday.com"] + 5.0 * pages
        )

    def test_timeout_exhausts_into_failure(self, webbase):
        ctx = webbase.execution_context(
            timeout_seconds=0.05, retry=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(FetchFailedError):
            webbase.fetch_vps("nytimes", {"manufacturer": "saab"}, context=ctx)
        assert ctx.failures and "timed out" in ctx.failures[0].error
        timed_out = [
            a
            for s in ctx.root.spans("fetch")
            for a in s.children
            if a.status == "error"
        ]
        assert timed_out and all("timed out" in a.error for a in timed_out)

    def test_generous_timeout_passes(self, webbase):
        ctx = webbase.execution_context(timeout_seconds=60.0)
        result = webbase.fetch_vps("autoweb", {"make": "saab"}, context=ctx)
        assert len(result) > 0 and not ctx.failures
