"""Tests for the CLI and navigation-map rendering."""

import pytest

from repro.cli import main
from repro.navigation.visualize import to_dot, to_text


class TestVisualize:
    def test_dot_output(self, webbase):
        dot = to_dot(webbase.builders["www.newsday.com"].map)
        assert dot.startswith("digraph navmap {")
        assert dot.rstrip().endswith("}")
        assert 'label="link(Auto)"' in dot
        assert "peripheries=2" in dot  # data nodes doubly circled
        assert "style=dashed" in dot  # the row link

    def test_dot_highlight(self, webbase):
        dot = to_dot(webbase.builders["www.newsday.com"].map, highlight="n0")
        assert "lightyellow" in dot

    def test_text_tree(self, webbase):
        text = to_text(webbase.builders["www.newsday.com"].map)
        assert "--link(Auto)-->" in text
        assert "[data:newsday]" in text
        assert "(revisited)" in text  # the More loop

    def test_text_empty_map(self):
        from repro.navigation.navmap import NavigationMap

        assert to_text(NavigationMap("h.com")) == "(empty map)"


class TestCli:
    def test_query(self, capsys):
        code = main(["query", "SELECT make, model WHERE make = 'saab'", "--limit", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "saab" in out and "rows)" in out

    def test_plan(self, capsys):
        code = main(["plan", "SELECT make, price WHERE make = 'ford'"])
        out = capsys.readouterr().out
        assert code == 0
        assert "UR plan" in out

    def test_schema_layers(self, capsys):
        for layer, needle in [
            ("vps", "virtual physical schema"),
            ("logical", "logical schema"),
            ("ur", "UsedCarUR"),
        ]:
            assert main(["schema", layer]) == 0
            assert needle in capsys.readouterr().out

    def test_expression(self, capsys):
        assert main(["expression", "newsday"]) == 0
        out = capsys.readouterr().out
        assert "nav_entry" in out

    def test_expression_unknown(self, capsys):
        assert main(["expression", "nosuch"]) == 1
        assert "known:" in capsys.readouterr().out

    def test_map_text_and_dot(self, capsys):
        assert main(["map", "www.newsday.com"]) == 0
        assert "--link(Auto)-->" in capsys.readouterr().out
        assert main(["map", "www.newsday.com", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_map_unknown_host(self, capsys):
        assert main(["map", "nowhere.example"]) == 1

    def test_timing(self, capsys):
        assert main(["timing"]) == 0
        out = capsys.readouterr().out
        assert "www.newsday.com" in out and "elapsed" in out

    def test_baselines(self, capsys):
        assert main(["baselines"]) == 0
        out = capsys.readouterr().out
        assert "0% of the ads" in out
        assert "cannot express" in out

    def test_seed_flag_changes_world(self, capsys):
        main(["--seed", "7", "--ads-per-host", "30", "query",
              "SELECT make, model WHERE make = 'ford' AND model = 'escort'"])
        out = capsys.readouterr().out
        assert "ford" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
