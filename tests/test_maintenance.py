"""Tests for navigation-map maintenance (site-change detection)."""

import pytest

from repro.core.sessions import map_kellys, map_newsday
from repro.navigation.maintenance import apply_auto_changes, check_site
from repro.sites.world import build_world
from repro.web import html as H
from repro.web.browser import Browser


@pytest.fixture()
def fresh():
    world = build_world()
    return world, map_newsday(world)


class TestCleanSite:
    def test_unchanged_site_reports_clean(self, fresh):
        world, builder = fresh
        report = check_site(builder.map, Browser(world.server))
        assert report.clean, report.summary()
        assert report.nodes_checked >= 2


class TestAutoChanges:
    def test_new_select_option_is_auto(self, fresh):
        world, builder = fresh
        site = world.server.site("www.newsday.com")

        def modified_search(request):
            # Kelley's-style 1999 addition: a new value in a selection list.
            form = H.form(
                "/cgi-bin/nclassy",
                H.labeled("Make", H.select("make", ["ford", "jaguar", "delorean"])),
                H.submit_button("Search"),
                method="post",
            )
            return H.page("Newsday Classifieds Search", form)

        site.route("/classified/cars", modified_search)
        report = check_site(builder.map, Browser(world.server))
        kinds = {c.kind for c in report.changes}
        assert "domain_value_added" in kinds
        assert all(c.auto for c in report.changes if c.kind.startswith("domain"))

    def test_apply_auto_refreshes_domain(self, fresh):
        world, builder = fresh
        site = world.server.site("www.newsday.com")

        def modified_search(request):
            form = H.form(
                "/cgi-bin/nclassy",
                H.labeled("Make", H.select("make", ["ford", "jaguar", "delorean"])),
                H.submit_button("Search"),
                method="post",
            )
            return H.page("Newsday Classifieds Search", form)

        site.route("/classified/cars", modified_search)
        report = check_site(builder.map, Browser(world.server))
        applied = apply_auto_changes(builder.map, report, Browser(world.server))
        assert applied >= 1
        search_node = [
            n for n in builder.map.nodes.values() if n.signature.path == "/classified/cars"
        ][0]
        form = next(iter(search_node.forms.values()))
        assert "delorean" in form.widget_for_attr("make").domain


class TestManualChanges:
    def test_new_form_attribute_is_manual(self, fresh):
        world, builder = fresh
        site = world.server.site("www.newsday.com")

        def modified_search(request):
            form = H.form(
                "/cgi-bin/nclassy",
                H.labeled("Make", H.select("make", ["ford", "jaguar"])),
                H.labeled("Max Price", H.text_input("maxprice")),
                H.submit_button("Search"),
                method="post",
            )
            return H.page("Newsday Classifieds Search", form)

        site.route("/classified/cars", modified_search)
        report = check_site(builder.map, Browser(world.server))
        manual_kinds = {c.kind for c in report.manual_changes}
        assert "new_form_attribute" in manual_kinds

    def test_removed_link_is_manual(self, fresh):
        world, builder = fresh
        site = world.server.site("www.newsday.com")
        site.route(
            "/",
            lambda request: H.page(
                "Newsday Classifieds", H.bullet_links([("Weather", "/weather")])
            ),
        )
        report = check_site(builder.map, Browser(world.server))
        kinds = {c.kind for c in report.changes}
        assert "missing_link" in kinds
        assert not [c for c in report.changes if c.kind == "missing_link" and c.auto]

    def test_new_link_is_reported(self, fresh):
        world, builder = fresh
        site = world.server.site("www.newsday.com")
        site.route(
            "/",
            lambda request: H.page(
                "Newsday Classifieds",
                H.bullet_links(
                    [
                        ("Auto", "/classified/cars"),
                        ("New Car Dealer", "/classified/dealers"),
                        ("Collectible Cars", "/classified/collectibles"),
                        ("Sport Utility", "/classified/suv"),
                        ("Boats", "/classified/boats"),
                    ]
                ),
            ),
        )
        report = check_site(builder.map, Browser(world.server))
        new_links = [c for c in report.changes if c.kind == "new_link"]
        assert new_links and "Boats" in new_links[0].detail

    def test_unreachable_entry_page(self, fresh):
        world, builder = fresh
        # Point the map at a host the server does not know.
        builder.map.host = "gone.example.com"
        for node in builder.map.nodes.values():
            node.sample_url = node.sample_url.__class__("gone.example.com", node.sample_url.path)
        report = check_site(builder.map, Browser(world.server))
        assert not report.clean
        assert report.changes[0].kind == "missing_link"


class TestOtherSites:
    def test_kellys_clean(self):
        world = build_world()
        builder = map_kellys(world)
        report = check_site(builder.map, Browser(world.server))
        assert report.clean, report.summary()
