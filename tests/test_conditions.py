"""Unit tests for selection conditions and equality-binding extraction."""

import pytest

from repro.relational.conditions import (
    And,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    conj,
    eq,
    equality_bindings,
)


ROW = {"make": "ford", "price": 4800, "bb": 5000}


class TestComparison:
    def test_attr_vs_const(self):
        assert eq("make", "ford").evaluate(ROW)
        assert not eq("make", "honda").evaluate(ROW)

    def test_attr_vs_attr(self):
        assert Comparison(Attr("price"), "<", Attr("bb")).evaluate(ROW)
        assert not Comparison(Attr("price"), ">", Attr("bb")).evaluate(ROW)

    def test_all_operators(self):
        assert Comparison(Const(1), "<=", Const(1)).evaluate({})
        assert Comparison(Const(2), ">=", Const(1)).evaluate({})
        assert Comparison(Const(2), ">", Const(1)).evaluate({})
        assert Comparison(Const(1), "!=", Const(2)).evaluate({})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(Const(1), "~", Const(2))

    def test_none_values_never_match(self):
        assert not eq("x", None).evaluate({"x": None})
        assert not Comparison(Attr("x"), "<", Const(1)).evaluate({"x": None})

    def test_type_mismatch_is_false_not_error(self):
        assert not Comparison(Attr("price"), "<", Const("cheap")).evaluate(ROW)

    def test_attributes(self):
        cond = Comparison(Attr("price"), "<", Attr("bb"))
        assert cond.attributes() == {"price", "bb"}
        assert eq("make", "ford").attributes() == {"make"}


class TestConnectives:
    def test_and(self):
        cond = And((eq("make", "ford"), Comparison(Attr("price"), "<", Const(5000))))
        assert cond.evaluate(ROW)

    def test_or(self):
        cond = Or((eq("make", "honda"), eq("make", "ford")))
        assert cond.evaluate(ROW)

    def test_not(self):
        assert Not(eq("make", "honda")).evaluate(ROW)

    def test_nested_attributes(self):
        cond = And((Or((eq("a", 1), eq("b", 2))), Not(eq("c", 3))))
        assert cond.attributes() == {"a", "b", "c"}

    def test_conj_flattens(self):
        cond = conj(eq("a", 1), conj(eq("b", 2), eq("c", 3)))
        assert isinstance(cond, And) and len(cond.parts) == 3

    def test_conj_single_stays_bare(self):
        assert conj(eq("a", 1)) == eq("a", 1)


class TestEqualityBindings:
    def test_simple_equality(self):
        assert equality_bindings(eq("make", "ford")) == {"make": "ford"}

    def test_reversed_equality(self):
        cond = Comparison(Const("ford"), "=", Attr("make"))
        assert equality_bindings(cond) == {"make": "ford"}

    def test_conjunction_collects_all(self):
        cond = conj(eq("make", "ford"), eq("model", "escort"))
        assert equality_bindings(cond) == {"make": "ford", "model": "escort"}

    def test_inequalities_do_not_bind(self):
        cond = Comparison(Attr("year"), ">=", Const(1993))
        assert equality_bindings(cond) == {}

    def test_attr_attr_equality_does_not_bind(self):
        cond = Comparison(Attr("price"), "=", Attr("bb"))
        assert equality_bindings(cond) == {}

    def test_or_context_does_not_bind(self):
        cond = Or((eq("zip", "10001"), eq("zip", "10025")))
        assert equality_bindings(cond) == {}

    def test_not_context_does_not_bind(self):
        assert equality_bindings(Not(eq("make", "ford"))) == {}

    def test_or_under_and_binds_only_top_level(self):
        cond = conj(eq("make", "ford"), Or((eq("zip", "1"), eq("zip", "2"))))
        assert equality_bindings(cond) == {"make": "ford"}

    def test_none_condition(self):
        assert equality_bindings(None) == {}
