"""The metrics registry: primitive semantics, thread-safety, reconciliation.

The registry is the cache/engine's flight recorder; these tests pin the
primitives (counters monotone, gauges settable, histograms summarizing),
prove the registry safe under the engine's real worker pool, and close the
loop end-to-end: every fetch request a workload makes is accounted for
exactly once across the cache-serve and live-fetch counters, and the
registry agrees with the trace spans span-for-span.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.execution import WebBaseConfig
from repro.core.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.core.parallel import cached_site_query
from repro.core.webbase import WebBase
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.vps.cache import CachePolicy, ResultCache


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("n")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_summary(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == pytest.approx(6.0)
        assert s["min"] == pytest.approx(1.0)
        assert s["max"] == pytest.approx(3.0)
        assert s["mean"] == pytest.approx(2.0)

    def test_empty_summary(self):
        assert Histogram("lat").summary()["count"] == 0


class TestHistogramPercentiles:
    """Tail latency via reservoir sampling: deterministic (fixed-seed
    Vitter R), exact while the sample fits the reservoir, bounded and sane
    far beyond it."""

    def test_exact_below_reservoir_size(self):
        h = Histogram("lat")
        for v in range(1, 101):  # 1..100, well inside the reservoir
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(95) == pytest.approx(95.0)
        assert h.percentile(99) == pytest.approx(99.0)
        assert h.percentile(100) == pytest.approx(100.0)

    def test_order_independent(self):
        forward, backward = Histogram("f"), Histogram("b")
        for v in range(1, 51):
            forward.observe(float(v))
            backward.observe(float(51 - v))
        assert forward.percentile(95) == backward.percentile(95)

    def test_summary_and_render_carry_percentiles(self):
        h = Histogram("lat")
        for v in (0.1, 0.2, 0.3, 0.4):
            h.observe(v)
        s = h.summary()
        assert s["p50"] == pytest.approx(0.2)
        assert s["p95"] == pytest.approx(0.4)
        assert s["p99"] == pytest.approx(0.4)
        reg = MetricsRegistry()
        reg.histogram("lat").observe(1.0)
        assert "p95" in reg.render()

    def test_empty_percentile_is_zero(self):
        h = Histogram("lat")
        assert h.percentile(95) == 0.0
        assert h.summary()["p99"] == 0.0

    def test_reservoir_bounds_memory_and_stays_representative(self):
        h = Histogram("lat")
        for v in range(50_000):  # uniform 0..49999, 24x the reservoir
            h.observe(float(v))
        assert len(h._samples) == h.RESERVOIR  # noqa: SLF001 - bounded memory
        assert h.summary()["count"] == 50_000
        # Fixed-seed sampling: representative within a loose tolerance.
        assert abs(h.percentile(50) - 25_000) < 5_000
        assert h.percentile(99) > 40_000

    def test_deterministic_across_instances(self):
        a, b = Histogram("a"), Histogram("b")
        for v in range(10_000):
            a.observe(float(v))
            b.observe(float(v))
        assert a.percentile(95) == b.percentile(95)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_collision_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(Exception):
            reg.gauge("x")

    def test_value_and_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1.5)
        assert reg.value("c") == 3
        assert reg.value("missing") == 0
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(2)
        reg.histogram("engine.fetch_seconds").observe(0.25)
        text = reg.render()
        assert "cache.hits" in text
        assert "engine.fetch_seconds" in text


class TestThreadSafety:
    def test_concurrent_increments_are_lossless(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")
        hist = reg.histogram("h")
        workers, per_worker = 8, 2000

        def spin():
            for _ in range(per_worker):
                counter.inc()
                hist.observe(1.0)

        threads = [threading.Thread(target=spin) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == workers * per_worker
        assert hist.summary()["count"] == workers * per_worker

    def test_lossless_under_the_engine_worker_pool(self):
        """The registry's real concurrency load: a shared engine context
        fanning fetches of distinct relations across the pool."""
        webbase = WebBase.create(WebBaseConfig(cache=CachePolicy.lru()))
        ctx = webbase.execution_context(max_workers=8)
        jobs = [
            ("newsday", {"make": "saab"}),
            ("newsday", {"make": "honda"}),
            ("newsday", {"make": "bmw"}),
            ("autoweb", {"make": "saab"}),
            ("autoweb", {"make": "honda"}),
        ]
        ctx.map(
            lambda job: webbase.cache.fetch(job[0], dict(job[1]), context=ctx),
            jobs * 2,
        )
        m = webbase.metrics
        assert m.value("cache.misses") == len(jobs)
        assert m.value("cache.requests") == len(jobs) * 2
        assert m.value("cache.hits") == len(jobs)  # some coalesced, some stored
        assert m.value("cache.coalesced") <= m.value("cache.hits")
        assert m.value("engine.fetches") == len(jobs)


class _GatedInner:
    """A Catalog test double whose fetch blocks on a gate — lets a test park
    every coalesced waiter behind one in-flight upstream fetch, then release
    them all at a chosen moment."""

    def __init__(self, gate: threading.Event, fail_first: bool = False) -> None:
        self.gate = gate
        self.fail_first = fail_first
        self.calls = 0
        self._lock = threading.Lock()

    def fetch(self, name, given, context=None):
        with self._lock:
            self.calls += 1
            first = self.calls == 1
        assert self.gate.wait(timeout=5.0), "test gate never opened"
        if first and self.fail_first:
            raise RuntimeError("transient upstream failure")
        return Relation(Schema(("a",)), [("v",)])


class TestSingleFlightMissAccounting:
    """The single-flight invariant: one miss per *upstream fetch*, never one
    per waiter.  N concurrent requests for a cold key must count exactly one
    miss (the flight leader's) and N-1 hits, however many workers coalesce."""

    WORKERS = 8

    def _race(self, fail_first: bool):
        gate = threading.Event()
        inner = _GatedInner(gate, fail_first=fail_first)
        metrics = MetricsRegistry()
        cache = ResultCache(inner, CachePolicy.lru(), metrics=metrics)
        results: list[Relation] = []
        errors: list[BaseException] = []

        def fetch():
            try:
                results.append(cache.fetch("r", {"k": "v"}))
            except BaseException as exc:  # pragma: no cover - test failure path
                errors.append(exc)

        threads = [threading.Thread(target=fetch) for _ in range(self.WORKERS)]
        for t in threads:
            t.start()
        # Wait until every non-leader has parked behind the flight, so the
        # miss/hit split is deterministic, then open the gate.
        deadline = time.time() + 5.0
        while (
            metrics.value("cache.coalesced") < self.WORKERS - 1
            and time.time() < deadline
        ):
            time.sleep(0.001)
        assert metrics.value("cache.coalesced") == self.WORKERS - 1
        gate.set()
        for t in threads:
            t.join(timeout=5.0)
        assert all(sorted(r.rows) == [("v",)] for r in results)
        return inner, metrics, results, errors

    def test_coalesced_waiters_count_hits_not_misses(self):
        inner, metrics, results, errors = self._race(fail_first=False)
        assert not errors
        assert len(results) == self.WORKERS
        assert inner.calls == 1  # one upstream fetch total
        assert metrics.value("cache.misses") == 1
        assert metrics.value("cache.hits") == self.WORKERS - 1
        assert metrics.value("cache.requests") == self.WORKERS

    def test_failed_leader_promotes_one_waiter_one_extra_miss(self):
        """A failed flight is never shared: the error raises to the leader's
        own caller, exactly one waiter retries as the new leader — a second
        upstream fetch, hence a second miss — and the rest still count hits."""
        inner, metrics, results, errors = self._race(fail_first=True)
        assert [type(e) for e in errors] == [RuntimeError]  # the failed leader
        assert len(results) == self.WORKERS - 1
        assert inner.calls == 2  # failed flight + the promoted waiter's retry
        assert metrics.value("cache.misses") == 2
        assert metrics.value("cache.hits") == self.WORKERS - 2
        assert metrics.value("cache.requests") == self.WORKERS


class TestReconciliation:
    def test_every_fetch_request_accounted_once(self):
        """hits + stale serves + context-cache hits + live fetches ==
        fetch spans, and the hit/miss split matches span flags exactly."""
        webbase = WebBase.create(WebBaseConfig(cache=CachePolicy.lru()))
        contexts = []
        for run in range(2):
            outcome = cached_site_query(webbase, label="recon-%d" % run)
            contexts.append(outcome.context)
        spans = [s for ctx in contexts for s in ctx.root.spans("fetch")]
        m = webbase.metrics
        served = (
            m.value("cache.hits")
            + m.value("cache.stale_serves")
            + m.value("engine.context_cache_hits")
        )
        fetched = m.value("engine.fetches")
        assert served == sum(1 for s in spans if s.cache in ("hit", "stale"))
        assert fetched == sum(1 for s in spans if s.cache == "miss")
        assert served + fetched == len(spans)
        # Second pass was fully warm: ten hits, no new live fetches.
        assert m.value("cache.hits") == 10
        assert m.value("cache.misses") == 10
        assert m.value("engine.fetch_attempts") >= m.value("engine.fetches")
        assert m.histogram("engine.fetch_seconds").summary()["count"] == fetched

    def test_cli_metrics_command_reconciles(self, capsys):
        from repro.cli import main

        assert main(["metrics", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert "cache.hits" in out
