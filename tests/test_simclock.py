"""The virtual-time loop and the deterministic simulation plan.

What makes the fabric testable at all: ``await asyncio.sleep(x)`` on a
:class:`~repro.core.simclock.SimLoop` costs zero real time and exactly
``x`` virtual seconds, overlapping sleeps cost their *makespan* (not
their sum), and a seeded :class:`~repro.core.simclock.SimulationPlan`
replays every random choice — so the same seed produces the same
virtual timestamps, run after run.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.simclock import (
    FabricRuntime,
    SimulationPlan,
    VirtualClock,
    checkpoint_injector,
)


@pytest.fixture()
def runtime():
    rt = FabricRuntime()
    yield rt
    rt.shutdown()


class TestVirtualClock:
    def test_advances_monotonically(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0

    def test_rejects_rewind(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestVirtualTime:
    def test_sleep_costs_virtual_not_real_time(self, runtime):
        async def slow():
            start = asyncio.get_running_loop().time()
            await asyncio.sleep(1000.0)
            return asyncio.get_running_loop().time() - start

        real_start = time.monotonic()
        virtual = runtime.run(slow(), timeout=30)
        real = time.monotonic() - real_start
        assert virtual >= 1000.0
        assert real < 10.0  # a thousand simulated seconds, near-free for real

    def test_overlapping_sleeps_cost_their_makespan(self, runtime):
        async def workload():
            loop = asyncio.get_running_loop()
            start = loop.time()
            await asyncio.gather(*(asyncio.sleep(5.0) for _ in range(50)))
            return loop.time() - start

        elapsed = runtime.run(workload(), timeout=30)
        # 50 concurrent 5s sleeps: makespan ~5s, nowhere near the 250s sum.
        assert 5.0 <= elapsed < 6.0

    def test_sequential_sleeps_add_up(self, runtime):
        async def workload():
            loop = asyncio.get_running_loop()
            start = loop.time()
            for _ in range(4):
                await asyncio.sleep(2.0)
            return loop.time() - start

        elapsed = runtime.run(workload(), timeout=30)
        assert 8.0 <= elapsed < 9.0

    def test_cross_thread_submit_returns_values(self, runtime):
        async def answer(x):
            await asyncio.sleep(0.1)
            return x * 2

        futures = [runtime.submit(answer(i)) for i in range(10)]
        assert [f.result(timeout=30) for f in futures] == [i * 2 for i in range(10)]

    def test_shutdown_is_idempotent(self):
        rt = FabricRuntime()
        rt.shutdown()
        rt.shutdown()

    def test_replay_same_schedule_same_timestamps(self):
        """The determinism contract: an identical seeded workload on a
        fresh loop completes with identical virtual timestamps."""

        def trace(seed: int) -> list[tuple[str, float]]:
            plan = SimulationPlan(seed)
            rng = plan.rng("delays")
            delays = {name: round(rng.uniform(0.1, 3.0), 3) for name in "abcdef"}
            events: list[tuple[str, float]] = []
            rt = FabricRuntime()
            try:
                async def task(name, delay):
                    await asyncio.sleep(delay)
                    events.append((name, asyncio.get_running_loop().time()))

                async def workload():
                    await asyncio.gather(
                        *(task(n, d) for n, d in sorted(delays.items()))
                    )

                rt.run(workload(), timeout=30)
            finally:
                rt.shutdown()
            return events

        assert trace(1234) == trace(1234)
        assert trace(1234) != trace(4321)


class TestSimulationPlan:
    def test_streams_are_independent(self):
        plan = SimulationPlan(7)
        first = plan.rng("faults").random()
        # Drawing from another stream never perturbs this one.
        plan.rng("latencies").random()
        assert plan.rng("faults").random() == first

    def test_derive_changes_streams(self):
        plan = SimulationPlan(7)
        child = plan.derive("sub")
        assert child.seed != plan.seed
        assert child.rng("faults").random() != plan.rng("faults").random()

    def test_fault_plan_is_reproducible(self):
        a = SimulationPlan(99).fault_plan()
        b = SimulationPlan(99).fault_plan()
        assert (a.seed, a.error_rate, a.spike_rate) == (
            b.seed,
            b.error_rate,
            b.spike_rate,
        )

    def test_latencies_cover_hosts_deterministically(self):
        hosts = ["a.example", "b.example"]
        a = SimulationPlan(5).latencies(hosts)
        b = SimulationPlan(5).latencies(hosts)
        assert sorted(a) == hosts
        assert [a[h].rtt for h in hosts] == [b[h].rtt for h in hosts]

    def test_cancel_point_in_range(self):
        for seed in range(20):
            point = SimulationPlan(seed).cancel_point(17)
            assert 0 <= point < 17
        assert SimulationPlan(3).cancel_point(0) == 0


class TestCheckpointInjector:
    def test_fires_exactly_once_at_threshold(self):
        fired: list[int] = []
        hook = checkpoint_injector(5, lambda: fired.append(1))
        for ordinal in range(1, 10):
            hook(ordinal)
        assert fired == [1]

    def test_fires_on_first_ordinal_past_threshold(self):
        fired: list[int] = []
        hook = checkpoint_injector(3, lambda: fired.append(1))
        hook(1)
        assert not fired
        hook(7)  # jumped past 3: still fires (once)
        hook(8)
        assert fired == [1]
