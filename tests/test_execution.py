"""Tests for the parallel execution engine: contexts, fan-out, tracing."""

import pytest

from repro.core.execution import (
    ExecutionContext,
    FanoutError,
    RetryPolicy,
    TraceSpan,
    WebBaseConfig,
)
from repro.core.webbase import WebBase
from repro.vps.cache import CachePolicy


class TestEndToEndSmoke:
    """One traced UR query through the whole engine (the CI smoke path)."""

    QUERY = "SELECT make, model, price WHERE make = 'saab'"

    def test_traced_query_under_four_workers(self, webbase):
        ctx = webbase.execution_context(max_workers=4)
        result = webbase.query(self.QUERY, context=ctx)
        assert len(result) > 0
        # The trace covers the whole plan→object→view→fetch chain.
        assert [s.kind for s in ctx.root.children] == ["query"]
        assert ctx.root.spans("plan")
        assert len(ctx.root.spans("object")) == 2  # classifieds + dealers
        assert ctx.root.spans("view")
        fetches = ctx.root.spans("fetch")
        assert fetches and all(s.children for s in fetches)  # attempt spans
        # Accounting: real Web work happened and was attributed.
        assert ctx.fetches > 0
        assert ctx.root.total_pages > 0
        assert ctx.network_seconds_total > 0
        assert sum(ctx.pages_by_host.values()) == ctx.root.total_pages
        assert ctx.elapsed_seconds <= ctx.sequential_elapsed_seconds

    def test_parallel_answer_matches_sequential(self, webbase):
        sequential = webbase.query(
            self.QUERY, context=webbase.execution_context(max_workers=1)
        )
        parallel = webbase.query(
            self.QUERY, context=webbase.execution_context(max_workers=8)
        )
        assert parallel == sequential

    def test_default_context_recorded(self, webbase):
        webbase.query(self.QUERY)
        ctx = webbase.last_context
        assert ctx is not None and ctx.fetches > 0


class TestElapsedModel:
    def test_lanes_bound_by_workers(self, webbase):
        wide = webbase.execution_context(max_workers=8)
        webbase.query("SELECT make, model, price WHERE make = 'bmw'", context=wide)
        narrow = webbase.execution_context(max_workers=1)
        webbase.query("SELECT make, model, price WHERE make = 'bmw'", context=narrow)
        # Same work either way; only the makespan model differs.
        assert wide.network_seconds_total == pytest.approx(
            narrow.network_seconds_total
        )
        assert narrow.network_seconds_critical == pytest.approx(
            narrow.network_seconds_total
        )
        assert wide.network_seconds_critical < narrow.network_seconds_critical

    def test_per_context_cache_deduplicates(self, webbase):
        ctx = webbase.execution_context(max_workers=2)
        first = webbase.fetch_vps("newsday", {"make": "saab"}, context=ctx)
        again = webbase.fetch_vps("newsday", {"make": "saab"}, context=ctx)
        assert again == first
        assert ctx.fetches == 1 and ctx.cache_hits == 1
        hit_spans = [s for s in ctx.root.spans("fetch") if s.cache == "hit"]
        assert len(hit_spans) == 1 and hit_spans[0].network_seconds == 0


class TestMapFanout:
    def _context(self, webbase, workers=4):
        return ExecutionContext(webbase.pool, max_workers=workers)

    def test_preserves_order(self, webbase):
        ctx = self._context(webbase)
        assert ctx.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]

    def test_single_error_reraised_as_itself(self, webbase):
        ctx = self._context(webbase)

        def boom(x):
            if x == 3:
                raise KeyError("x3")
            return x

        with pytest.raises(KeyError):
            ctx.map(boom, range(6))

    def test_multiple_errors_aggregate(self, webbase):
        ctx = self._context(webbase)

        def boom(x):
            if x % 2:
                raise ValueError("odd %d" % x)
            return x

        with pytest.raises(FanoutError) as info:
            ctx.map(boom, range(6))
        assert len(info.value.errors) == 3
        assert "3 of 6 parallel task(s) failed" in str(info.value)
        assert "odd 1" in str(info.value) and "odd 5" in str(info.value)


class TestConfig:
    def test_create_with_config(self):
        config = WebBaseConfig(
            ads_per_host=40,
            cache=CachePolicy.lru(64),
            max_workers=3,
            retry=RetryPolicy(max_attempts=2),
        )
        webbase = WebBase.create(config)
        assert webbase.config is config
        assert webbase.cache.policy.max_entries == 64
        ctx = webbase.execution_context()
        assert ctx.max_workers == 3 and ctx.retry.max_attempts == 2

    def test_config_is_the_only_construction_path(self):
        cached = WebBase.create(WebBaseConfig(ads_per_host=40, cache=CachePolicy.lru()))
        plain = WebBase.create(WebBaseConfig(ads_per_host=40))
        assert cached.config.cache.enabled
        assert not plain.config.cache.enabled
        # The no-op policy still exposes the one fetch path and its stats.
        assert plain.cache.stats["entries"] == 0
        # The pre-config boolean-flag shim is gone.
        assert not hasattr(WebBase, "build")

    def test_retry_policy_backoff_grows(self):
        policy = RetryPolicy(max_attempts=4, backoff_seconds=0.5, backoff_factor=3.0)
        assert policy.delay_before(1) == 0.0
        assert policy.delay_before(2) == 0.5
        assert policy.delay_before(3) == 1.5
        assert policy.delay_before(4) == 4.5


class TestTraceSpan:
    def test_render_and_walk(self):
        root = TraceSpan("query", "q")
        child = TraceSpan("fetch", "newsday", pages=2, network_seconds=1.5)
        child.attrs["attempts"] = 2
        root.children.append(child)
        assert [s.name for s in root.walk()] == ["q", "newsday"]
        assert root.total_pages == 2
        assert root.total_retries == 1
        text = root.render()
        assert "query q" in text and "2 attempts" in text and "net 1.50s" in text
