"""Unit tests for the HTTP primitives (URLs, query codec, requests)."""

import pytest
from hypothesis import given, strategies as st

from repro.web.http import (
    Request,
    Response,
    Url,
    UrlError,
    decode_query,
    encode_query,
    parse_url,
    quote,
    unquote,
)


class TestQuoting:
    def test_safe_characters_pass_through(self):
        assert quote("abc-XYZ_0.9~") == "abc-XYZ_0.9~"

    def test_space_becomes_plus(self):
        assert quote("a b") == "a+b"

    def test_reserved_characters_are_encoded(self):
        assert quote("a&b=c") == "a%26b%3Dc"

    def test_unicode_is_utf8_encoded(self):
        assert quote("café") == "caf%C3%A9"

    def test_unquote_reverses_quote(self):
        assert unquote(quote("a b&c=d/é")) == "a b&c=d/é"

    def test_unquote_plus(self):
        assert unquote("a+b") == "a b"

    def test_unquote_bad_percent_sequence_is_literal(self):
        assert unquote("100%zz") == "100%zz"

    @given(st.text(max_size=80))
    def test_roundtrip_property(self, text):
        assert unquote(quote(text)) == text


class TestQueryCodec:
    def test_encode_sorts_keys(self):
        assert encode_query({"b": "2", "a": "1"}) == "a=1&b=2"

    def test_decode_simple(self):
        assert decode_query("a=1&b=2") == {"a": "1", "b": "2"}

    def test_decode_empty(self):
        assert decode_query("") == {}

    def test_decode_valueless_key(self):
        assert decode_query("a&b=1") == {"a": "", "b": "1"}

    def test_later_keys_win(self):
        assert decode_query("a=1&a=2") == {"a": "2"}

    @given(
        st.dictionaries(
            st.text(st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=10),
            st.text(max_size=20),
            max_size=6,
        )
    )
    def test_roundtrip_property(self, params):
        assert decode_query(encode_query(params)) == {str(k): str(v) for k, v in params.items()}


class TestUrl:
    def test_str_without_query(self):
        assert str(Url("h.com", "/a/b")) == "http://h.com/a/b"

    def test_str_with_query(self):
        assert str(Url("h.com", "/a", "x=1")) == "http://h.com/a?x=1"

    def test_default_path(self):
        assert str(Url("h.com")) == "http://h.com/"

    def test_params_property(self):
        assert Url("h.com", "/", "a=1&b=2").params == {"a": "1", "b": "2"}

    def test_with_params(self):
        url = Url("h.com", "/s").with_params({"make": "ford"})
        assert url.params == {"make": "ford"}

    def test_without_query(self):
        assert Url("h.com", "/s", "a=1").without_query() == Url("h.com", "/s")


class TestParseUrl:
    def test_absolute(self):
        url = parse_url("http://h.com/a/b?x=1")
        assert (url.host, url.path, url.params) == ("h.com", "/a/b", {"x": "1"})

    def test_absolute_bare_host(self):
        assert parse_url("http://h.com") == Url("h.com", "/")

    def test_host_relative(self):
        base = Url("h.com", "/a/b")
        assert parse_url("/c?y=2", base) == Url("h.com", "/c", "y=2")

    def test_document_relative(self):
        base = Url("h.com", "/a/b.html")
        assert parse_url("c.html", base) == Url("h.com", "/a/c.html")

    def test_dotdot_resolution(self):
        base = Url("h.com", "/a/b/c.html")
        assert parse_url("../d.html", base) == Url("h.com", "/a/d.html")

    def test_query_only(self):
        base = Url("h.com", "/s", "old=1")
        assert parse_url("?make=ford", base) == Url("h.com", "/s", "make=ford")

    def test_relative_without_base_raises(self):
        with pytest.raises(UrlError):
            parse_url("/a")

    def test_https_rejected(self):
        with pytest.raises(UrlError):
            parse_url("https://h.com/")

    def test_missing_host_rejected(self):
        with pytest.raises(UrlError):
            parse_url("http:///path")


class TestRequestResponse:
    def test_request_params_merge_query_and_form(self):
        req = Request("POST", Url("h.com", "/cgi", "a=1"), {"b": "2"})
        assert req.params == {"a": "1", "b": "2"}

    def test_form_params_override_query(self):
        req = Request("POST", Url("h.com", "/cgi", "a=1"), {"a": "9"})
        assert req.params == {"a": "9"}

    def test_bad_method_rejected(self):
        with pytest.raises(UrlError):
            Request("PUT", Url("h.com"))

    def test_response_ok(self):
        assert Response(200, "x").ok
        assert not Response(404, "x").ok

    def test_response_len(self):
        assert len(Response(200, "hello")) == 5
