"""Tests for the jobs application domain (framework domain-independence)."""

import pytest

from repro.domains.jobs import (
    CAREER_HOST,
    CITIES,
    MONSTER_HOST,
    SURVEY_HOST,
    TITLES,
    JobsDataset,
    JobsWebBase,
    build_jobs_world,
)


@pytest.fixture(scope="module")
def jobs():
    return JobsWebBase()


class TestDataset:
    def test_deterministic(self):
        a = JobsDataset(seed=5, postings_per_host=20)
        b = JobsDataset(seed=5, postings_per_host=20)
        assert a.postings == b.postings
        assert a.medians == b.medians

    def test_above_median_ny_engineers_guaranteed(self):
        data = JobsDataset()
        median = next(
            m.median_salary
            for m in data.medians
            if m.title == "software engineer" and m.city == "new york"
        )
        for host in (MONSTER_HOST, CAREER_HOST):
            winners = [
                p
                for p in data.postings_for(host, "software engineer", "new york")
                if p.salary > median
            ]
            assert winners, host

    def test_median_coverage(self):
        data = JobsDataset()
        assert len(data.medians) == len(TITLES) * len(CITIES)


class TestMappingAndVps:
    def test_three_sites_mapped(self, jobs):
        assert set(jobs.vps.relation_names) == {"monster", "careerpath", "survey"}

    def test_vocabularies_preserved_at_vps(self, jobs):
        careerpath = jobs.vps.relation("careerpath")
        assert "position" in careerpath.schema and "pay" in careerpath.schema
        monster = jobs.vps.relation("monster")
        assert "title" in monster.schema and "salary" in monster.schema

    def test_handles(self, jobs):
        assert [sorted(h.mandatory) for h in jobs.vps.relation("monster").handles] == [
            ["title"]
        ]
        assert [
            sorted(h.mandatory) for h in jobs.vps.relation("careerpath").handles
        ] == [["position"]]

    def test_vps_matches_dataset(self, jobs):
        rows = jobs.vps.fetch("monster", {"title": "dba"})
        expected = jobs.world.dataset.postings_for(MONSTER_HOST, "dba")
        assert len(rows) == len(expected)

    def test_labeled_extraction_site(self, jobs):
        rows = jobs.vps.fetch("careerpath", {"position": "analyst"})
        expected = jobs.world.dataset.postings_for(CAREER_HOST, "analyst")
        assert len(rows) == len(expected)

    def test_survey_rows_per_city(self, jobs):
        rows = jobs.vps.fetch("survey", {"title": "sysadmin"})
        assert len(rows) == len(CITIES)


class TestLogicalAndUr:
    def test_postings_unions_both_boards(self, jobs):
        result = jobs.logical.fetch("postings", {"title": "web designer"})
        expected = len(
            jobs.world.dataset.postings_for(MONSTER_HOST, "web designer")
        ) + len(jobs.world.dataset.postings_for(CAREER_HOST, "web designer"))
        assert len(result) == expected

    def test_salary_typed(self, jobs):
        row = jobs.logical.fetch("postings", {"title": "dba"}).to_dicts()[0]
        assert isinstance(row["salary"], int)

    def test_flagship_query_matches_ground_truth(self, jobs):
        result = jobs.query(
            "SELECT title, city, company, salary, median_salary "
            "WHERE title = 'software engineer' AND city = 'new york' "
            "AND salary > median_salary"
        )
        data = jobs.world.dataset
        median = next(
            m.median_salary
            for m in data.medians
            if m.title == "software engineer" and m.city == "new york"
        )
        expected = {
            ("software engineer", "new york", p.company, p.salary, median)
            for host in (MONSTER_HOST, CAREER_HOST)
            for p in data.postings_for(host, "software engineer", "new york")
            if p.salary > median
        }
        assert set(result.rows) == expected

    def test_plan_is_single_object_join(self, jobs):
        plan = jobs.plan(
            "SELECT title, salary, median_salary WHERE title = 'dba'"
        )
        assert len(plan.feasible_objects) == 1
        assert set(plan.feasible_objects[0].relations) == {"postings", "market"}

    def test_concept_hierarchy(self, jobs):
        assert jobs.ur.resolve("Job") == ["title", "city"]
        assert jobs.ur.resolve("median_salary") == ["median_salary"]

    def test_world_is_isolated_from_cars(self):
        world = build_jobs_world()
        assert len(world.server.hosts) == 3
