"""Property suite: the cost-based join order is an *optimization*.

Over randomly generated catalogs and queries (seeded through the suite's
``REPRO_TEST_SEED`` knob, so failures replay under any seed), the
planner-chosen order must return exactly the rows the fixed
binding-feasible order returns — counted through a metrics registry by
the catalog itself, the same way the engine counts live fetches.  Fetch
cost is a property of the *estimator*, so it is asserted in aggregate:
across the whole seed set the planner must spend no more total fetches
than the fixed order, and may land on the expensive side of a near-tie
in at most a sliver of scenarios (the generator deliberately produces
sparse relations where independence assumptions legitimately miss).
Orders are only compared when the legacy path finds one at all; the
planner must agree on feasibility.
"""

from __future__ import annotations

import random

import pytest

from repro.core.metrics import MetricsRegistry
from repro.relational.algebra import Base, Expr, Join, Project, Select, evaluate
from repro.relational.bindings import (
    NO_BINDINGS,
    BindingError,
    BindingSets,
    JoinPart,
    binding_sets,
    feasible,
    order_joins,
)
from repro.relational.conditions import conj, eq
from repro.relational.cost import CatalogStats, CostModel, RelationStats
from repro.relational.optimize import optimize
from repro.relational.planner import JoinOrderPlanner
from repro.relational.relation import Relation
from repro.relational.schema import Schema

from tests.conftest import derive_seeds

ATTR_POOL = "abcdefgh"
SEEDS = derive_seeds("plan-equivalence", 120)
MIN_COMPARED = 40  # the generator must yield at least this many orderable cases


class CountingCatalog:
    """A Catalog over in-memory relations that enforces binding sets and
    counts every base fetch into a metrics registry."""

    def __init__(
        self,
        relations: dict[str, Relation],
        bindings: dict[str, BindingSets],
        metrics: MetricsRegistry,
    ) -> None:
        self.relations = relations
        self.bindings = bindings
        self.metrics = metrics

    def base_schema(self, name: str) -> Schema:
        return self.relations[name].schema

    def base_binding_sets(self, name: str) -> BindingSets:
        return self.bindings[name]

    def fetch(self, name: str, given: dict, context=None) -> Relation:
        bound = frozenset(a for a, v in given.items() if v is not None)
        if not feasible(self.bindings[name], bound):
            raise BindingError(
                "fetch of %s with %s satisfies no binding set" % (name, sorted(bound))
            )
        self.metrics.counter("catalog.fetches").inc()
        self.metrics.counter("catalog.fetches.%s" % name).inc()
        relevant = {a: v for a, v in given.items() if a in self.relations[name].schema}
        return self.relations[name].select(
            lambda row: all(row[a] == v for a, v in relevant.items())
        )


def _generate(seed: int):
    """One random scenario: relations with rows/bindings, and a query."""
    rng = random.Random(seed)
    domains = {a: ["%s%d" % (a, i) for i in range(rng.randint(2, 6))] for a in ATTR_POOL}

    n_rel = rng.randint(2, 5)
    relations: dict[str, Relation] = {}
    bindings: dict[str, BindingSets] = {}
    schemas: dict[str, frozenset[str]] = {}
    for i in range(n_rel):
        name = "r%d" % i
        attrs = tuple(sorted(rng.sample(ATTR_POOL, rng.randint(2, 4))))
        # Row counts well above the attribute domain sizes keep the cost
        # model's independence assumptions honest; sparser relations make
        # single-fetch near-ties where an estimator can legitimately land
        # on the other side.
        rows = {
            tuple(rng.choice(domains[a]) for a in attrs)
            for _ in range(rng.randint(8, 40))
        }
        relations[name] = Relation(Schema(attrs), sorted(rows))
        schemas[name] = frozenset(attrs)
        if i == 0 or rng.random() < 0.5:
            bindings[name] = NO_BINDINGS
        else:
            sets = [
                rng.sample(attrs, rng.randint(1, min(2, len(attrs))))
                for _ in range(rng.randint(1, 2))
            ]
            bindings[name] = binding_sets(*sets)

    all_attrs = sorted(set().union(*schemas.values()))
    consts = {
        a: rng.choice(domains[a])
        for a in rng.sample(all_attrs, rng.randint(0, min(2, len(all_attrs))))
    }
    stats = CatalogStats(
        relations={
            name: RelationStats(
                cardinality=float(len(rel)),
                distinct={
                    a: float(len({row[i] for row in rel.rows}))
                    for i, a in enumerate(rel.schema.attrs)
                },
            )
            for name, rel in relations.items()
        }
    )
    return relations, bindings, schemas, consts, stats


def _expression(order_names: list[str], consts: dict, catalog) -> Expr:
    expr: Expr = Base(order_names[0])
    for name in order_names[1:]:
        expr = Join(expr, Base(name))
    if consts:
        expr = Select(expr, conj(*[eq(a, v) for a, v in sorted(consts.items())]))
    outputs = sorted(set().union(*(catalog.base_schema(n).as_set() for n in order_names)))
    expr = Project(expr, outputs)
    return optimize(expr, catalog).expression


def _run(order_names, relations, bindings, consts):
    metrics = MetricsRegistry()
    catalog = CountingCatalog(relations, bindings, metrics)
    expr = _expression(order_names, consts, catalog)
    result = evaluate(expr, catalog)
    return result, metrics.value("catalog.fetches")


def _scenario_orders(seed: int):
    relations, bindings, schemas, consts, stats = _generate(seed)
    parts = [
        JoinPart(name, schemas[name], bindings[name]) for name in sorted(relations)
    ]
    bound = set(consts)
    fixed = order_joins(parts, bound)
    plan = JoinOrderPlanner(CostModel(stats)).plan(parts, bound)
    return relations, bindings, consts, parts, fixed, plan


def test_planner_feasibility_matches_legacy():
    """The planner finds an order exactly when ``order_joins`` does."""
    for seed in SEEDS:
        _, _, _, _, fixed, plan = _scenario_orders(seed)
        assert (plan is None) == (fixed is None), "seed %d disagrees" % seed


def test_planner_order_equivalent_and_cheaper_in_aggregate():
    compared = 0
    baseline_total = 0
    chosen_total = 0
    regressed: list[tuple[int, int, int]] = []
    for seed in SEEDS:
        relations, bindings, consts, parts, fixed, plan = _scenario_orders(seed)
        if fixed is None:
            continue
        assert plan is not None
        fixed_names = [parts[i].name for i in fixed]
        chosen_names = [parts[i].name for i in plan.order]

        baseline, baseline_fetches = _run(fixed_names, relations, bindings, consts)
        chosen, chosen_fetches = _run(chosen_names, relations, bindings, consts)

        assert sorted(map(tuple, baseline.rows)) == sorted(map(tuple, chosen.rows)), (
            "seed %d: planner order %s returns different rows than %s"
            % (seed, chosen_names, fixed_names)
        )
        assert chosen.schema.attrs == baseline.schema.attrs
        baseline_total += baseline_fetches
        chosen_total += chosen_fetches
        if chosen_fetches > baseline_fetches:
            regressed.append((seed, chosen_fetches, baseline_fetches))
        compared += 1
    assert compared >= MIN_COMPARED, "generator too restrictive: %d cases" % compared
    # The estimator property, robust to any REPRO_TEST_SEED: a strict
    # aggregate win, and at most 5% of scenarios on the wrong side of a
    # near-tie.
    assert chosen_total <= baseline_total, (
        "planner costs more fetches in aggregate: %d > %d"
        % (chosen_total, baseline_total)
    )
    allowance = max(1, compared // 20)
    assert len(regressed) <= allowance, (
        "planner regressed %d of %d scenarios (allowance %d): %s"
        % (len(regressed), compared, allowance, regressed)
    )


def test_some_scenario_actually_improves():
    """The suite is not vacuous: at least one generated scenario must show
    the planner strictly beating the fixed order."""
    improved = 0
    for seed in SEEDS:
        relations, bindings, consts, parts, fixed, plan = _scenario_orders(seed)
        if fixed is None:
            continue
        fixed_names = [parts[i].name for i in fixed]
        chosen_names = [parts[i].name for i in plan.order]
        if fixed_names == chosen_names:
            continue
        _, baseline_fetches = _run(fixed_names, relations, bindings, consts)
        _, chosen_fetches = _run(chosen_names, relations, bindings, consts)
        if chosen_fetches < baseline_fetches:
            improved += 1
    assert improved >= 1


def test_counting_catalog_enforces_bindings():
    metrics = MetricsRegistry()
    rel = Relation(Schema(("a", "b")), [("a0", "b0")])
    catalog = CountingCatalog({"r": rel}, {"r": binding_sets({"a"})}, metrics)
    with pytest.raises(BindingError):
        catalog.fetch("r", {})
    assert len(catalog.fetch("r", {"a": "a0"})) == 1
    assert metrics.value("catalog.fetches") == 1
