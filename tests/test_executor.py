"""Integration tests for executing navigation expressions."""

import pytest

from repro.core.sessions import map_kellys, map_newsday, map_nytimes, map_yahoocars
from repro.navigation.compiler import compile_map
from repro.navigation.executor import ExecutorError, NavigationExecutor
from repro.sites.world import build_world


@pytest.fixture(scope="module")
def setup():
    world = build_world()
    executor = NavigationExecutor(world.server)
    for session in (map_newsday, map_nytimes, map_kellys, map_yahoocars):
        executor.add_site(compile_map(session(world).map))
    return world, executor


class TestFetch:
    def test_bound_make_and_model(self, setup):
        world, executor = setup
        rows = executor.fetch("newsday", {"make": "ford", "model": "escort"})
        expected = world.dataset.ads_for("www.newsday.com", make="ford", model="escort")
        assert len(rows) == len(expected)
        assert all(r["make"] == "ford" and r["model"] == "escort" for r in rows)

    def test_make_only_traverses_refinement_and_more(self, setup):
        world, executor = setup
        rows = executor.fetch("newsday", {"make": "ford"})
        expected = world.dataset.ads_for("www.newsday.com", make="ford")
        assert len(rows) == len(expected)
        models = {r["model"] for r in rows}
        assert len(models) > 1  # the unbound model select was enumerated

    def test_values_are_raw_strings(self, setup):
        _, executor = setup
        row = executor.fetch("newsday", {"make": "jaguar"})[0]
        assert row["price"].startswith("$")
        assert row["year"].isdigit()

    def test_output_binding_filters_rows(self, setup):
        world, executor = setup
        rows = executor.fetch("newsday", {"make": "ford", "year": "1995"})
        expected = [
            ad
            for ad in world.dataset.ads_for("www.newsday.com", make="ford")
            if ad.car.year == 1995
        ]
        assert len(rows) == len(expected)

    def test_detail_relation_fetch(self, setup):
        world, executor = setup
        listing = executor.fetch("newsday", {"make": "saab"})[0]
        detail = executor.fetch("newsday_car_features", {"url": listing["url"]})
        assert len(detail) == 1
        assert detail[0]["picture"].startswith("/pics/")

    def test_detail_without_url_yields_nothing(self, setup):
        _, executor = setup
        assert executor.fetch("newsday_car_features", {}) == []

    def test_labeled_wrapper_site(self, setup):
        world, executor = setup
        rows = executor.fetch("yahoocars", {"make": "ford", "model": "escort"})
        expected = world.dataset.ads_for("cars.yahoo.com", make="ford", model="escort")
        assert len(rows) == len(expected)

    def test_kellys_needs_all_three(self, setup):
        _, executor = setup
        rows = executor.fetch(
            "kellys", {"make": "jaguar", "model": "xj6", "condition": "good"}
        )
        assert len(rows) == 10  # one per year
        assert all(r["condition"] == "good" for r in rows)

    def test_unknown_relation_raises(self, setup):
        _, executor = setup
        with pytest.raises(ExecutorError):
            executor.fetch("nosuch", {})

    def test_unknown_make_yields_empty_not_error(self, setup):
        _, executor = setup
        # 'make' is a select; a value outside its domain cannot be submitted.
        assert executor.fetch("nytimes", {"manufacturer": "zeppelin"}) == []


class TestEfficiency:
    def test_request_memoization_within_fetch(self, setup):
        world, executor = setup
        stats = world.server.stats["www.newsday.com"]
        before = stats.requests
        executor.fetch("newsday", {"make": "saab", "model": "900"})
        first_run = world.server.stats["www.newsday.com"].requests - before
        # The two f1 targets (refine node vs data node) share one submission.
        assert first_run <= 4

    def test_separate_fetches_hit_the_site_again(self, setup):
        world, executor = setup
        stats = world.server.stats["www.newsday.com"]
        before = stats.requests
        executor.fetch("newsday", {"make": "saab", "model": "900"})
        executor.fetch("newsday", {"make": "saab", "model": "900"})
        assert world.server.stats["www.newsday.com"].requests - before >= 6

    def test_duplicate_sites_rejected(self, setup):
        world, executor = setup
        with pytest.raises(ExecutorError):
            executor.add_site(compile_map(map_newsday(world).map))
