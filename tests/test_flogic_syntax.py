"""Unit and round-trip tests for the navigation-calculus syntax."""

import pytest
from hypothesis import given, strategies as st

from repro.flogic.formulas import (
    Choice,
    Del,
    Ins,
    Naf,
    Pred,
    Rule,
    Serial,
    format_formula,
    format_rule,
    format_term,
)
from repro.flogic.syntax import (
    SyntaxParseError,
    parse_formula,
    parse_rules,
    parse_term,
)
from repro.flogic.terms import Struct, Var


class TestTerms:
    def test_atom(self):
        assert parse_term("foo") == "foo"

    def test_variable(self):
        assert parse_term("Make") == Var("Make")

    def test_anonymous_variables_are_fresh(self):
        term = parse_term("f(_, _)")
        assert term.args[0] != term.args[1]

    def test_numbers(self):
        assert parse_term("42") == 42
        assert parse_term("-3") == -3
        assert parse_term("2.5") == 2.5

    def test_quoted_string(self):
        assert parse_term("'hello world'") == "hello world"

    def test_quoted_escape(self):
        assert parse_term(r"'don\'t'") == "don't"

    def test_struct(self):
        assert parse_term("f(a, X, 1)") == Struct("f", ("a", Var("X"), 1))

    def test_nested_struct(self):
        assert parse_term("f(g(a))") == Struct("f", (Struct("g", ("a",)),))

    def test_list_is_tuple(self):
        assert parse_term("[1, a, X]") == (1, "a", Var("X"))

    def test_empty_list(self):
        assert parse_term("[]") == ()

    def test_booleans(self):
        assert parse_term("true") is True
        assert parse_term("false") is False

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_term("a b")


class TestFormulas:
    def test_atom_goal(self):
        assert parse_formula("p(X)") == Pred("p", (Var("X"),))

    def test_serial(self):
        formula = parse_formula("a * b * c")
        assert isinstance(formula, Serial)
        assert len(formula.parts) == 3

    def test_choice_binds_looser_than_serial(self):
        formula = parse_formula("a * b ; c")
        assert isinstance(formula, Choice)
        assert isinstance(formula.parts[0], Serial)

    def test_parentheses_group(self):
        formula = parse_formula("a * (b ; c)")
        assert isinstance(formula, Serial)
        assert isinstance(formula.parts[1], Choice)

    def test_molecules(self):
        assert parse_formula("X : action") == Pred("isa", (Var("X"), "action"))
        assert parse_formula("X[method -> 'POST']") == Pred(
            "attr", (Var("X"), "method", "POST")
        )

    def test_naf(self):
        formula = parse_formula("not p(X)")
        assert isinstance(formula, Naf)

    def test_updates(self):
        assert parse_formula("ins_attr(o, a, 1)") == Ins("attr", ("o", "a", 1))
        assert parse_formula("del_attr(o, a, 1)") == Del("attr", ("o", "a", 1))
        assert parse_formula("ins_isa(o, c)") == Ins("isa", ("o", "c"))

    def test_unknown_update_kind_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_formula("ins_frob(o)")

    def test_true_false_goals(self):
        assert parse_formula("true") == Pred("true")
        assert parse_formula("false") == Pred("fail")

    def test_comments_are_skipped(self):
        program = parse_rules("p(1). % a comment\nq(2).")
        assert len(program.rules) == 2


class TestRules:
    def test_fact(self):
        rule = parse_rules("p(1).").rules[0]
        assert rule.head == Pred("p", (1,)) and rule.body == Pred("true")

    def test_rule_with_body(self):
        rule = parse_rules("p(X) <- q(X) * r(X).").rules[0]
        assert isinstance(rule.body, Serial)

    def test_missing_period_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_rules("p(1)")

    def test_non_atomic_head_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_rules("p(X) * q(X) <- r(X).")

    def test_unterminated_string_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_rules("p('oops).")


class TestRoundTrip:
    EXAMPLES = [
        "p(1).",
        "p(X) <- q(X).",
        "p(X) <- q(X) * r(X, 'lit') * lt(X, 10).",
        "p <- a ; b ; c.",
        "p <- a * (b ; c * d).",
        "p(X) <- X : web_page * X[title -> T] * not empty(T).",
        "t <- ins_attr(o, a, 1) * del_attr(o, a, 1) * ins_isa(o, c).",
        "m(X, Y) <- member([X, Y], [[1, a], [2, b]]).",
        "q <- p(f(g(X), [1, 2.5, 'two words'])).",
    ]

    @pytest.mark.parametrize("source", EXAMPLES)
    def test_explicit_round_trips(self, source):
        rule = parse_rules(source).rules[0]
        printed = format_rule(rule)
        again = parse_rules(printed).rules[0]
        assert format_rule(again) == printed

    def test_program_pretty_round_trips(self):
        source = "a(1). b(X) <- a(X) * (c ; d)."
        program = parse_rules(source)
        again = parse_rules(program.pretty())
        assert again.pretty() == program.pretty()


# -- generative round-trip ------------------------------------------------------

_atoms = st.sampled_from(["a", "b", "foo_bar"])
_vars = st.sampled_from([Var("X"), Var("Y"), Var("Zed")])
_consts = st.one_of(_atoms, st.integers(-9, 9), st.sampled_from(["two words", "it's"]))


def _terms(depth=2):
    if depth == 0:
        return st.one_of(_consts, _vars)
    sub = _terms(depth - 1)
    return st.one_of(
        _consts,
        _vars,
        st.builds(lambda args: Struct("f", tuple(args)), st.lists(sub, min_size=1, max_size=2)),
        st.lists(sub, max_size=2).map(tuple),
    )


def _preds():
    return st.builds(
        lambda name, args: Pred(name, tuple(args)),
        st.sampled_from(["p", "q", "r"]),
        st.lists(_terms(), max_size=3),
    )


def _formulas(depth=2):
    # The parser normalizes nested serial/choice chains to their flattened
    # (associativity) normal form, so generate formulas in that form too.
    from repro.flogic.formulas import choice, serial

    if depth == 0:
        return _preds()
    sub = _formulas(depth - 1)
    return st.one_of(
        _preds(),
        st.builds(lambda parts: serial(*parts), st.lists(sub, min_size=2, max_size=3)),
        st.builds(lambda parts: choice(*parts), st.lists(sub, min_size=2, max_size=3)),
        st.builds(Naf, sub),
    )


class TestGenerativeRoundTrip:
    @given(_formulas())
    def test_formula_round_trip(self, formula):
        printed = format_formula(formula)
        parsed = parse_formula(printed)
        assert format_formula(parsed) == printed

    @given(_preds(), _formulas())
    def test_rule_round_trip(self, head, body):
        printed = format_rule(Rule(head, body))
        parsed = parse_rules(printed).rules[0]
        assert format_rule(parsed) == printed

    @given(_terms())
    def test_term_round_trip(self, term):
        printed = format_term(term)
        parsed = parse_term(printed)
        assert format_term(parsed) == printed
