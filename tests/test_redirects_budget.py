"""Tests for HTTP redirects and the executor's page budget."""

import pytest

from repro.web import html as H
from repro.web.browser import Browser, NavigationError
from repro.web.http import Request, Response, Url
from repro.web.server import Site, WebServer


def _redirecting_server() -> WebServer:
    server = WebServer()
    site = Site("r.com")
    site.route(
        "/",
        lambda req: H.page(
            "Home",
            H.form("/cgi/post", H.labeled("Q", H.text_input("q")), H.submit_button()),
            H.bullet_links([("Old", "/old"), ("Loop", "/loop1")]),
        ),
    )
    site.route(
        "/cgi/post",
        lambda req: Response.redirect("/results?q=%s" % req.params.get("q", "")),
    )
    site.route(
        "/results", lambda req: H.page("Results for %s" % req.params.get("q", ""))
    )
    site.route("/old", lambda req: Response.redirect("/new", status=301))
    site.route("/new", lambda req: H.page("New Home"))
    site.route("/loop1", lambda req: Response.redirect("/loop2"))
    site.route("/loop2", lambda req: Response.redirect("/loop1"))
    site.route("/badloc", lambda req: Response.redirect("https://elsewhere/"))
    server.add_site(site)
    return server


class TestRedirects:
    def test_post_redirect_get(self):
        browser = Browser(_redirecting_server())
        browser.get("http://r.com/")
        page = browser.submit_by_attribute({"q": "jaguar"})
        assert page.title == "Results for jaguar"
        assert page.url.path == "/results"  # the browser landed on the target

    def test_moved_permanently(self):
        browser = Browser(_redirecting_server())
        browser.get("http://r.com/")
        page = browser.follow_named("Old")
        assert page.title == "New Home"

    def test_redirect_loop_detected(self):
        browser = Browser(_redirecting_server())
        with pytest.raises(NavigationError, match="too many redirects"):
            browser.get("http://r.com/loop1")

    def test_bad_redirect_location(self):
        browser = Browser(_redirecting_server())
        with pytest.raises(NavigationError, match="bad redirect"):
            browser.get("http://r.com/badloc")

    def test_redirect_hops_charge_network_time(self):
        server = _redirecting_server()
        browser = Browser(server)
        browser.get("http://r.com/old")
        # Two requests (redirect + target) each cost one round trip.
        base_rtt = server.default_latency.rtt
        assert browser.clock.network_seconds >= 2 * base_rtt

    def test_observers_see_only_the_final_page(self):
        from repro.web.browser import BrowserObserver

        seen = []

        class Obs(BrowserObserver):
            def on_page(self, page):
                seen.append(page.url.path)

        browser = Browser(_redirecting_server())
        browser.subscribe(Obs())
        browser.get("http://r.com/old")
        assert seen == ["/new"]


class TestPageBudget:
    def test_budget_stops_runaway_pagination(self, world):
        from repro.core.sessions import map_newsday
        from repro.navigation.compiler import compile_map
        from repro.navigation.executor import (
            NavigationExecutor,
            PageBudgetExceeded,
        )

        builder = map_newsday(world)
        executor = NavigationExecutor(world.server, max_pages_per_fetch=3)
        executor.add_site(compile_map(builder.map))
        with pytest.raises(PageBudgetExceeded):
            executor.fetch("newsday", {"make": "ford"})

    def test_default_budget_is_ample(self, webbase):
        rows = webbase.executor.fetch("newsday", {"make": "ford"})
        assert rows
