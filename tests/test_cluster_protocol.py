"""Protocol-version skew and the client's injectable retry clock.

The cluster stamps ``protocol_version`` and ``shard_id`` onto hello
welcomes and terminal result frames; rolling restarts mean router and
workers may skew a version apart, so unknown request *and* response
fields must be tolerated in both directions (degrade to "feature
unused", never to ``BAD_REQUEST``).  The retry-path tests drive
:meth:`ServiceClient.query_retry` against a scripted server through a
fake clock — no real ``time.sleep`` is paid anywhere, and the
router-issued ``RETRY_AFTER_MS`` hint is honored exactly.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading

import pytest

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.service import protocol
from repro.service.client import (
    Overloaded,
    ServiceClient,
    error_from_frame,
)
from repro.service.server import ServiceConfig, WebBaseService
from repro.vps.cache import CachePolicy

QUERY = "SELECT make, model, price WHERE make = 'saab'"


class FakeTime:
    """A clock + sleep pair that advances virtually, recording sleeps."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class ScriptedServer:
    """A raw line-JSON server answering each request from a script.

    Each script entry is a callable ``request_dict -> list[frame_dict]``;
    entries are consumed in request-arrival order across the connection.
    """

    def __init__(self, script) -> None:
        self.script = list(script)
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                while outer.script:
                    line = self.rfile.readline()
                    if not line or not line.strip():
                        return
                    request = json.loads(line)
                    step = outer.script.pop(0)
                    for frame in step(request):
                        self.wfile.write(
                            (json.dumps(frame) + "\n").encode("utf-8")
                        )
                    self.wfile.flush()

        self._server = socketserver.ThreadingTCPServer(
            ("127.0.0.1", 0), Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.01},
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self):
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()


@pytest.fixture(scope="module")
def shard_service():
    webbase = WebBase.create(WebBaseConfig(cache=CachePolicy.lru()))
    service = WebBaseService(
        webbase, ServiceConfig(port=0, shard_id="shard-test")
    )
    host, port = service.start()
    try:
        yield service, host, port
    finally:
        service.shutdown()


class TestVersionStamps:
    def test_hello_reports_version_shard_and_role(self, shard_service):
        _, host, port = shard_service
        with ServiceClient(host=host, port=port) as client:
            welcome = client.hello()
        assert welcome["protocol_version"] == protocol.PROTOCOL_VERSION
        assert welcome["shard_id"] == "shard-test"
        assert welcome["role"] == "service"

    def test_result_frames_carry_shard_stamp(self, shard_service):
        _, host, port = shard_service
        with ServiceClient(host=host, port=port) as client:
            outcome = client.query(QUERY)
        assert outcome.stats["shard_id"] == "shard-test"
        assert outcome.stats["protocol_version"] == protocol.PROTOCOL_VERSION

    def test_unstamped_service_sends_no_shard_fields(self):
        frame = protocol.result_frame(1, {"rows": 0})
        assert "shard_id" not in frame
        assert "protocol_version" not in frame


class TestSkewTolerance:
    def test_parse_request_ignores_unknown_fields(self):
        request = protocol.parse_request(
            {
                "id": 7,
                "op": "query",
                "text": QUERY,
                "from_the_future": {"nested": True},
                "priority": 9,
            }
        )
        assert request.id == 7
        assert request.text == QUERY

    def test_live_server_tolerates_unknown_request_fields(self, shard_service):
        """A raw frame with fields this version never defined must be
        answered normally, not rejected — that is the rolling-restart
        contract."""
        _, host, port = shard_service
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(
                (
                    json.dumps(
                        {
                            "id": 1,
                            "op": "query",
                            "text": QUERY,
                            "v3_routing_hint": "ignore-me",
                            "page_size": 100,
                        }
                    )
                    + "\n"
                ).encode("utf-8")
            )
            buf = b""
            while b'"result"' not in buf and b'"error"' not in buf:
                chunk = sock.recv(65536)
                assert chunk, "server closed without a terminal frame"
                buf += chunk
        frames = [json.loads(l) for l in buf.split(b"\n") if l.strip()]
        assert frames[-1]["type"] == "result"
        assert frames[-1]["rows"] > 0

    def test_client_tolerates_unknown_response_fields(self):
        """A newer server may stamp frames with fields this client has
        never heard of; the stream must still collect normally."""
        server = ScriptedServer(
            [
                lambda req: [
                    {
                        "id": req["id"],
                        "type": "page",
                        "seq": 0,
                        "schema": ["a"],
                        "rows": [["x"]],
                        "source": "s",
                        "v3_checksum": "abc123",
                    },
                    {
                        "id": req["id"],
                        "type": "result",
                        "rows": 1,
                        "shard_id": "shard-9",
                        "protocol_version": 99,
                        "v3_trailer": [1, 2, 3],
                    },
                ]
            ]
        )
        try:
            with ServiceClient(*server.address, timeout=10.0) as client:
                outcome = client.query("SELECT a WHERE b = 'c'")
        finally:
            server.close()
        assert outcome.rows == [("x",)]
        assert outcome.stats["shard_id"] == "shard-9"
        assert outcome.stats["v3_trailer"] == [1, 2, 3]

    def test_hello_to_old_server_folds_to_version_one(self):
        """A pre-cluster server rejects the hello op; the client folds
        that into a synthetic version-1 welcome instead of raising."""
        server = ScriptedServer(
            [
                lambda req: [
                    protocol.error_frame(
                        req["id"], protocol.E_BAD_REQUEST, "unknown op 'hello'"
                    )
                ]
            ]
        )
        try:
            with ServiceClient(*server.address, timeout=10.0) as client:
                welcome = client.hello()
        finally:
            server.close()
        assert welcome == {
            "protocol_version": 1,
            "shard_id": "",
            "role": "service",
        }

    def test_error_frame_decoding_tolerates_absent_and_extra_fields(self):
        sparse = error_from_frame({"id": 1, "type": "error"})
        assert sparse.code == protocol.E_INTERNAL
        assert sparse.retry_after_ms is None
        rich = error_from_frame(
            {
                "id": 1,
                "type": "error",
                "code": protocol.E_OVERLOADED,
                "message": "busy",
                "retriable": True,
                "retry_after_ms": 125,
                "address": ["10.0.0.1", 9000],
                "v3_shed_class": "batch",
            }
        )
        assert rich.code == protocol.E_OVERLOADED
        assert rich.retry_after_ms == 125.0
        assert rich.address == ("10.0.0.1", 9000)


class TestInjectableRetryClock:
    def _result(self, req):
        return [{"id": req["id"], "type": "result", "rows": 0}]

    def test_retry_honors_router_retry_after_hint_exactly(self):
        """An OVERLOADED shed carrying retry_after_ms=250 must back off
        exactly 0.25 virtual seconds — through the injected sleep, with
        zero real wall time."""
        server = ScriptedServer(
            [
                lambda req: [
                    protocol.error_frame(
                        req["id"],
                        protocol.E_OVERLOADED,
                        "shed",
                        retry_after_ms=250.0,
                    )
                ],
                self._result,
            ]
        )
        fake = FakeTime()
        try:
            with ServiceClient(
                *server.address,
                timeout=10.0,
                clock=fake.clock,
                sleep=fake.sleep,
            ) as client:
                outcome = client.query_retry(QUERY, backoff_seconds=0.05)
        finally:
            server.close()
        assert outcome.stats["rows"] == 0
        assert fake.sleeps == [0.25]

    def test_retry_backs_off_exponentially_without_a_hint(self):
        shed = lambda req: [  # noqa: E731
            protocol.error_frame(req["id"], protocol.E_OVERLOADED, "shed")
        ]
        server = ScriptedServer([shed, shed, self._result])
        fake = FakeTime()
        try:
            with ServiceClient(
                *server.address,
                timeout=10.0,
                clock=fake.clock,
                sleep=fake.sleep,
            ) as client:
                client.query_retry(QUERY, backoff_seconds=0.05)
        finally:
            server.close()
        assert fake.sleeps == [0.05, 0.1]

    def test_retry_budget_exhaustion_raises_typed_overloaded(self):
        shed = lambda req: [  # noqa: E731
            protocol.error_frame(req["id"], protocol.E_OVERLOADED, "shed")
        ]
        server = ScriptedServer([shed, shed, shed])
        fake = FakeTime()
        try:
            with ServiceClient(
                *server.address,
                timeout=10.0,
                clock=fake.clock,
                sleep=fake.sleep,
            ) as client:
                with pytest.raises(Overloaded) as caught:
                    client.query_retry(QUERY, retries=2, backoff_seconds=0.05)
        finally:
            server.close()
        assert caught.value.retriable
        assert len(fake.sleeps) == 2

    def test_connect_window_uses_the_injected_clock(self):
        """The constructor's connect-retry window must consult the fake
        clock, so a test can expire it without waiting real seconds."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        fake = FakeTime()

        def jumping_clock() -> float:
            fake.now += 3.0  # every look at the clock leaps forward
            return fake.now

        with pytest.raises(OSError):
            ServiceClient(
                "127.0.0.1",
                dead_port,
                connect_timeout=5.0,
                clock=jumping_clock,
                sleep=fake.sleep,
            )
        # window: opened at 3.0, deadline 8.0 — one failed attempt at
        # 6.0 sleeps once, the next look (9.0) expires the window.
        assert fake.sleeps == [0.1]
