"""Tests for query reports (provenance/cost) and incremental map merging."""

import pytest

from repro.navigation.builder import MapBuilder
from repro.navigation.compiler import compile_map
from repro.navigation.navmap import MapError
from repro.web.browser import Browser


class TestQueryReport:
    def test_report_matches_plain_answer(self, webbase):
        text = "SELECT make, model, price WHERE make = 'saab'"
        report = webbase.query_report(text)
        assert report.answer == webbase.query(text)

    def test_report_attributes_work_to_objects(self, webbase):
        report = webbase.query_report(
            "SELECT make, model, price WHERE make = 'honda'"
        )
        assert len(report.objects) == 2  # classifieds + dealers
        for obj in report.objects:
            assert obj.rows >= 0
            assert obj.pages > 0
            assert obj.network_seconds > 0

    def test_pages_attributed_to_right_hosts(self, webbase):
        report = webbase.query_report(
            "SELECT make, model, price WHERE make = 'bmw'"
        )
        classifieds = next(o for o in report.objects if "classifieds" in o.relations)
        assert set(classifieds.pages_by_host) <= {
            "www.newsday.com",
            "www.nytimes.com",
        }
        dealers = next(o for o in report.objects if "dealers" in o.relations)
        assert set(dealers.pages_by_host) <= {
            "www.carpoint.com",
            "www.autoweb.com",
        }

    def test_skipped_objects_reported(self, webbase):
        report = None
        try:
            report = webbase.query_report("SELECT make, bb_price WHERE make = 'ford'")
        except Exception:
            pass
        if report is not None:  # pragma: no cover - depends on plan feasibility
            assert any(o.skipped for o in report.objects)

    def test_pretty_renders(self, webbase):
        report = webbase.query_report(
            "SELECT make, model, price WHERE make = 'saab'"
        )
        text = report.pretty()
        assert "classifieds" in text and "total:" in text

    def test_totals_sum_objects(self, webbase):
        report = webbase.query_report(
            "SELECT make, model, price WHERE make = 'dodge'"
        )
        assert report.total_pages == sum(o.pages for o in report.objects)


class TestMapMerge:
    def _partial_sessions(self, world):
        """Two designers each explore part of Newsday."""
        browser_a = Browser(world.server)
        builder_a = MapBuilder("www.newsday.com")
        browser_a.subscribe(builder_a)
        browser_a.get("http://www.newsday.com/")
        browser_a.follow_named("Auto")
        page = browser_a.submit_by_attribute({"make": "saab"})  # direct branch only
        row = page.tables()[0][1]
        builder_a.mark_data_page(
            "newsday",
            {
                "make": row[0],
                "model": row[1],
                "year": row[2],
                "price": row[3],
                "contact": row[4],
                "url": str(page.link_named("Car Features").address),
            },
        )

        browser_b = Browser(world.server)
        builder_b = MapBuilder("www.newsday.com")
        browser_b.subscribe(builder_b)
        browser_b.get("http://www.newsday.com/classified/cars")
        browser_b.submit_by_attribute({"make": "ford"})  # refinement branch
        page_b = browser_b.submit_by_attribute({"model": "escort"})
        row_b = page_b.tables()[0][1]
        builder_b.mark_data_page(
            "newsday",
            {
                "make": row_b[0],
                "model": row_b[1],
                "year": row_b[2],
                "price": row_b[3],
                "contact": row_b[4],
                "url": str(page_b.link_named("Car Features").address),
            },
        )
        return builder_a.map, builder_b.map

    def test_merge_unifies_shared_nodes(self, fresh_world):
        map_a, map_b = self._partial_sessions(fresh_world)
        nodes_before = len(map_a.nodes)
        remap = map_a.merge(map_b)
        # b's search page and data page unify with a's; only the refine
        # page is new.
        assert len(map_a.nodes) == nodes_before + 1
        assert set(remap) == set(map_b.nodes)

    def test_merged_map_compiles_with_both_branches(self, fresh_world):
        map_a, map_b = self._partial_sessions(fresh_world)
        map_a.merge(map_b)
        site = compile_map(map_a)
        program = site.program.pretty()
        assert "featrs" in program  # the refinement branch arrived via b

    def test_merged_map_executes_both_branches(self, fresh_world):
        from repro.navigation.executor import NavigationExecutor

        map_a, map_b = self._partial_sessions(fresh_world)
        map_a.merge(map_b)
        executor = NavigationExecutor(fresh_world.server)
        executor.add_site(compile_map(map_a))
        # ford requires the refinement branch; saab uses the direct one.
        fords = executor.fetch("newsday", {"make": "ford", "model": "escort"})
        saabs = executor.fetch("newsday", {"make": "saab"})
        assert fords and saabs

    def test_merge_is_idempotent(self, fresh_world):
        map_a, map_b = self._partial_sessions(fresh_world)
        map_a.merge(map_b)
        edges_once = list(map_a.edges)
        map_a.merge(map_b)
        assert map_a.edges == edges_once

    def test_merge_rejects_different_hosts(self, fresh_world):
        from repro.navigation.navmap import NavigationMap

        with pytest.raises(MapError):
            NavigationMap("a.com").merge(NavigationMap("b.com"))

    def test_merge_rejects_conflicting_relation_names(self, fresh_world):
        map_a, map_b = self._partial_sessions(fresh_world)
        for node in map_b.data_nodes():
            node.relation_name = "different"
        with pytest.raises(MapError):
            map_a.merge(map_b)
