"""The query service: admission control, deadlines, streaming, drain.

These tests run a real :class:`WebBaseService` on an ephemeral port and
talk to it through :class:`ServiceClient` (or a raw socket where the
client library deliberately prevents the abuse being tested).  Load
states that depend on timing — a busy executor, a full queue — are made
deterministic with a gated service subclass whose ``_execute`` blocks on
an event, so admission decisions are asserted exactly, not probed.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.service import protocol
from repro.service.client import (
    DeadlineExceededError,
    Overloaded,
    ServiceClient,
    ServiceError,
    ServiceShuttingDown,
)
from repro.service.server import ServiceConfig, WebBaseService
from repro.vps.cache import CachePolicy

QUERY = "SELECT make, model, price WHERE make = 'saab'"


def _fresh_webbase() -> WebBase:
    return WebBase.create(WebBaseConfig(cache=CachePolicy.lru()))


class GatedService(WebBaseService):
    """A service whose executor blocks until released — pins the worker
    pool and queue into exact states for admission tests."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.entered = threading.Semaphore(0)
        self.release = threading.Event()

    def _execute(self, job):
        self.entered.release()
        assert self.release.wait(timeout=10.0), "test forgot to open the gate"
        return {"rows": 0, "pages": 0}


@pytest.fixture()
def service():
    webbase = _fresh_webbase()
    svc = WebBaseService(webbase, ServiceConfig(port=0))
    host, port = svc.start()
    try:
        yield svc, host, port
    finally:
        svc.shutdown()


class TestRoundtrip:
    def test_streamed_answer_matches_direct_query(self, service):
        svc, host, port = service
        with ServiceClient(host=host, port=port) as client:
            outcome = client.query(QUERY)
        direct = svc.webbase.query(QUERY)
        assert outcome.schema == list(direct.schema)
        assert sorted(outcome.rows) == sorted(set(direct.rows))
        assert outcome.stats["rows"] == len(outcome.rows)
        assert outcome.stats["fetches"] > 0

    def test_pages_respect_page_size(self, service):
        svc, host, port = service
        with ServiceClient(host=host, port=port) as client:
            pages = list(client.stream(QUERY, page_size=5))
        assert pages, "expected at least one page"
        assert all(len(page.rows) <= 5 for page in pages)
        assert all(page.source for page in pages)
        total = sum(len(page.rows) for page in pages)
        assert total == len(set(svc.webbase.query(QUERY).rows))

    def test_rows_deduplicated_across_pages(self, service):
        svc, host, port = service
        with ServiceClient(host=host, port=port) as client:
            outcome = client.query(QUERY, page_size=3)
        assert len(outcome.rows) == len(set(outcome.rows))

    def test_ping_and_metrics_ops(self, service):
        svc, host, port = service
        with ServiceClient(host=host, port=port) as client:
            assert client.ping() < 5.0
            client.query(QUERY)
            snapshot = client.metrics()
        assert snapshot["counters"]["service.completed"] >= 1
        assert "service.total_seconds" in snapshot["histograms"]


class TestAdmissionControl:
    def test_queue_full_sheds_with_structured_overloaded(self):
        """One executing job + one queued job + queue_limit=1: the third
        query is shed with a retriable OVERLOADED and counted."""
        webbase = _fresh_webbase()
        svc = GatedService(
            webbase, ServiceConfig(port=0, queue_limit=1, workers=1)
        )
        host, port = svc.start()
        results: list = []

        def issue():
            with ServiceClient(host=host, port=port) as client:
                results.append(client.query(QUERY))

        try:
            first = threading.Thread(target=issue, daemon=True)
            first.start()
            assert svc.entered.acquire(timeout=10.0)  # worker now busy
            second = threading.Thread(target=issue, daemon=True)
            second.start()
            for _ in range(200):  # queue occupied by the second job
                if svc._queue.qsize() == 1:
                    break
                threading.Event().wait(0.01)
            assert svc._queue.qsize() == 1
            with ServiceClient(host=host, port=port) as client:
                with pytest.raises(Overloaded) as excinfo:
                    client.query(QUERY)
            assert excinfo.value.retriable
            assert excinfo.value.code == protocol.E_OVERLOADED
            assert "retry" in str(excinfo.value)
            svc.release.set()
            first.join(timeout=10.0)
            second.join(timeout=10.0)
            assert len(results) == 2
            assert webbase.metrics.value("service.shed") == 1
            assert webbase.metrics.value("service.admitted") == 2
        finally:
            svc.release.set()
            svc.shutdown()

    def test_per_client_limit_rejects_second_concurrent_query(self):
        """The client library issues one query at a time, so the greedy
        client is a raw socket pipelining two queries on one connection."""
        webbase = _fresh_webbase()
        svc = GatedService(
            webbase,
            ServiceConfig(port=0, queue_limit=8, workers=2, per_client_limit=1),
        )
        host, port = svc.start()
        try:
            with socket.create_connection((host, port), timeout=10.0) as sock:
                reader = sock.makefile("rb")
                sock.sendall(protocol.encode({"id": 1, "op": "query", "text": QUERY}))
                assert svc.entered.acquire(timeout=10.0)  # job 1 holds the slot
                sock.sendall(protocol.encode({"id": 2, "op": "query", "text": QUERY}))
                frame = protocol.decode_line(reader.readline())
                assert frame["id"] == 2
                assert frame["type"] == "error"
                assert frame["code"] == protocol.E_CLIENT_LIMIT
                assert frame["retriable"] is True
                svc.release.set()
                frame = protocol.decode_line(reader.readline())
                assert frame["id"] == 1
                assert frame["type"] == "result"
            assert webbase.metrics.value("service.client_limited") == 1
        finally:
            svc.release.set()
            svc.shutdown()

    def test_draining_rejects_new_queries(self, service):
        svc, host, port = service
        svc._draining.set()
        with ServiceClient(host=host, port=port) as client:
            with pytest.raises(ServiceShuttingDown) as excinfo:
                client.query(QUERY)
        assert excinfo.value.retriable
        assert svc.metrics.value("service.rejected_draining") == 1
        svc._draining.clear()  # let the fixture's shutdown drain normally


class TestDeadlines:
    def test_expired_deadline_is_structured_and_counted(self, service):
        svc, host, port = service
        with ServiceClient(host=host, port=port) as client:
            with pytest.raises(DeadlineExceededError) as excinfo:
                client.query(QUERY, deadline_ms=0)
        exc = excinfo.value
        assert not exc.retriable
        assert exc.code == protocol.E_DEADLINE_EXCEEDED
        assert svc.metrics.value("service.deadline_exceeded") == 1

    def test_queue_wait_counts_toward_the_deadline(self):
        """A request whose deadline expires while it sits in the admission
        queue is rejected without wasting an executor on it."""
        webbase = _fresh_webbase()
        svc = GatedService(webbase, ServiceConfig(port=0, queue_limit=4, workers=1))
        host, port = svc.start()
        errors: list[ServiceError] = []

        def blocked():
            with ServiceClient(host=host, port=port) as client:
                client.query(QUERY)

        def doomed():
            with ServiceClient(host=host, port=port) as client:
                try:
                    client.query(QUERY, deadline_ms=50)
                except ServiceError as exc:
                    errors.append(exc)

        try:
            first = threading.Thread(target=blocked, daemon=True)
            first.start()
            assert svc.entered.acquire(timeout=10.0)  # worker busy
            second = threading.Thread(target=doomed, daemon=True)
            second.start()
            threading.Event().wait(0.2)  # let the 50ms budget expire in-queue
            svc.release.set()
            first.join(timeout=10.0)
            second.join(timeout=10.0)
            assert len(errors) == 1
            assert isinstance(errors[0], DeadlineExceededError)
            assert "admission queue" in str(errors[0])
            assert webbase.metrics.value("service.deadline_exceeded") == 1
        finally:
            svc.release.set()
            svc.shutdown()


class TestProtocolErrors:
    def test_malformed_and_invalid_frames(self, service):
        svc, host, port = service
        with socket.create_connection((host, port), timeout=10.0) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            frame = protocol.decode_line(reader.readline())
            assert frame["type"] == "error"
            assert frame["code"] == protocol.E_BAD_REQUEST
            sock.sendall(protocol.encode({"id": 7, "op": "explode"}))
            frame = protocol.decode_line(reader.readline())
            assert frame["id"] == 7
            assert frame["code"] == protocol.E_BAD_REQUEST
            sock.sendall(protocol.encode({"id": 8, "op": "query", "text": "   "}))
            frame = protocol.decode_line(reader.readline())
            assert frame["id"] == 8
            assert frame["code"] == protocol.E_BAD_REQUEST

    def test_unparsable_query_is_bad_request(self, service):
        svc, host, port = service
        with ServiceClient(host=host, port=port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.query("SELECT make WHERE")
        assert excinfo.value.code == protocol.E_BAD_REQUEST
        assert not excinfo.value.retriable
        assert svc.metrics.value("service.bad_requests") == 1

    def test_server_survives_bad_requests(self, service):
        """A protocol violation poisons neither the connection nor the
        server — the next well-formed query still answers."""
        svc, host, port = service
        with ServiceClient(host=host, port=port) as client:
            with pytest.raises(ServiceError):
                client.query("SELECT make WHERE")
            outcome = client.query(QUERY)
        assert len(outcome.rows) > 0


class TestDrain:
    def test_graceful_shutdown_finishes_inflight_work(self):
        webbase = _fresh_webbase()
        svc = WebBaseService(webbase, ServiceConfig(port=0))
        host, port = svc.start()
        with ServiceClient(host=host, port=port) as client:
            for _ in range(3):
                client.query(QUERY)
        snapshot = svc.shutdown()
        counters = snapshot["counters"]
        assert counters["service.completed"] == 3
        assert counters["service.admitted"] == 3
        assert counters["service.drains"] == 1
        assert snapshot["gauges"]["service.queue_depth"] == 0

    def test_shared_cache_collapses_repeat_queries(self):
        """Two clients asking the same query share the webbase's cross-query
        cache: the second answer costs zero live fetches."""
        webbase = _fresh_webbase()
        svc = WebBaseService(webbase, ServiceConfig(port=0))
        host, port = svc.start()
        try:
            with ServiceClient(host=host, port=port) as client:
                first = client.query(QUERY)
            fetches_after_first = webbase.metrics.value("engine.fetches")
            with ServiceClient(host=host, port=port) as client:
                second = client.query(QUERY)
            assert sorted(second.rows) == sorted(first.rows)
            assert webbase.metrics.value("engine.fetches") == fetches_after_first
        finally:
            svc.shutdown()
