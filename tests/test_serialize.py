"""Tests for navigation-map persistence (JSON round-trips)."""

import pytest

from repro.navigation.compiler import compile_map
from repro.navigation.serialize import (
    SerializeError,
    dumps,
    load_map,
    loads,
    map_from_dict,
    map_to_dict,
    save_map,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "host",
        [
            "www.newsday.com",  # branch + More + detail relation
            "www.kbb.com",  # radio widgets
            "cars.yahoo.com",  # labeled wrapper
            "www.usedcarmart.com",  # two handles
        ],
    )
    def test_map_round_trips(self, webbase, host):
        original = webbase.builders[host].map
        restored = loads(dumps(original))
        assert restored.host == original.host
        assert restored.root_id == original.root_id
        assert set(restored.nodes) == set(original.nodes)
        assert restored.edges == original.edges
        for node_id, node in original.nodes.items():
            twin = restored.nodes[node_id]
            assert twin.signature == node.signature
            assert twin.relation_name == node.relation_name
            assert twin.wrapper == node.wrapper
            assert set(twin.forms) == set(node.forms)

    def test_restored_map_compiles_identically(self, webbase):
        original = webbase.builders["www.newsday.com"].map
        restored = loads(dumps(original))
        assert (
            compile_map(restored).program.pretty()
            == compile_map(original).program.pretty()
        )
        original_handles = [
            (h.relation, h.mandatory, h.selection)
            for rel in compile_map(original).relations
            for h in rel.handles
        ]
        restored_handles = [
            (h.relation, h.mandatory, h.selection)
            for rel in compile_map(restored).relations
            for h in rel.handles
        ]
        assert restored_handles == original_handles

    def test_restored_map_executes(self, webbase, world):
        from repro.navigation.executor import NavigationExecutor

        restored = loads(dumps(webbase.builders["www.newsday.com"].map))
        executor = NavigationExecutor(world.server)
        executor.add_site(compile_map(restored))
        rows = executor.fetch("newsday", {"make": "saab"})
        assert len(rows) == len(world.dataset.ads_for("www.newsday.com", make="saab"))

    def test_file_round_trip(self, webbase, tmp_path):
        original = webbase.builders["www.kbb.com"].map
        path = str(tmp_path / "kellys.navmap.json")
        save_map(original, path)
        assert load_map(path).edges == original.edges

    def test_dict_round_trip_is_stable(self, webbase):
        original = webbase.builders["www.nytimes.com"].map
        once = map_to_dict(original)
        twice = map_to_dict(map_from_dict(once))
        assert once == twice


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(SerializeError):
            loads("{not json")

    def test_non_object(self):
        with pytest.raises(SerializeError):
            loads("[1, 2]")

    def test_wrong_format_version(self, webbase):
        data = map_to_dict(webbase.builders["www.kbb.com"].map)
        data["format"] = 99
        with pytest.raises(SerializeError):
            map_from_dict(data)

    def test_unknown_edge_kind(self, webbase):
        data = map_to_dict(webbase.builders["www.kbb.com"].map)
        data["edges"].append({"kind": "teleport", "source": "n0", "target": "n1"})
        with pytest.raises(SerializeError):
            map_from_dict(data)
