"""Tests for the external schema: concepts, compatibility, maximal objects,
query parsing and planning."""

import pytest

from repro.ur.compat import (
    CompatibilityRule,
    allows,
    excludes,
    is_compatible,
    mutually_exclusive,
    requires,
)
from repro.ur.concepts import Concept, ConceptError, used_car_hierarchy
from repro.ur.maximal import covering_objects, maximal_objects
from repro.ur.query import QueryParseError, URQuery, parse_query
from repro.ur.usedcars import (
    EXAMPLE_62_EXPECTED,
    EXAMPLE_62_RELATIONS,
    example_62_rules,
)
from repro.relational.conditions import And, Comparison, Or


class TestConcepts:
    def test_leaves_in_order(self):
        root = used_car_hierarchy()
        assert root.expand("Car") == ["make", "model", "year"]

    def test_find_and_path(self):
        root = used_car_hierarchy()
        assert root.find("safety") is not None
        assert root.path_to("bb_price") == ["UsedCarUR", "Value", "bb_price"]
        assert root.path_to("nope") is None

    def test_expand_leaf(self):
        root = used_car_hierarchy()
        assert root.expand("rate") == ["rate"]

    def test_expand_unknown_raises(self):
        with pytest.raises(ConceptError):
            used_car_hierarchy().expand("nope")

    def test_expand_root_lists_everything(self):
        root = used_car_hierarchy()
        assert len(root.expand("UsedCarUR")) == 12

    def test_validate_rejects_duplicate_homes(self):
        root = Concept("R").add(Concept("A").add("x"), Concept("B").add("x"))
        with pytest.raises(ConceptError):
            root.validate()

    def test_pretty_renders_tree(self):
        text = used_car_hierarchy().pretty()
        assert "UsedCarUR" in text and "  Car" in text


class TestCompatibility:
    def test_empty_set_compatible(self):
        assert is_compatible(set(), [])

    def test_axiom_admits_singleton(self):
        assert is_compatible({"a"}, allows("a"))

    def test_unadmitted_relation_incompatible(self):
        assert not is_compatible({"a"}, allows("b"))

    def test_positive_rule_requires_lhs_present(self):
        rules = allows("a") + [requires({"a"}, "b")]
        assert is_compatible({"a", "b"}, rules)
        assert not is_compatible({"b"}, rules)

    def test_negative_rule_blocks(self):
        rules = allows("a", "b") + [excludes({"a"}, "b")]
        assert is_compatible({"a"}, rules)
        assert not is_compatible({"a", "b"}, rules)

    def test_mutually_exclusive(self):
        rules = allows("a", "b") + mutually_exclusive("a", "b")
        assert not is_compatible({"a", "b"}, rules)

    def test_empty_lhs_negative_bans_everywhere(self):
        rules = allows("a", "t") + [excludes(set(), "t")]
        assert not is_compatible({"t"}, rules)
        assert not is_compatible({"a", "t"}, rules)

    def test_rule_repr(self):
        assert "->" in repr(requires({"a"}, "b"))
        assert "not" in repr(excludes({"a"}, "b"))


class TestMaximalObjects:
    def test_example_62_reproduces_exactly(self):
        objects = maximal_objects(EXAMPLE_62_RELATIONS, example_62_rules())
        assert sorted(objects, key=sorted) == sorted(EXAMPLE_62_EXPECTED, key=sorted)
        assert len(objects) == 5

    def test_trade_in_never_appears(self):
        objects = maximal_objects(EXAMPLE_62_RELATIONS, example_62_rules())
        assert all("trade_in_value" not in obj for obj in objects)

    def test_lease_objects_fully_insured_from_dealers(self):
        objects = maximal_objects(EXAMPLE_62_RELATIONS, example_62_rules())
        lease_objects = [o for o in objects if "lease" in o]
        assert lease_objects == [
            frozenset({"dealers", "lease", "full_coverage", "retail_value"})
        ]

    def test_all_compatible_universe_is_one_object(self):
        rules = allows("a", "b", "c")
        assert maximal_objects(["a", "b", "c"], rules) == [frozenset({"a", "b", "c"})]

    def test_oversized_universe_rejected(self):
        with pytest.raises(ValueError):
            maximal_objects(["r%d" % i for i in range(21)], [])


class TestCoveringObjects:
    SCHEMAS = {
        "ads": frozenset({"make", "price"}),
        "dealer_ads": frozenset({"make", "price", "zip"}),
        "bb": frozenset({"make", "bb_price"}),
    }

    def test_minimal_cover(self):
        rules = allows("ads", "dealer_ads", "bb")
        covers = covering_objects(self.SCHEMAS, rules, {"price", "bb_price"}, self.SCHEMAS)
        assert frozenset({"ads", "bb"}) in covers
        assert frozenset({"dealer_ads", "bb"}) in covers
        # Non-minimal covers are excluded.
        assert frozenset({"ads", "dealer_ads", "bb"}) not in covers

    def test_compatibility_filters_covers(self):
        rules = allows("ads", "dealer_ads", "bb") + mutually_exclusive("ads", "dealer_ads")
        covers = covering_objects(self.SCHEMAS, rules, {"zip", "price"}, self.SCHEMAS)
        assert covers == [frozenset({"dealer_ads"})]

    def test_homeless_attribute_raises(self):
        with pytest.raises(KeyError):
            covering_objects(self.SCHEMAS, allows("ads"), {"astrology"}, self.SCHEMAS)


class TestQueryParsing:
    def test_select_only(self):
        query = parse_query("SELECT make, model")
        assert query.outputs == ("make", "model")
        assert query.condition is None

    def test_simple_where(self):
        query = parse_query("SELECT make WHERE make = 'ford'")
        assert query.condition.evaluate({"make": "ford"})

    def test_numeric_literals(self):
        query = parse_query("SELECT make WHERE year >= 1993 AND rate < 7.5")
        assert query.condition.evaluate({"year": 1995, "rate": 7.0})
        assert not query.condition.evaluate({"year": 1990, "rate": 7.0})

    def test_attr_attr_comparison(self):
        query = parse_query("SELECT make WHERE price < bb_price")
        assert query.condition.evaluate({"price": 1, "bb_price": 2})

    def test_in_list(self):
        query = parse_query("SELECT make WHERE zip IN ('10001', '10025')")
        assert isinstance(query.condition, Or)
        assert query.condition.evaluate({"zip": "10025"})
        assert not query.condition.evaluate({"zip": "90210"})

    def test_keywords_case_insensitive(self):
        query = parse_query("select make where make = 'ford'")
        assert query.outputs == ("make",)

    def test_attributes_include_condition_attrs(self):
        query = parse_query("SELECT make WHERE price < bb_price AND zip = '10001'")
        assert query.attributes() == {"make", "price", "bb_price", "zip"}

    def test_errors(self):
        for bad in [
            "WHERE x = 1",
            "SELECT make WHERE",
            "SELECT make WHERE make ~ 'x'",
            "SELECT make WHERE make = 'unterminated",
            "SELECT make WHERE zip IN ('a' 'b')",
            "SELECT make WHERE zip IN (price)",
            "SELECT make WHERE make = 'a' OR x = 1",
        ]:
            with pytest.raises(QueryParseError):
                parse_query(bad)


class TestPlanner:
    def test_plan_uses_both_ad_sources(self, webbase):
        plan = webbase.plan("SELECT make, model, price WHERE make = 'jaguar'")
        relation_sets = {frozenset(o.relations) for o in plan.objects}
        assert frozenset({"classifieds"}) in relation_sets
        assert frozenset({"dealers"}) in relation_sets

    def test_plan_joins_when_attrs_span_relations(self, webbase):
        plan = webbase.plan(
            "SELECT make, model, price, bb_price "
            "WHERE make = 'jaguar' AND condition = 'good'"
        )
        for obj in plan.objects:
            assert "blue_price" in obj.relations

    def test_plan_orders_mandatory_last(self, webbase):
        plan = webbase.plan(
            "SELECT make, model, price, bb_price "
            "WHERE make = 'jaguar' AND condition = 'good'"
        )
        for obj in plan.feasible_objects:
            assert obj.relations.index("blue_price") > 0  # needs model fed in

    def test_infeasible_object_is_skipped_with_note(self, webbase):
        # Without a condition constant, blue_price's mandatory 'condition'
        # cannot be derived (no relation's schema supplies it).
        plan = webbase.plan("SELECT make, bb_price WHERE make = 'jaguar'")
        assert plan.objects and not plan.feasible_objects

    def test_answer_raises_when_nothing_evaluable(self, webbase):
        from repro.ur.planner import PlanError

        with pytest.raises(PlanError):
            webbase.query("SELECT make, bb_price WHERE make = 'jaguar'")

    def test_unknown_attribute_rejected(self, webbase):
        from repro.ur.planner import PlanError

        with pytest.raises((PlanError, KeyError)):
            webbase.plan("SELECT astrology")

    def test_resolve_concept_names(self, webbase):
        assert webbase.ur.resolve("Car") == ["make", "model", "year"]
        assert webbase.ur.resolve("zip_code") == ["zip"]

    def test_describe_mentions_objects(self, webbase):
        plan = webbase.plan("SELECT make WHERE make = 'ford'")
        assert "object" in plan.describe()

    def test_ur_attributes(self, webbase):
        assert "bb_price" in webbase.ur.attributes
        assert "url" not in webbase.ur.attributes  # internal plumbing only
