"""Unit and property tests for binding propagation and join ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.relational.bindings import (
    BindingError,
    JoinPart,
    bind_join,
    bind_project,
    bind_rename,
    bind_select,
    bind_union,
    binding_sets,
    choose_binding,
    feasible,
    minimize,
    order_joins,
    orderable,
)


class TestMinimize:
    def test_drops_supersets(self):
        sets = binding_sets({"a"}, {"a", "b"}, {"c"})
        assert minimize(sets) == binding_sets({"a"}, {"c"})

    def test_keeps_incomparable(self):
        sets = binding_sets({"a", "b"}, {"b", "c"})
        assert minimize(sets) == sets

    def test_empty_set_dominates(self):
        assert minimize(binding_sets(set(), {"a"})) == binding_sets(set())

    @given(st.sets(st.frozensets(st.sampled_from("abcd"), max_size=3), max_size=6))
    def test_idempotent(self, sets):
        once = minimize(sets)
        assert minimize(once) == once

    @given(st.sets(st.frozensets(st.sampled_from("abcd"), max_size=3), max_size=6))
    def test_preserves_feasibility(self, sets):
        # Minimization never changes which bound-sets are feasible.
        for bound in [set(), {"a"}, {"a", "b"}, {"a", "b", "c", "d"}]:
            assert feasible(frozenset(sets), bound) == feasible(minimize(sets), bound)


class TestFeasibleChoose:
    def test_feasible(self):
        sets = binding_sets({"make"}, {"url"})
        assert feasible(sets, {"make", "x"})
        assert feasible(sets, {"url"})
        assert not feasible(sets, {"model"})

    def test_choose_largest_satisfied(self):
        sets = binding_sets({"make"}, {"make", "model"})
        assert choose_binding(sets, {"make", "model", "zip"}) == {"make", "model"}

    def test_choose_raises_when_unsatisfied(self):
        with pytest.raises(BindingError):
            choose_binding(binding_sets({"make"}), {"model"})


class TestOperatorRules:
    def test_select_passthrough(self):
        sets = binding_sets({"make", "model"})
        assert bind_select(sets) == sets

    def test_select_absorbs_constants(self):
        sets = binding_sets({"make", "model"})
        assert bind_select(sets, {"make"}) == binding_sets({"model"})

    def test_project_keeps_bindings_of_dropped_attrs(self):
        # Mandatory attributes must be supplied even if projected away.
        sets = binding_sets({"url"})
        assert bind_project(sets) == sets

    def test_rename(self):
        sets = binding_sets({"manufacturer"})
        assert bind_rename(sets, {"manufacturer": "make"}) == binding_sets({"make"})

    def test_union_pairs(self):
        left = binding_sets({"a"})
        right = binding_sets({"b"}, {"c"})
        assert bind_union(left, right) == binding_sets({"a", "b"}, {"a", "c"})

    def test_relaxed_union_is_either_side(self):
        left = binding_sets({"a"})
        right = binding_sets({"b"})
        assert bind_union(left, right, relaxed=True) == binding_sets({"a"}, {"b"})

    def test_join_feeds_common_attributes(self):
        # newsday(make...) join features(url...): url is produced by the
        # left side, so {make} alone is a binding of the join.
        left = binding_sets({"make"})
        right = binding_sets({"url"})
        result = bind_join(
            left, {"make", "model", "url"}, right, {"url", "features"}
        )
        assert frozenset({"make"}) in result

    def test_join_symmetric_option(self):
        left = binding_sets({"a"})
        right = binding_sets({"b"})
        result = bind_join(left, {"a", "k"}, right, {"b", "k"})
        assert result == binding_sets({"a", "b"})

    def test_join_rule_is_symmetric(self):
        l, ls = binding_sets({"a"}), {"a", "k"}
        r, rs = binding_sets({"b", "k"}), {"b", "k"}
        assert bind_join(l, ls, r, rs) == bind_join(r, rs, l, ls)


class TestJoinOrdering:
    def _parts(self):
        return [
            JoinPart.make("ads", {"make", "model", "year", "price"}, [{"make"}]),
            JoinPart.make("bb", {"make", "model", "year", "cond", "bb"}, [{"make", "model", "cond"}]),
            JoinPart.make("safety", {"make", "model", "year", "safety"}, [{"make"}]),
        ]

    def test_orderable_with_constants(self):
        assert order_joins(self._parts(), {"make", "cond"}) is not None

    def test_order_respects_dependencies(self):
        parts = self._parts()
        order = order_joins(parts, {"make", "cond"})
        names = [parts[i].name for i in order]
        # bb needs model, which only ads/safety schemas provide.
        assert names.index("bb") > 0

    def test_unorderable_without_constants(self):
        assert order_joins(self._parts(), set()) is None
        assert not orderable(self._parts(), set())

    def test_empty_parts(self):
        assert order_joins([], {"x"}) == []

    def test_free_relations_any_order(self):
        parts = [
            JoinPart.make("a", {"x"}, [set()]),
            JoinPart.make("b", {"y"}, [set()]),
        ]
        assert order_joins(parts, set()) is not None

    def test_chain_dependency(self):
        parts = [
            JoinPart.make("c", {"z", "w"}, [{"z"}]),
            JoinPart.make("b", {"y", "z"}, [{"y"}]),
            JoinPart.make("a", {"x", "y"}, [{"x"}]),
        ]
        order = order_joins(parts, {"x"})
        assert [parts[i].name for i in order] == ["a", "b", "c"]

    def test_multiple_binding_sets_per_relation(self):
        parts = [
            JoinPart.make("r", {"a", "b"}, [{"a"}, {"b"}]),
        ]
        assert order_joins(parts, {"b"}) == [0]

    def test_larger_instance_terminates(self):
        # A 12-relation chain exercises the memoized search.
        parts = [
            JoinPart.make("r%d" % i, {"a%d" % i, "a%d" % (i + 1)}, [{"a%d" % i}])
            for i in range(12)
        ]
        order = order_joins(parts, {"a0"})
        assert order == list(range(12))

    @given(
        st.lists(
            st.tuples(
                st.frozensets(st.sampled_from("abcdef"), min_size=1, max_size=3),
                st.frozensets(st.sampled_from("abcdef"), max_size=2),
            ),
            max_size=5,
        ),
        st.frozensets(st.sampled_from("abcdef"), max_size=3),
    )
    def test_returned_order_is_always_valid(self, specs, initially_bound):
        parts = [
            JoinPart.make("r%d" % i, schema | mandatory, [mandatory])
            for i, (schema, mandatory) in enumerate(specs)
        ]
        order = order_joins(parts, initially_bound)
        if order is None:
            return
        bound = set(initially_bound)
        for index in order:
            assert feasible(parts[index].bindings, bound)
            bound |= parts[index].schema
