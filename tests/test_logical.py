"""Tests for the logical layer: standardization + Table 2 views."""

import pytest

from repro.logical.standardize import (
    edit_distance,
    fuzzy_match,
    parse_money,
    to_int,
    to_percent,
    to_usd,
)


class TestMoney:
    def test_usd_with_commas(self):
        assert parse_money("$12,500") == (12500.0, "USD")

    def test_cad_prefix(self):
        assert parse_money("CAD 18,500") == (18500.0, "CAD")

    def test_bare_number(self):
        assert parse_money("4800") == (4800.0, "USD")

    def test_numeric_input(self):
        assert parse_money(4800) == (4800.0, "USD")

    def test_garbage_is_none(self):
        assert parse_money("call for price") is None
        assert parse_money(None) is None

    def test_to_usd_identity(self):
        assert to_usd("$4,800") == 4800

    def test_to_usd_converts_cad(self):
        assert to_usd("CAD 14,800") == 10000
        assert to_usd("CAD 1,480") == 1000

    def test_to_usd_garbage_is_none(self):
        assert to_usd("n/a") is None


class TestCasts:
    def test_to_int(self):
        assert to_int("1995") == 1995
        assert to_int(" 1995 ") == 1995
        assert to_int(1995) == 1995
        assert to_int("new") is None
        assert to_int(None) is None

    def test_to_percent(self):
        assert to_percent("7.25%") == 7.25
        assert to_percent("7.25") == 7.25
        assert to_percent(7.25) == 7.25
        assert to_percent("n/a") is None
        assert to_percent(None) is None


class TestFuzzy:
    def test_edit_distance(self):
        assert edit_distance("", "") == 0
        assert edit_distance("abc", "abc") == 0
        assert edit_distance("abc", "abd") == 1
        assert edit_distance("abc", "") == 3
        assert edit_distance("kitten", "sitting") == 3

    def test_exact_match_wins(self):
        assert fuzzy_match("make", ["make", "model"]) == "make"

    def test_substring_containment(self):
        assert fuzzy_match("zip", ["zip_code", "make"]) == "zip_code"

    def test_small_typo_matches(self):
        assert fuzzy_match("modle", ["model", "make"]) == "model"

    def test_distant_names_do_not_match(self):
        assert fuzzy_match("wheelbase", ["make", "rate"]) is None


class TestLogicalSchema:
    def test_relation_names(self, webbase):
        assert webbase.logical.relation_names == [
            "all_ads",
            "blue_price",
            "classifieds",
            "dealers",
            "interest",
            "reliability",
        ]

    def test_duplicate_definition_rejected(self, webbase):
        from repro.relational.algebra import Base

        with pytest.raises(ValueError):
            webbase.logical.define("classifieds", Base("newsday"))

    def test_classifieds_schema_is_site_independent(self, webbase):
        schema = webbase.logical.relation("classifieds").schema
        assert set(schema.attrs) == {"make", "model", "year", "price", "contact", "features"}

    def test_all_attributes_universe(self, webbase):
        attrs = webbase.logical.all_attributes()
        assert "make" in attrs and "bb_price" in attrs and "rate" in attrs
        assert "manufacturer" not in attrs  # standardized away

    def test_resolve_attribute_fuzzy(self, webbase):
        assert webbase.logical.resolve_attribute("make") == "make"
        assert webbase.logical.resolve_attribute("zip_code") == "zip"
        with pytest.raises(KeyError):
            webbase.logical.resolve_attribute("astrology")

    def test_relations_with_attribute(self, webbase):
        assert webbase.logical.relations_with_attribute("safety") == ["reliability"]
        assert "classifieds" in webbase.logical.relations_with_attribute("price")


class TestClassifieds:
    def test_union_of_both_newspapers(self, webbase, world):
        result = webbase.fetch_logical("classifieds", {"make": "ford", "model": "escort"})
        expected = len(
            world.dataset.ads_for("www.newsday.com", make="ford", model="escort")
        ) + len(world.dataset.ads_for("www.nytimes.com", make="ford", model="escort"))
        assert len(result) == expected

    def test_values_are_typed(self, webbase):
        row = webbase.fetch_logical("classifieds", {"make": "saab"}).to_dicts()[0]
        assert isinstance(row["year"], int)
        assert isinstance(row["price"], int)

    def test_newsday_branch_carries_features_via_detail_join(self, webbase, world):
        result = webbase.fetch_logical("classifieds", {"make": "saab"})
        features = {d["features"] for d in result.to_dicts()}
        assert all(f for f in features)  # every tuple got its features

    def test_ground_truth_prices(self, webbase, world):
        result = webbase.fetch_logical("classifieds", {"make": "jaguar"})
        expected_prices = {
            ad.price
            for host in ("www.newsday.com", "www.nytimes.com")
            for ad in world.dataset.ads_for(host, make="jaguar")
        }
        assert {d["price"] for d in result.to_dicts()} == expected_prices


class TestDealers:
    def test_union_and_rename(self, webbase, world):
        result = webbase.fetch_logical("dealers", {"make": "ford", "model": "escort"})
        expected = len(
            world.dataset.ads_for("www.carpoint.com", make="ford", model="escort")
        ) + len(world.dataset.ads_for("www.autoweb.com", make="ford", model="escort"))
        assert len(result) == expected
        assert "zip" in result.schema and "contact" in result.schema


class TestConversions:
    def test_wwwheels_cad_converted_in_all_ads(self, webbase, world):
        result = webbase.fetch_logical("all_ads", {"make": "ford", "model": "escort"})
        wheels_ads = world.dataset.ads_for("www.wwwheels.com", make="ford", model="escort")
        prices = {d["price"] for d in result.to_dicts()}
        # CAD-displayed prices come back as (approximately) the USD amounts.
        for ad in wheels_ads:
            assert any(abs(p - ad.price) <= ad.price * 0.01 + 10 for p in prices)

    def test_interest_rates_typed(self, webbase):
        result = webbase.fetch_logical("interest", {"zip": "10001"})
        rows = result.to_dicts()
        assert {r["duration"] for r in rows} == {24, 36, 48, 60}
        assert all(isinstance(r["rate"], float) for r in rows)

    def test_blue_price_typed_and_filtered(self, webbase, world):
        result = webbase.fetch_logical(
            "blue_price", {"make": "jaguar", "model": "xj6", "condition": "good"}
        )
        rows = result.to_dicts()
        assert len(rows) == 10
        from repro.sites.dataset import Car

        for row in rows:
            entry = world.dataset.bluebook_price(Car("jaguar", "xj6", row["year"]), "good")
            assert row["bb_price"] == entry.bb_price

    def test_reliability_matches_dataset(self, webbase, world):
        result = webbase.fetch_logical("reliability", {"make": "bmw"})
        from repro.sites.dataset import Car

        for row in result.to_dicts():
            rating = world.dataset.safety_of(Car("bmw", row["model"], row["year"]))
            assert row["safety"] == rating.safety


class TestBindingEnforcement:
    def test_classifieds_requires_make(self, webbase):
        from repro.relational.bindings import BindingError
        from repro.vps.handle import HandleError

        with pytest.raises((BindingError, HandleError)):
            webbase.fetch_logical("classifieds", {})
