"""Staleness-aware cross-query caching: TTLs, revision stamps, quarantine.

The contract under test: a TTL/invalidation-enabled cache over a *churning*
simulated Web answers every query byte-identically to a cold (no-op policy)
evaluation, provided maintenance sweeps run after mutations — and when the
policy chooses to serve quarantined entries, they are always explicitly
flagged stale, never passed off as fresh.
"""

from __future__ import annotations

import random

import pytest

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.sites.world import build_world, mutate_site_listings
from repro.vps.cache import CachePolicy, ResultCache

MUTABLE_HOSTS = ["www.newsday.com", "www.autoweb.com"]
RELATION_OF = {"www.newsday.com": "newsday", "www.autoweb.com": "autoweb"}
QUERIES = [
    ("newsday", {"make": "ford", "model": "escort"}),
    ("newsday", {"make": "jaguar"}),
    ("autoweb", {"make": "ford", "model": "escort"}),
    ("autoweb", {"make": "saab"}),
]


def _pair_over_shared_world():
    """A caching webbase and a cold (no-op policy) webbase on ONE world, so
    both see the same site churn; the cold one is the ground truth."""
    world = build_world()
    cached = WebBase(world, WebBaseConfig(cache=CachePolicy.lru()))
    cold = WebBase(world, WebBaseConfig(cache=CachePolicy.noop()))
    return world, cached, cold


class TestSeededChurnProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cached_equals_cold_under_any_mutation_schedule(self, seed):
        """Property: for a seeded interleaving of site mutations (auto and
        manual structural changes plus new listings) and queries, with a
        maintenance sweep after each mutation, every cached answer is
        byte-identical to the cold evaluation."""
        world, cached, cold = _pair_over_shared_world()
        rng = random.Random(seed)
        mutations = 0
        comparisons = 0
        for step in range(12):
            action = rng.random()
            if action < 0.3:
                host = rng.choice(MUTABLE_HOSTS)
                change = "auto" if rng.random() < 0.7 else "manual"
                mutate_site_listings(
                    world, host, count=rng.randint(1, 3), seed=step, change=change
                )
                cached.run_maintenance()
                mutations += 1
                continue
            relation, given = rng.choice(QUERIES)
            warm = cached.fetch_vps(relation, dict(given))
            fresh = cold.fetch_vps(relation, dict(given))
            assert warm == fresh, (
                "seed %d step %d: cached answer diverged from cold for %s %r"
                % (seed, step, relation, given)
            )
            comparisons += 1
        assert comparisons > 0
        # The cache must actually have been exercised, not bypassed.
        assert cached.cache.stats["misses"] > 0

    def test_mutation_without_maintenance_is_the_hazard(self):
        """Negative control: skip the maintenance sweep and the warm cache
        *does* serve the pre-change answer — the exact silent-staleness
        hazard the revision machinery exists to close."""
        world, cached, cold = _pair_over_shared_world()
        relation, given = "newsday", {"make": "ford", "model": "escort"}
        cached.fetch_vps(relation, dict(given))
        mutate_site_listings(world, "www.newsday.com", change="auto")
        stale = cached.fetch_vps(relation, dict(given))
        fresh = cold.fetch_vps(relation, dict(given))
        assert stale != fresh  # the hazard, pinned
        cached.run_maintenance()
        assert cached.fetch_vps(relation, dict(given)) == fresh  # and its fix


class TestRevisionInvalidation:
    def test_auto_change_bumps_revision_and_evicts_host_only(self):
        world, cached, _ = _pair_over_shared_world()
        cached.fetch_vps("newsday", {"make": "saab"})
        cached.fetch_vps("autoweb", {"make": "saab"})
        assert cached.cache.stats["entries"] == 2
        mutate_site_listings(world, "www.newsday.com", change="auto")
        reports = cached.run_maintenance()
        assert "www.newsday.com" in reports
        assert cached.cache.revision("www.newsday.com") == 1
        assert cached.cache.revision("www.autoweb.com") == 0
        # Only the mutated host's entry went; the other still serves hits.
        assert cached.cache.stats["entries"] == 1
        assert cached.cache.stats["invalidations"] == 1
        before = cached.cache.stats["hits"]
        cached.fetch_vps("autoweb", {"make": "saab"})
        assert cached.cache.stats["hits"] == before + 1

    def test_no_stale_serve_after_auto_absorption(self):
        """After an auto-absorbed change, the next fetch of the affected
        relation is a recorded miss (live refetch) — a stale entry is never
        served, flagged or otherwise, because it no longer exists."""
        world, cached, cold = _pair_over_shared_world()
        cached.fetch_vps("newsday", {"make": "ford", "model": "escort"})
        mutate_site_listings(world, "www.newsday.com", change="auto")
        cached.run_maintenance()
        ctx = cached.execution_context()
        refreshed = cached.fetch_vps(
            "newsday", {"make": "ford", "model": "escort"}, context=ctx
        )
        spans = ctx.root.spans("fetch")
        assert [s.cache for s in spans] == ["miss"]
        assert cached.cache.stats["stale_serves"] == 0
        assert refreshed == cold.fetch_vps("newsday", {"make": "ford", "model": "escort"})

    def test_second_sweep_after_absorption_is_clean(self):
        world, cached, _ = _pair_over_shared_world()
        mutate_site_listings(world, "www.newsday.com", change="auto")
        assert cached.run_maintenance()
        assert cached.run_maintenance() == {}  # change absorbed into the map


class TestQuarantine:
    def test_manual_change_quarantines_and_refetch_mode_bypasses(self):
        world, cached, cold = _pair_over_shared_world()
        given = {"make": "ford", "model": "escort"}
        cached.fetch_vps("newsday", dict(given))
        mutate_site_listings(world, "www.newsday.com", change="manual", count=1)
        cached.run_maintenance()
        assert cached.cache.quarantined_hosts() == frozenset({"www.newsday.com"})
        # refetch mode: the cache steps aside; whatever the (possibly
        # broken) live flow returns, it matches the cold evaluation.
        warm = cached.fetch_vps("newsday", dict(given))
        assert warm == cold.fetch_vps("newsday", dict(given))
        assert cached.cache.metrics.value("cache.quarantine_bypass") >= 1
        assert cached.cache.stats["stale_serves"] == 0

    def test_serve_stale_mode_flags_every_quarantined_serve(self):
        world = build_world()
        cached = WebBase(
            world, WebBaseConfig(cache=CachePolicy.lru(stale_mode="serve_stale"))
        )
        given = {"make": "ford", "model": "escort"}
        warm = cached.fetch_vps("newsday", dict(given))
        mutate_site_listings(world, "www.newsday.com", change="manual", count=1)
        cached.run_maintenance()
        ctx = cached.execution_context()
        served = cached.fetch_vps("newsday", dict(given), context=ctx)
        assert served == warm  # the pre-change answer ...
        spans = ctx.root.spans("fetch")
        assert [s.cache for s in spans] == ["stale"]  # ... explicitly flagged
        assert cached.cache.stats["stale_serves"] == 1

    def test_clear_quarantine_evicts_and_recovers(self):
        world = build_world()
        cached = WebBase(
            world, WebBaseConfig(cache=CachePolicy.lru(stale_mode="serve_stale"))
        )
        given = {"make": "saab"}
        cached.fetch_vps("newsday", dict(given))
        mutate_site_listings(world, "www.newsday.com", change="manual", count=1)
        cached.run_maintenance()
        removed = cached.cache.clear_quarantine("www.newsday.com")
        assert removed == 1
        assert cached.cache.quarantined_hosts() == frozenset()


class TestTtl:
    def _cache_with_clock(self, webbase, policy):
        now = [0.0]
        cache = ResultCache(webbase.vps, policy, clock=lambda: now[0])
        return cache, now

    def test_entries_expire_after_default_ttl(self, webbase):
        cache, now = self._cache_with_clock(webbase, CachePolicy.lru(ttl_seconds=30.0))
        cache.fetch("newsday", {"make": "saab"})
        now[0] = 29.9
        cache.fetch("newsday", {"make": "saab"})
        assert cache.stats["hits"] == 1
        now[0] = 30.0
        cache.fetch("newsday", {"make": "saab"})
        assert cache.stats["misses"] == 2
        assert cache.stats["expirations"] == 1

    def test_per_relation_ttl_overrides_default(self, webbase):
        cache, now = self._cache_with_clock(
            webbase,
            CachePolicy.lru(ttl_seconds=1000.0, relation_ttls={"newsday": 5.0}),
        )
        cache.fetch("newsday", {"make": "saab"})
        cache.fetch("autoweb", {"make": "saab"})
        now[0] = 10.0
        cache.fetch("newsday", {"make": "saab"})  # over its 5s override
        cache.fetch("autoweb", {"make": "saab"})  # well inside the default
        assert cache.stats["expirations"] == 1
        assert cache.stats["hits"] == 1
        assert cache.stats["misses"] == 3

    def test_no_ttl_never_expires(self, webbase):
        cache, now = self._cache_with_clock(webbase, CachePolicy.lru())
        cache.fetch("newsday", {"make": "saab"})
        now[0] = 10.0**9
        cache.fetch("newsday", {"make": "saab"})
        assert cache.stats == dict(cache.stats, hits=1, expirations=0)


class TestSingleFlight:
    def test_concurrent_misses_coalesce_into_one_fetch(self):
        """Two (here: six) workers missing on the same (relation, bindings)
        key must produce exactly one upstream fetch."""
        webbase = WebBase.create(WebBaseConfig(cache=CachePolicy.lru()))
        server = webbase.world.server
        pages_before = sum(s.pages_ok for s in server.stats.values())
        ctx = webbase.execution_context(max_workers=6)
        results = ctx.map(
            lambda _: webbase.cache.fetch("newsday", {"make": "saab"}, context=ctx),
            range(6),
        )
        assert all(r == results[0] for r in results)
        assert ctx.fetches == 1  # one engine fetch, ever
        assert webbase.cache.stats["misses"] == 1
        # Every non-leader counts a hit (a parked waiter counts in
        # ``coalesced`` *as well* — how many park is a timing accident).
        assert webbase.cache.stats["hits"] == 5
        assert webbase.cache.stats["coalesced"] <= 5
        # The live site only paid for one flow's worth of pages.
        pages_spent = sum(s.pages_ok for s in server.stats.values()) - pages_before
        assert pages_spent == ctx.pages_by_host["www.newsday.com"]

    def test_per_context_dedup_without_cross_query_cache(self):
        """The engine context coalesces too, even with the no-op policy."""
        webbase = WebBase.create()  # cache disabled
        ctx = webbase.execution_context(max_workers=4)
        results = ctx.map(
            lambda _: webbase.fetch_vps("newsday", {"make": "honda"}, context=ctx),
            range(4),
        )
        assert all(r == results[0] for r in results)
        assert ctx.fetches == 1
        spans = ctx.root.spans("fetch")
        assert sum(1 for s in spans if s.cache == "miss") == 1
        assert sum(1 for s in spans if s.cache == "hit") == len(spans) - 1
