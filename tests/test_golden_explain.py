"""Golden EXPLAIN snapshot for the flagship Jaguar query.

Pins the full rendered EXPLAIN — chosen join orders, search strategy,
per-node modes, estimated fetch counts and the measured actuals — for the
paper's flagship query.  Everything in the render is deterministic under a
single worker lane (estimates are pure arithmetic over the static
statistics; actuals are fixed by the simulated world's seed), so any cost
model retuning, plan change, or fetch-count drift shows up as a readable
text diff.  To accept an intentional change::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_explain.py
"""

from __future__ import annotations

import difflib
import os
import pathlib

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase

GOLDEN = pathlib.Path(__file__).parent / "golden" / "jaguar_explain.txt"

# Same flagship query tests/test_golden_trace.py pins the trace skeleton for.
JAGUAR_QUERY = (
    "SELECT make, model, year, price, bb_price, safety, contact "
    "WHERE make = 'jaguar' AND year >= 1993 AND condition = 'good' "
    "AND safety IN ('good', 'excellent') AND price < bb_price"
)


def _current_render() -> str:
    webbase = WebBase.create(WebBaseConfig(max_workers=1))
    return webbase.explain(JAGUAR_QUERY).render().rstrip("\n") + "\n"


def test_jaguar_explain_matches_golden():
    actual = _current_render()
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN.write_text(actual)
    expected = GOLDEN.read_text()
    if actual != expected:
        diff = "".join(
            difflib.unified_diff(
                expected.splitlines(keepends=True),
                actual.splitlines(keepends=True),
                fromfile="tests/golden/jaguar_explain.txt",
                tofile="current explain render",
            )
        )
        raise AssertionError(
            "Jaguar EXPLAIN drifted from the golden snapshot.\n"
            "If intentional, regenerate with UPDATE_GOLDEN=1.\n\n" + diff
        )


def test_explain_render_is_deterministic():
    assert _current_render() == _current_render()
