"""Wall-clock deadlines and cancellation in the execution engine.

The per-attempt ``timeout_seconds`` bounds *simulated* network seconds;
``deadline_seconds`` bounds the *real* elapsed time a serving client
waits.  The contract: the deadline is checked before every fetch (and
re-checked when a single-flight waiter is promoted to leader) and between
retries, expiry raises a structured :class:`DeadlineExceeded` naming the
stage it died at, records a ``deadline`` trace span, bumps the
``engine.deadline_exceeded`` counter, and cancels the whole context so
sibling fan-out workers stop instead of finishing into the void.
"""

from __future__ import annotations

import pytest

from repro.core.execution import (
    DeadlineExceeded,
    ExecutionContext,
    RetryPolicy,
    WebBaseConfig,
)
from repro.core.webbase import WebBase
from repro.web.server import FaultPlan

QUERY = "SELECT make, model, price WHERE make = 'saab'"


class SteppingClock:
    """A wall clock that jumps ``step`` seconds every time it is read."""

    def __init__(self, step: float) -> None:
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestDeadlineExpiry:
    def test_zero_deadline_fails_before_the_first_fetch(self):
        webbase = WebBase.create(WebBaseConfig())
        ctx = webbase.execution_context(deadline_seconds=0.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            webbase.query(QUERY, context=ctx)
        exc = excinfo.value
        assert exc.stage.startswith("fetch:")
        assert exc.deadline_seconds == 0.0
        assert "deadline of 0.000s exceeded" in str(exc)
        assert ctx.cancelled
        # The expiry is visible in the structured trace and the metrics.
        assert ctx.root.spans("deadline"), "expiry must be recorded as a trace span"
        assert webbase.metrics.value("engine.deadline_exceeded") >= 1

    def test_no_fetch_happens_after_expiry(self):
        webbase = WebBase.create(WebBaseConfig())
        ctx = webbase.execution_context(deadline_seconds=0.0)
        with pytest.raises(DeadlineExceeded):
            webbase.query(QUERY, context=ctx)
        assert ctx.fetches == 0

    def test_deadline_checked_between_retries(self):
        """A query dying mid-retry stops burning its retry budget: with every
        request failing transiently, a stepping clock expires the deadline at
        the between-retries check, and the error names the ``retry:`` stage."""
        webbase = WebBase.create(
            WebBaseConfig(faults=FaultPlan(error_rate=1.0))
        )
        clock = SteppingClock(step=0.3)
        # Clock reads: 0.3 at construction (deadline_at = 0.8), 0.6 at the
        # pre-fetch check (passes), 0.9 at the before-retry check (expires).
        ctx = ExecutionContext(
            webbase.pool,
            retry=RetryPolicy(max_attempts=3),
            metrics=webbase.metrics,
            deadline_seconds=0.5,
            wall_clock=clock,
        )
        relation = webbase.vps.relations["newsday"]
        with pytest.raises(DeadlineExceeded) as excinfo:
            ctx.run_fetch(relation, {"make": "saab"}).result()
        assert excinfo.value.stage == "retry:newsday"
        assert ctx.cancelled

    def test_remaining_seconds_counts_down(self):
        clock = SteppingClock(step=1.0)
        webbase = WebBase.create(WebBaseConfig())
        ctx = ExecutionContext(
            webbase.pool, deadline_seconds=10.0, wall_clock=clock
        )
        remaining = ctx.deadline_remaining_seconds
        assert remaining is not None and remaining < 10.0

    def test_no_deadline_means_no_limit(self, webbase):
        ctx = webbase.execution_context()
        assert ctx.deadline_remaining_seconds is None
        ctx.check_deadline("anywhere")  # must not raise
        result = webbase.query(QUERY, context=ctx)
        assert len(result) > 0


class TestCancellation:
    def test_cancel_aborts_the_query(self):
        webbase = WebBase.create(WebBaseConfig())
        ctx = webbase.execution_context()
        ctx.cancel()
        with pytest.raises(DeadlineExceeded) as excinfo:
            webbase.query(QUERY, context=ctx)
        exc = excinfo.value
        assert exc.deadline_seconds is None
        assert "cancelled at" in str(exc)
        assert ctx.fetches == 0

    def test_expiry_cancels_siblings(self):
        """Once one worker hits the deadline the context is cancelled, so
        the aggregate error is the deadline itself — never a fan-out wrapper
        around it."""
        webbase = WebBase.create(WebBaseConfig())
        ctx = webbase.execution_context(deadline_seconds=0.0)
        with pytest.raises(DeadlineExceeded):
            webbase.query(QUERY, context=ctx)


class TestCliDeadline:
    def test_query_deadline_flag_reports_structured_expiry(self, capsys):
        from repro.cli import main

        rc = main(["query", QUERY, "--deadline-ms", "0"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "deadline exceeded" in out
        assert "stage=" in out
