"""Cross-cutting property-based tests on core invariants.

These complement the per-module suites with generative checks of the
system's load-bearing properties: wrapper induction generalizes from any
example row, the Transaction Logic engine is atomic and isolated, and the
HTML pipeline preserves structure under every render style.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.flogic.engine import Engine
from repro.flogic.formulas import Pred, Program
from repro.flogic.syntax import parse_formula, parse_rules
from repro.navigation.extract import induce_wrapper
from repro.web.html import RenderStyle, el, page
from repro.web.htmlparser import parse_html
from repro.web.http import Url
from repro.web.page import parse_page


# -- wrapper induction over generated tables ---------------------------------------

# The HTML pipeline normalizes whitespace, so generated cells/headers are
# whitespace-normalized up front (what a page author effectively writes).
_cell = st.text(
    alphabet=string.ascii_letters + string.digits + " .,$-",
    min_size=1,
    max_size=12,
).map(lambda s: " ".join(s.split())).filter(bool)

_header = st.text(alphabet=string.ascii_letters + " ", min_size=1, max_size=10).map(
    lambda s: " ".join(s.split())
).filter(lambda s: s and s.replace(" ", ""))


@st.composite
def _tables(draw):
    n_cols = draw(st.integers(1, 5))
    headers = draw(
        st.lists(_header, min_size=n_cols, max_size=n_cols, unique_by=lambda h: h.lower().replace(" ", "_"))
    )
    n_rows = draw(st.integers(1, 6))
    rows = [
        draw(st.lists(_cell, min_size=n_cols, max_size=n_cols))
        for _ in range(n_rows)
    ]
    example_row = draw(st.integers(0, n_rows - 1))
    return headers, rows, example_row


class TestWrapperInductionProperties:
    @settings(max_examples=60, deadline=None)
    @given(_tables(), st.sampled_from([RenderStyle.clean(), RenderStyle.sloppy()]))
    def test_induced_wrapper_recovers_every_row(self, table, style):
        headers, rows, example_index = table
        doc = page(
            "Listings",
            el(
                "table",
                el("tr", *[el("th", h) for h in headers]),
                *[el("tr", *[el("td", c) for c in row]) for row in rows],
            ),
        )
        parsed = parse_page(Url("h.com", "/r"), doc.render(style))
        example_row = rows[example_index]
        # Skip degenerate examples whose values collide ambiguously with
        # other columns of the same row (induction may pick either column).
        if len(set(example_row)) != len(example_row):
            return
        attrs = ["a%d" % i for i in range(len(headers))]
        example = dict(zip(attrs, example_row))
        wrapper = induce_wrapper(parsed, example)
        extracted = wrapper.extract(parsed)
        assert len(extracted) == len(rows)
        for attr_row, row in zip(extracted, rows):
            assert set(attr_row.values()) <= set(row) | {""}
        # The example row itself is recovered exactly.
        assert any(
            all(r.get(a) == v for a, v in example.items()) for r in extracted
        )


# -- Transaction Logic engine properties ----------------------------------------------


_updates = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 3)), min_size=1, max_size=4
)


class TestTransactionProperties:
    @settings(max_examples=40, deadline=None)
    @given(_updates)
    def test_failed_transactions_are_atomic(self, updates):
        """ins* followed by fail leaves the committed store untouched."""
        body = " * ".join("ins_attr(o, %s, %d)" % (attr, value) for attr, value in updates)
        engine = Engine(parse_rules("t <- %s * fail." % body))
        assert engine.run(parse_formula("t")) is None
        assert engine.store.fact_count == 0

    @settings(max_examples=40, deadline=None)
    @given(_updates)
    def test_successful_transactions_commit_everything(self, updates):
        body = " * ".join("ins_attr(o, %s, %d)" % (attr, value) for attr, value in updates)
        engine = Engine(parse_rules("t <- %s." % body))
        state = engine.run(parse_formula("t"))
        assert state is not None
        assert state.attr_fact_count == len({(u[0], u[1]) for u in updates})

    @settings(max_examples=40, deadline=None)
    @given(_updates, _updates)
    def test_choice_isolation(self, left, right):
        """Only the chosen branch's updates survive."""
        left_body = " * ".join("ins_attr(l, %s, %d)" % u for u in left)
        right_body = " * ".join("ins_attr(r, %s, %d)" % u for u in right)
        engine = Engine(
            parse_rules("t <- (%s * fail) ; (%s)." % (left_body, right_body))
        )
        state = engine.run(parse_formula("t"))
        assert state is not None
        assert not state.describe("l")
        assert state.describe("r")

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=5, unique=True))
    def test_findall_collects_all_solutions(self, values):
        facts = " ".join("p(%d)." % v for v in values)
        engine = Engine(parse_rules(facts))
        from repro.flogic.terms import Var

        results = engine.ask(parse_formula("findall(X, p(X), L) * eq(L, Out)"), [Var("Out")])
        assert len(results) == 1
        assert sorted(results[0]["Out"]) == sorted(values)


# -- HTML pipeline structure preservation ----------------------------------------------

_texts = st.text(
    alphabet=string.ascii_letters + string.digits + " ", min_size=1, max_size=10
).map(str.strip).filter(bool)


@st.composite
def _element_trees(draw, depth=2):
    if depth == 0:
        return el("span", draw(_texts))
    children = draw(
        st.lists(
            st.one_of(
                _texts.map(lambda t: el("span", t)),
                _element_trees(depth=depth - 1),
            ),
            min_size=1,
            max_size=3,
        )
    )
    tag = draw(st.sampled_from(["div", "p", "b", "li"]))
    return el(tag, *children)


def _text_leaves(dom) -> str:
    return dom.text()


class TestHtmlPipelineProperties:
    @settings(max_examples=60, deadline=None)
    @given(_element_trees())
    def test_all_styles_preserve_text_content(self, tree):
        doc = page("T", tree)
        texts = set()
        for style in (
            RenderStyle.clean(),
            RenderStyle.sloppy(),
            RenderStyle(uppercase_tags=True),
            RenderStyle(omit_optional_end_tags=True),
            RenderStyle(unquoted_attributes=True),
        ):
            dom = parse_html(doc.render(style))
            texts.add(dom.text())
        assert len(texts) == 1

    @settings(max_examples=60, deadline=None)
    @given(_element_trees())
    def test_clean_parse_preserves_element_count(self, tree):
        doc = page("T", tree)
        dom = parse_html(doc.render(RenderStyle.clean()))

        def count(node) -> int:
            return 1 + sum(count(c) for c in node.children if not isinstance(c, str))

        rendered_count = count(tree)
        parsed_spans = len(
            [n for n in dom.iter_nodes() if n.tag in ("div", "p", "b", "li", "span")]
        )
        assert parsed_spans == rendered_count
