"""Unit and property tests for terms, substitutions and unification."""

from hypothesis import given, strategies as st

from repro.flogic.terms import (
    Struct,
    Var,
    is_ground,
    rename_term,
    resolve,
    unify,
    variables_of,
    walk,
)


X, Y, Z = Var("X"), Var("Y"), Var("Z")


class TestWalkResolve:
    def test_walk_follows_chains(self):
        subst = {X: Y, Y: "a"}
        assert walk(X, subst) == "a"

    def test_walk_stops_at_free_var(self):
        assert walk(X, {}) == X

    def test_resolve_descends_structs(self):
        subst = {X: "a"}
        assert resolve(Struct("f", (X, "b")), subst) == Struct("f", ("a", "b"))

    def test_resolve_descends_tuples(self):
        subst = {X: 1}
        assert resolve((X, (X, "b")), subst) == (1, (1, "b"))


class TestUnify:
    def test_constants_equal(self):
        assert unify("a", "a") == {}

    def test_constants_unequal(self):
        assert unify("a", "b") is None

    def test_numbers(self):
        assert unify(1, 1) == {}
        assert unify(1, 2) is None

    def test_var_binds_constant(self):
        assert unify(X, "a") == {X: "a"}

    def test_var_binds_var(self):
        subst = unify(X, Y)
        assert subst in ({X: Y}, {Y: X})

    def test_struct_decomposition(self):
        subst = unify(Struct("f", (X, "b")), Struct("f", ("a", Y)))
        assert resolve(X, subst) == "a"
        assert resolve(Y, subst) == "b"

    def test_struct_functor_mismatch(self):
        assert unify(Struct("f", ("a",)), Struct("g", ("a",))) is None

    def test_struct_arity_mismatch(self):
        assert unify(Struct("f", ("a",)), Struct("f", ("a", "b"))) is None

    def test_tuples_unify_elementwise(self):
        subst = unify((X, "b"), ("a", Y))
        assert resolve(X, subst) == "a" and resolve(Y, subst) == "b"

    def test_tuple_length_mismatch(self):
        assert unify((X,), ("a", "b")) is None

    def test_occurs_check(self):
        assert unify(X, Struct("f", (X,))) is None

    def test_occurs_check_in_tuple(self):
        assert unify(X, (X, "a")) is None

    def test_existing_bindings_respected(self):
        subst = unify(X, "a")
        assert unify(X, "b", subst) is None
        assert unify(X, "a", subst) == subst

    def test_input_substitution_not_mutated(self):
        base = {X: "a"}
        out = unify(Y, "b", base)
        assert base == {X: "a"}
        assert out == {X: "a", Y: "b"}

    def test_same_var_trivially_unifies(self):
        assert unify(X, X) == {}

    def test_opaque_constants_compare_by_equality(self):
        marker = object()
        assert unify(marker, marker) == {}
        assert unify(marker, object()) is None


class TestHelpers:
    def test_variables_of(self):
        term = Struct("f", (X, (Y, Struct("g", (Z,)))))
        assert variables_of(term) == {X, Y, Z}

    def test_rename_tags_all_vars(self):
        term = Struct("f", (X, (Y,)))
        renamed = rename_term(term, 5)
        assert variables_of(renamed) == {Var("X", 5), Var("Y", 5)}

    def test_rename_preserves_constants(self):
        assert rename_term(("a", 1), 3) == ("a", 1)

    def test_is_ground(self):
        assert is_ground(Struct("f", ("a",)))
        assert not is_ground(Struct("f", (X,)))
        assert is_ground(X, {X: "a"})


# -- property tests -------------------------------------------------------------

constants = st.one_of(st.integers(-5, 5), st.sampled_from(["a", "b", "c"]))
variables = st.sampled_from([X, Y, Z])


def terms(depth=2):
    if depth == 0:
        return st.one_of(constants, variables)
    sub = terms(depth - 1)
    return st.one_of(
        constants,
        variables,
        st.builds(lambda args: Struct("f", tuple(args)), st.lists(sub, min_size=1, max_size=3)),
        st.lists(sub, max_size=3).map(tuple),
    )


class TestProperties:
    @given(terms(), terms())
    def test_unify_is_symmetric_in_success(self, a, b):
        left = unify(a, b)
        right = unify(b, a)
        assert (left is None) == (right is None)

    @given(terms(), terms())
    def test_unifier_actually_unifies(self, a, b):
        subst = unify(a, b)
        if subst is not None:
            assert resolve(a, subst) == resolve(b, subst)

    @given(terms())
    def test_self_unification_always_succeeds(self, a):
        assert unify(a, a) is not None

    @given(terms())
    def test_resolve_idempotent(self, a):
        subst = unify(a, Struct("wrap", (X, Y, Z)))
        if subst is None:
            subst = {}
        once = resolve(a, subst)
        assert resolve(once, subst) == once

    @given(terms())
    def test_rename_is_injective_on_variables(self, a):
        renamed = rename_term(a, 9)
        assert len(variables_of(renamed)) == len(variables_of(a))
