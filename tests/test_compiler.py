"""Unit tests for compiling navigation maps into navigation expressions."""

import pytest

from repro.flogic.formulas import Choice, Pred, Serial
from repro.flogic.syntax import parse_rules
from repro.navigation.compiler import CompileError, compile_map
from repro.navigation.navmap import NavigationMap
from repro.core.sessions import map_kellys, map_newsday, map_nytimes, map_yahoocars


@pytest.fixture(scope="module")
def newsday_site(world_module):
    return compile_map(map_newsday(world_module).map)


@pytest.fixture(scope="module")
def world_module():
    from repro.sites.world import build_world

    return build_world()


class TestNewsdayProgram:
    """The compiled program must mirror Figure 4."""

    def test_two_relations(self, newsday_site):
        assert {r.name for r in newsday_site.relations} == {
            "newsday",
            "newsday_car_features",
        }

    def test_relation_rule_starts_at_entry(self, newsday_site):
        rules = newsday_site.program.rules_for(("newsday", 7))
        assert len(rules) == 1
        body = rules[0].body
        assert isinstance(body, Serial)
        assert body.parts[0].name == "nav_entry"
        assert body.parts[0].args[0] == "www.newsday.com"

    def test_form_submission_has_choice_of_targets(self, newsday_site):
        # form f1 leads to either the refinement page or a data page.
        choices = [
            part
            for rule in newsday_site.program.rules
            for part in (rule.body.parts if isinstance(rule.body, Serial) else [])
            if isinstance(part, Choice)
        ]
        assert choices, "expected a choice over f1's target nodes"

    def test_more_loop_is_recursive(self, newsday_site):
        data_rules = [
            rule
            for rule in newsday_site.program.rules
            if rule.head.name.startswith("newsday__")
            and isinstance(rule.body, Serial)
            and rule.body.parts[0].name == "nav_follow"
            and rule.body.parts[0].args[1] == "More"
        ]
        assert data_rules
        rule = data_rules[0]
        assert rule.body.parts[1].name == rule.head.name  # self-recursion

    def test_extraction_rule_uses_member(self, newsday_site):
        extract_rules = [
            rule
            for rule in newsday_site.program.rules
            if isinstance(rule.body, Serial) and rule.body.parts[0].name == "nav_extract"
        ]
        assert extract_rules
        assert all(r.body.parts[1].name == "member" for r in extract_rules)

    def test_program_round_trips_through_syntax(self, newsday_site):
        text = newsday_site.program.pretty()
        reparsed = parse_rules(text)
        assert reparsed.pretty() == text

    def test_handles(self, newsday_site):
        newsday = newsday_site.relation("newsday")
        assert [sorted(h.mandatory) for h in newsday.handles] == [["make"]]
        handle = newsday.handles[0]
        assert {"make", "model", "featrs"} <= set(handle.selection)
        assert handle.expression  # the pretty-printed navigation expression

    def test_detail_relation_handle(self, newsday_site):
        detail = newsday_site.relation("newsday_car_features")
        assert detail.kind == "detail"
        assert detail.url_attr == "url"
        assert [sorted(h.mandatory) for h in detail.handles] == [["url"]]
        assert detail.schema == ("url", "features", "picture")

    def test_detail_rule_starts_with_nav_get(self, newsday_site):
        rules = newsday_site.program.rules_for(("newsday_car_features", 3))
        assert rules[0].body.parts[0].name == "nav_get"

    def test_vector_is_outputs_then_inputs(self, newsday_site):
        newsday = newsday_site.relation("newsday")
        assert set(newsday.schema) <= set(newsday.vector)
        assert newsday.vector[: len(newsday.schema)] == newsday.schema
        assert "featrs" in newsday.vector and "featrs" not in newsday.schema


class TestOtherSites:
    def test_kellys_mandatory_set(self, world_module):
        site = compile_map(map_kellys(world_module).map)
        kellys = site.relation("kellys")
        assert [sorted(h.mandatory) for h in kellys.handles] == [
            ["condition", "make", "model"]
        ]

    def test_nytimes_single_form(self, world_module):
        site = compile_map(map_nytimes(world_module).map)
        nytimes = site.relation("nytimes")
        assert [sorted(h.mandatory) for h in nytimes.handles] == [["manufacturer"]]
        assert "model" in nytimes.handles[0].selection

    def test_yahoocars_labeled_extraction_compiles(self, world_module):
        site = compile_map(map_yahoocars(world_module).map)
        assert site.relation("yahoocars").schema == (
            "contact",
            "make",
            "model",
            "price",
            "year",
        )


class TestErrors:
    def test_empty_map_rejected(self):
        with pytest.raises(CompileError):
            compile_map(NavigationMap("h.com"))

    def test_map_without_data_pages_rejected(self, world_module):
        from repro.navigation.builder import MapBuilder
        from repro.web.browser import Browser

        browser = Browser(world_module.server)
        builder = MapBuilder("www.newsday.com")
        browser.subscribe(builder)
        browser.get("http://www.newsday.com/")
        with pytest.raises(CompileError):
            compile_map(builder.map)

    def test_duplicate_relation_names_rejected(self, world_module):
        builder = map_newsday(world_module)
        for node in builder.map.data_nodes():
            node.relation_name = "same"
        with pytest.raises(CompileError):
            compile_map(builder.map)
