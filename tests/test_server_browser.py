"""Unit tests for the simulated server, latency accounting, and browser."""

import pytest

from repro.web import html as H
from repro.web.browser import ActionEvent, Browser, BrowserObserver, NavigationError
from repro.web.clock import CpuTimer, LatencyModel, SimClock
from repro.web.http import Request, Url
from repro.web.server import HttpError, Site, WebServer


def _demo_server() -> WebServer:
    server = WebServer(latency=LatencyModel(rtt=0.5, per_kilobyte=0.0))
    site = Site("demo.com")
    site.route("/", lambda req: H.page("Home", H.bullet_links([("Search", "/search")])))
    site.route(
        "/search",
        lambda req: H.page(
            "Search",
            H.form("/results", H.labeled("Q", H.text_input("q")), H.submit_button(), method="get"),
        ),
    )
    site.route(
        "/results",
        lambda req: H.page("Results for %s" % req.params.get("q", ""), H.el("p", req.params.get("q", ""))),
    )
    server.add_site(site)
    return server


class TestClock:
    def test_latency_cost(self):
        model = LatencyModel(rtt=0.2, per_kilobyte=0.01)
        assert model.cost(2048) == pytest.approx(0.22)

    def test_simclock_accumulates(self):
        clock = SimClock()
        clock.charge(1.5)
        clock.charge(0.5)
        assert clock.network_seconds == 2.0

    def test_simclock_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().charge(-1)

    def test_simclock_reset(self):
        clock = SimClock()
        clock.charge(3.0)
        assert clock.reset() == 3.0
        assert clock.network_seconds == 0.0

    def test_cpu_timer_measures(self):
        timer = CpuTimer()
        with timer:
            sum(range(10000))
        assert timer.seconds >= 0.0

    def test_cpu_timer_requires_start(self):
        with pytest.raises(RuntimeError):
            CpuTimer().stop()


class TestServer:
    def test_routing(self):
        server = _demo_server()
        response = server.fetch(Request("GET", Url("demo.com", "/")))
        assert response.ok and "Home" in response.body

    def test_unknown_path_is_404(self):
        server = _demo_server()
        assert server.fetch(Request("GET", Url("demo.com", "/nope"))).status == 404

    def test_unknown_host_raises(self):
        server = _demo_server()
        with pytest.raises(HttpError):
            server.fetch(Request("GET", Url("other.com", "/")))

    def test_duplicate_host_rejected(self):
        server = _demo_server()
        with pytest.raises(ValueError):
            server.add_site(Site("demo.com"))

    def test_stats_recorded(self):
        server = _demo_server()
        server.fetch(Request("GET", Url("demo.com", "/")))
        server.fetch(Request("GET", Url("demo.com", "/nope")))
        stats = server.stats["demo.com"]
        assert stats.requests == 2
        assert stats.pages_ok == 1
        assert stats.bytes_sent > 0

    def test_reset_stats(self):
        server = _demo_server()
        server.fetch(Request("GET", Url("demo.com", "/")))
        server.reset_stats()
        assert server.stats["demo.com"].requests == 0

    def test_per_site_latency_override(self):
        server = _demo_server()
        assert server.latency_for("demo.com").rtt == 0.5
        server.site("demo.com").latency = LatencyModel(rtt=9.0)
        assert server.latency_for("demo.com").rtt == 9.0

    def test_site_url_helper(self):
        site = Site("demo.com")
        assert str(site.url("/a", x="1")) == "http://demo.com/a?x=1"
        assert str(site.entry_url) == "http://demo.com/"


class _Recorder(BrowserObserver):
    def __init__(self):
        self.pages = []
        self.actions = []

    def on_page(self, page):
        self.pages.append(page)

    def on_action(self, event: ActionEvent):
        self.actions.append(event)


class TestBrowser:
    def test_get_parses_page(self):
        browser = Browser(_demo_server())
        page = browser.get("http://demo.com/")
        assert page.title == "Home"

    def test_follow_named(self):
        browser = Browser(_demo_server())
        browser.get("http://demo.com/")
        page = browser.follow_named("Search")
        assert page.title == "Search"

    def test_submit(self):
        browser = Browser(_demo_server())
        browser.get("http://demo.com/search")
        page = browser.submit_by_attribute({"q": "jaguar"})
        assert "jaguar" in page.title

    def test_navigation_error_on_404(self):
        browser = Browser(_demo_server())
        with pytest.raises(NavigationError):
            browser.get("http://demo.com/missing")

    def test_navigation_error_on_unknown_host(self):
        browser = Browser(_demo_server())
        with pytest.raises(NavigationError):
            browser.get("http://missing.com/")

    def test_requires_page_for_follow(self):
        browser = Browser(_demo_server())
        with pytest.raises(NavigationError):
            browser.follow_named("Search")

    def test_history_and_page_counter(self):
        browser = Browser(_demo_server())
        browser.get("http://demo.com/")
        browser.follow_named("Search")
        assert browser.pages_fetched == 2
        assert len(browser.history) == 2

    def test_network_time_charged(self):
        browser = Browser(_demo_server())
        browser.get("http://demo.com/")
        assert browser.clock.network_seconds == pytest.approx(0.5)

    def test_observer_sees_pages_and_actions(self):
        browser = Browser(_demo_server())
        recorder = _Recorder()
        browser.subscribe(recorder)
        browser.get("http://demo.com/")
        browser.follow_named("Search")
        browser.submit_by_attribute({"q": "x"})
        assert len(recorder.pages) == 3
        assert [a.kind for a in recorder.actions] == ["follow", "submit"]
        submit = recorder.actions[1]
        assert submit.values == (("q", "x"),)
        assert submit.source.title == "Search"

    def test_unsubscribe(self):
        browser = Browser(_demo_server())
        recorder = _Recorder()
        browser.subscribe(recorder)
        browser.unsubscribe(recorder)
        browser.get("http://demo.com/")
        assert recorder.pages == []

    def test_get_form_submission_uses_query_params(self):
        browser = Browser(_demo_server())
        browser.get("http://demo.com/search")
        page = browser.submit_by_attribute({"q": "ford"})
        assert page.url.params == {"q": "ford"}
