"""Unit and property tests for schemas and relation operators."""

import pytest
from hypothesis import given, strategies as st

from repro.relational.relation import Relation
from repro.relational.schema import Schema, SchemaError


R = Relation(
    ["make", "model", "price"],
    [("ford", "escort", 4800), ("ford", "taurus", 9000), ("jaguar", "xj6", 21000)],
)
S = Relation(
    ["make", "model", "bb"],
    [("ford", "escort", 5000), ("jaguar", "xj6", 25000), ("honda", "civic", 8000)],
)


class TestSchema:
    def test_duplicate_attrs_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_equality_ignores_order(self):
        assert Schema(["a", "b"]) == Schema(["b", "a"])
        assert hash(Schema(["a", "b"])) == hash(Schema(["b", "a"]))

    def test_contains_and_index(self):
        schema = Schema(["a", "b"])
        assert "a" in schema and "c" not in schema
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("c")

    def test_common_and_union(self):
        a, b = Schema(["x", "y"]), Schema(["y", "z"])
        assert a.common(b) == {"y"}
        assert a.union(b).attrs == ("x", "y", "z")

    def test_project_validates(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).project(["b"])

    def test_rename_passthrough(self):
        assert Schema(["a", "b"]).rename({"a": "x"}).attrs == ("x", "b")


class TestRelationBasics:
    def test_rows_are_deduplicated(self):
        rel = Relation(["a"], [(1,), (1,), (2,)])
        assert len(rel) == 2

    def test_rows_sorted_deterministically(self):
        rel1 = Relation(["a"], [(2,), (1,)])
        rel2 = Relation(["a"], [(1,), (2,)])
        assert rel1.rows == rel2.rows

    def test_width_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(["a", "b"], [(1,)])

    def test_from_dicts(self):
        rel = Relation.from_dicts(["a", "b"], [{"a": 1, "b": 2}])
        assert rel.rows == ((1, 2),)

    def test_equality_modulo_column_order(self):
        left = Relation(["a", "b"], [(1, 2)])
        right = Relation(["b", "a"], [(2, 1)])
        assert left == right

    def test_to_dicts(self):
        assert Relation(["a"], [(1,)]).to_dicts() == [{"a": 1}]

    def test_heterogeneous_rows_sortable(self):
        rel = Relation(["a"], [(1,), ("x",), (2.5,), (None,)])
        assert len(rel) == 4

    def test_pretty_truncates(self):
        rel = Relation(["a"], [(i,) for i in range(30)])
        text = rel.pretty(limit=5)
        assert "more rows" in text


class TestOperators:
    def test_select(self):
        cheap = R.select(lambda row: row["price"] < 10000)
        assert len(cheap) == 2

    def test_project(self):
        makes = R.project(["make"])
        assert makes.rows == (("ford",), ("jaguar",))

    def test_rename(self):
        renamed = R.rename({"price": "asking"})
        assert "asking" in renamed.schema

    def test_derive_new_attribute(self):
        taxed = R.derive("taxed", lambda row: row["price"] * 2)
        assert taxed.schema.attrs[-1] == "taxed"
        assert all(d["taxed"] == d["price"] * 2 for d in taxed.to_dicts())

    def test_derive_replaces_attribute(self):
        doubled = R.derive("price", lambda row: row["price"] * 2)
        assert doubled.schema == R.schema
        assert {d["price"] for d in doubled.to_dicts()} == {9600, 18000, 42000}

    def test_union_requires_same_schema(self):
        with pytest.raises(SchemaError):
            R.union(S)

    def test_union_aligns_column_order(self):
        left = Relation(["a", "b"], [(1, 2)])
        right = Relation(["b", "a"], [(4, 3)])
        merged = left.union(right)
        assert set(merged.rows) == {(1, 2), (3, 4)}

    def test_intersect_and_difference(self):
        a = Relation(["x"], [(1,), (2,), (3,)])
        b = Relation(["x"], [(2,), (3,), (4,)])
        assert a.intersect(b).rows == ((2,), (3,))
        assert a.difference(b).rows == ((1,),)

    def test_natural_join(self):
        joined = R.natural_join(S)
        assert joined.schema.attrs == ("make", "model", "price", "bb")
        assert len(joined) == 2  # escort + xj6

    def test_natural_join_no_common_is_product(self):
        a = Relation(["x"], [(1,), (2,)])
        b = Relation(["y"], [("u",), ("v",)])
        assert len(a.natural_join(b)) == 4

    def test_distinct_values(self):
        assert R.distinct_values(["make"]) == [("ford",), ("jaguar",)]


# -- property tests: relational algebra laws -----------------------------------------

rows_strategy = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 3)), max_size=8
)


def _rel(rows, attrs=("k", "v")):
    return Relation(list(attrs), rows)


class TestAlgebraLaws:
    @given(rows_strategy, rows_strategy)
    def test_join_is_commutative(self, rows1, rows2):
        a = _rel(rows1, ("k", "v"))
        b = _rel(rows2, ("k", "w"))
        assert a.natural_join(b) == b.natural_join(a)

    @given(rows_strategy, rows_strategy)
    def test_union_is_commutative(self, rows1, rows2):
        a, b = _rel(rows1), _rel(rows2)
        assert a.union(b) == b.union(a)

    @given(rows_strategy)
    def test_union_is_idempotent(self, rows):
        a = _rel(rows)
        assert a.union(a) == a

    @given(rows_strategy, rows_strategy)
    def test_select_distributes_over_union(self, rows1, rows2):
        a, b = _rel(rows1), _rel(rows2)
        pred = lambda row: row["v"] > 1
        assert a.union(b).select(pred) == a.select(pred).union(b.select(pred))

    @given(rows_strategy)
    def test_project_to_full_schema_is_identity(self, rows):
        a = _rel(rows)
        assert a.project(["k", "v"]) == a

    @given(rows_strategy)
    def test_join_with_self_is_identity(self, rows):
        a = _rel(rows)
        assert a.natural_join(a) == a

    @given(rows_strategy, rows_strategy)
    def test_difference_then_union_recovers_superset(self, rows1, rows2):
        a, b = _rel(rows1), _rel(rows2)
        assert b.union(a.difference(b)) == a.union(b)
