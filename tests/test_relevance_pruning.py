"""Speculative join probing with runtime relevance pruning.

The safety property: speculation + pruning is a pure *scheduling*
optimization.  Whatever the fault plan and cache policy, switching it on
must never change a single answer row — probes that survive are the same
fetches the demand path would have made, and cancelled probes fall back
to demand evaluation when the outer partition turns out non-empty.
"""

from __future__ import annotations

import pytest

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.core.resilience import ResiliencePolicy
from repro.vps.cache import CachePolicy
from repro.web.server import FaultPlan

# The running 3-way query: classifieds (outer) feed finance rates by zip
# and the safety view; the safety filter empties whole outer partitions,
# which is exactly what makes speculative probes prunable.
PRUNING_QUERY = (
    "SELECT make, model, price, zip, rate, safety "
    "WHERE make = 'toyota' AND safety = 'excellent' AND duration = 36"
)

ADS = 40  # small world keeps the matrix fast; the benchmark scales it up

FAULT_PLANS = {
    "healthy": None,
    "flaky": FaultPlan(seed=5, error_rate=0.4),
    "spiky": FaultPlan(seed=5, spike_rate=0.5, spike_seconds=6.0),
}

CACHES = {
    "nocache": CachePolicy.noop,
    "lru": CachePolicy.lru,
}


def _rows(faults, cache_factory, policy):
    webbase = WebBase.create(
        WebBaseConfig(
            ads_per_host=ADS,
            faults=faults,
            cache=cache_factory(),
            resilience=policy,
        )
    )
    result = webbase.query(PRUNING_QUERY)
    return sorted(result.rows), webbase


class TestAnswerInvariance:
    @pytest.mark.parametrize("fault_name", sorted(FAULT_PLANS))
    @pytest.mark.parametrize("cache_name", sorted(CACHES))
    def test_pruning_never_changes_answers(self, fault_name, cache_name):
        """Speculation+pruning on vs resilience fully off: identical rows
        across fault plans and cache policies."""
        faults = FAULT_PLANS[fault_name]
        cache_factory = CACHES[cache_name]
        baseline, _ = _rows(faults, cache_factory, ResiliencePolicy.off())
        pruned, webbase = _rows(
            faults,
            cache_factory,
            ResiliencePolicy(
                speculate_probes=True, prune=True, speculate_stagger_seconds=0.05
            ),
        )
        assert pruned == baseline
        assert len(baseline) > 0
        # The optimization actually engaged — this is not a vacuous pass.
        assert webbase.metrics.value("resilience.speculated") > 0

    def test_speculation_without_pruning_is_also_invariant(self):
        baseline, _ = _rows(None, CachePolicy.noop, ResiliencePolicy.off())
        unpruned, webbase = _rows(
            None,
            CachePolicy.noop,
            ResiliencePolicy(speculate_probes=True, prune=False),
        )
        assert unpruned == baseline
        assert webbase.metrics.value("resilience.speculated") > 0
        # prune=False means nothing was revoked, only awaited.
        assert webbase.metrics.value("planner.pruned_probes") == 0


class TestPruningMechanics:
    def test_prune_spans_record_the_feed_accounting(self):
        _, webbase = _rows(
            None,
            CachePolicy.noop,
            ResiliencePolicy(
                speculate_probes=True, prune=True, speculate_stagger_seconds=0.05
            ),
        )
        spans = [
            span
            for span in webbase.last_context.root.walk()
            if span.kind == "prune"
        ]
        assert spans, "speculative joins must record a prune span"
        settled = [span for span in spans if span.name == "speculative"]
        assert settled, "settled speculation must record its accounting"
        for span in settled:
            assert span.attrs["feeds"], "the join attributes fed to probes"
            assert span.attrs["cancelled"] <= span.attrs["issued"]
        cancelled_total = sum(span.attrs["cancelled"] for span in settled)
        assert webbase.metrics.value("planner.pruned_probes") == cancelled_total

    def test_probes_dedupe_with_the_demand_path(self):
        """The outer's leftmost base is fetched once for seeding and once
        for the real outer evaluation — the per-context cache must fold
        those into one upstream fetch per binding (no double spend)."""
        off_rows, off_base = _rows(None, CachePolicy.noop, ResiliencePolicy.off())
        on_rows, on_base = _rows(
            None,
            CachePolicy.noop,
            ResiliencePolicy(speculate_probes=True, prune=True),
        )
        assert on_rows == off_rows
        hits = on_base.metrics.value("engine.context_cache_hits")
        assert hits >= 1

    def test_disabled_policy_never_speculates(self):
        _, webbase = _rows(None, CachePolicy.noop, ResiliencePolicy.off())
        assert webbase.metrics.value("resilience.speculated") == 0
