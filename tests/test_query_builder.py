"""Tests for the concept-driven incremental query builder."""

import pytest

from repro.ur.builder import BuilderError, QueryBuilder


@pytest.fixture()
def builder(webbase):
    return QueryBuilder(webbase.ur)


class TestBrowsing:
    def test_top_level_concepts(self, builder):
        assert builder.concepts() == ["Car", "Advert", "Value", "Safety", "Financing"]

    def test_attributes_of_concept(self, builder):
        assert builder.attributes_of("Car") == ["make", "model", "year"]
        assert builder.attributes_of("Financing") == ["duration", "rate"]


class TestConstruction:
    def test_select_attributes(self, builder):
        query = builder.select("make", "model", "price").build()
        assert query.outputs == ("make", "model", "price")

    def test_select_concept_expands(self, builder):
        query = builder.select("Car", "price").build()
        assert query.outputs == ("make", "model", "year", "price")

    def test_select_deduplicates(self, builder):
        query = builder.select("make", "Car").build()
        assert query.outputs == ("make", "model", "year")

    def test_where_constant(self, builder):
        query = builder.select("make").where("make", "=", "jaguar").build()
        assert query.condition.evaluate({"make": "jaguar"})

    def test_where_attribute_reference(self, builder):
        query = (
            builder.select("price")
            .where("price", "<", "@bb_price")
            .build()
        )
        assert query.condition.evaluate({"price": 1, "bb_price": 2})
        assert not query.condition.evaluate({"price": 3, "bb_price": 2})

    def test_where_in(self, builder):
        query = builder.select("zip").where_in("zip", ["10001", "10025"]).build()
        assert query.condition.evaluate({"zip": "10001"})
        assert not query.condition.evaluate({"zip": "90210"})

    def test_fuzzy_attribute_resolution(self, builder):
        query = builder.select("zip_code").build()
        assert query.outputs == ("zip",)

    def test_describe(self, builder):
        builder.select("make").where("year", ">=", 1995)
        text = builder.describe()
        assert "make" in text and "year" in text


class TestValidation:
    def test_empty_outputs_rejected(self, builder):
        with pytest.raises(BuilderError):
            builder.build()

    def test_unknown_operator_rejected(self, builder):
        with pytest.raises(BuilderError):
            builder.select("make").where("make", "~", "x")

    def test_condition_on_concept_rejected(self, builder):
        with pytest.raises(BuilderError):
            builder.select("make").where("Car", "=", "x")

    def test_empty_in_list_rejected(self, builder):
        with pytest.raises(BuilderError):
            builder.select("make").where_in("make", [])


class TestEndToEnd:
    def test_built_query_runs(self, webbase):
        result = (
            QueryBuilder(webbase.ur)
            .select("Car", "price", "contact")
            .where("make", "=", "ford")
            .where("model", "=", "escort")
            .where("price", "<", 5000)
            .run()
        )
        assert len(result) > 0
        assert all(d["price"] < 5000 for d in result.to_dicts())

    def test_jaguar_query_via_builder(self, webbase):
        result = (
            QueryBuilder(webbase.ur)
            .select("Car", "price", "bb_price", "safety")
            .where("make", "=", "jaguar")
            .where("year", ">=", 1993)
            .where("condition", "=", "good")
            .where_in("safety", ["good", "excellent"])
            .where("price", "<", "@bb_price")
            .run()
        )
        text_query = webbase.query(
            "SELECT make, model, year, price, bb_price, safety "
            "WHERE make = 'jaguar' AND year >= 1993 AND condition = 'good' "
            "AND safety IN ('good', 'excellent') AND price < bb_price"
        )
        assert result == text_query
