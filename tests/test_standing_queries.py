"""Standing queries: subscribe once, receive exactly the row deltas.

The contract: a subscriber's row set after applying every received frame
(snapshot pages, then deltas) equals a fresh evaluation of its query at
any quiescent point — no duplicate rows, no missed rows — across site
churn, maintenance sweeps, and a full service shutdown/restart with the
tiered store carrying the registration.

These tests run a real :class:`WebBaseService` over a real simulated Web
and talk to it through :class:`ServiceClient`; churn is injected with
``mutate_site_listings`` and published by server-side sweeps (the
``sweep`` op), whose result frame is ordered *after* the deltas it
triggered — so "sweep returned" is the quiescent point.
"""

from __future__ import annotations

import pytest

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, WebBaseService
from repro.sites.world import build_world, mutate_site_listings
from repro.vps.cache import CachePolicy

QUERY = (
    "SELECT make, model, price, contact "
    "WHERE make = 'ford' AND model = 'escort'"
)
HOST_A = "www.newsday.com"
HOST_B = "www.autoweb.com"


def _fresh_rows(webbase: WebBase) -> set:
    """Ground truth: evaluate on an explicit context (no gold persist)."""
    ctx = webbase.execution_context(label="ground-truth")
    return set(webbase.query(QUERY, context=ctx).rows)


@pytest.fixture()
def stack(tmp_path):
    """One world, one store-backed webbase, one running service."""
    config = WebBaseConfig(
        cache=CachePolicy.lru(), store_dir=str(tmp_path / "store")
    )
    world = build_world(seed=config.seed, ads_per_host=config.ads_per_host)
    webbase = WebBase(world, config=config)
    service = WebBaseService(webbase, ServiceConfig(port=0))
    host, port = service.start()
    try:
        yield world, webbase, service, host, port
    finally:
        service.shutdown()
        webbase.store.close()


class TestExactDeltas:
    def test_churn_reaches_the_subscriber_as_exact_row_deltas(self, stack):
        world, webbase, service, host, port = stack
        with ServiceClient(host=host, port=port) as client:
            sub = client.subscribe(QUERY)
            assert not sub.resumed
            assert sub.rows == _fresh_rows(webbase)

            seen_added: list[tuple] = []
            for round_no in range(3):
                added = mutate_site_listings(
                    world, HOST_A, count=2, seed=round_no
                )
                stats = client.sweep(HOST_A)
                assert HOST_A in stats["changed_hosts"]
                delta = client.next_delta(sub, timeout=10.0)
                assert delta is not None, "round %d: no delta" % round_no
                assert delta.reason == "cdc"
                assert delta.host == HOST_A
                # Exactly the new listings, no duplicates, no leaks.
                assert len(delta.added) == len(added)
                assert not set(delta.added) & set(seen_added)
                seen_added.extend(delta.added)
                assert sub.rows == _fresh_rows(webbase), (
                    "round %d: applied deltas diverged from fresh eval"
                    % round_no
                )
            # Quiescent: no further frames are pending.
            assert client.next_delta(sub, timeout=0.3) is None
            client.unsubscribe(sub)

    def test_clean_sweep_pushes_nothing(self, stack):
        world, webbase, service, host, port = stack
        with ServiceClient(host=host, port=port) as client:
            sub = client.subscribe(QUERY)
            stats = client.sweep()
            assert stats["changed_hosts"] == []
            assert client.next_delta(sub, timeout=0.3) is None
            client.unsubscribe(sub)

    def test_unsubscribed_client_receives_no_deltas(self, stack):
        world, webbase, service, host, port = stack
        with ServiceClient(host=host, port=port) as client:
            sub = client.subscribe(QUERY)
            client.unsubscribe(sub)
            mutate_site_listings(world, HOST_A, count=1, seed=9)
            client.sweep(HOST_A)
            assert client.next_delta(sub, timeout=0.3) is None

    def test_two_subscribers_both_converge(self, stack):
        world, webbase, service, host, port = stack
        with ServiceClient(host=host, port=port) as one, ServiceClient(
            host=host, port=port
        ) as two:
            sub_one = one.subscribe(QUERY)
            sub_two = two.subscribe(QUERY)
            mutate_site_listings(world, HOST_A, count=2, seed=4)
            one.sweep(HOST_A)
            assert one.next_delta(sub_one, timeout=10.0) is not None
            assert two.next_delta(sub_two, timeout=10.0) is not None
            truth = _fresh_rows(webbase)
            assert sub_one.rows == truth
            assert sub_two.rows == truth


class TestShutdownRestartResume:
    def test_restart_resumes_with_exactly_the_missed_delta(self, tmp_path):
        """The mid-sweep shutdown case: host A's churn is swept and
        delivered, host B's churn happens while the service is down.  The
        resubscribing client gets no snapshot pages (its state IS the
        persisted snapshot) and one resume delta carrying exactly the
        rows that moved while it was away."""
        config = WebBaseConfig(
            cache=CachePolicy.lru(), store_dir=str(tmp_path / "store")
        )
        world = build_world(seed=config.seed, ads_per_host=config.ads_per_host)
        webbase = WebBase(world, config=config)
        service = WebBaseService(webbase, ServiceConfig(port=0))
        host, port = service.start()
        client = ServiceClient(host=host, port=port)
        sub = client.subscribe(QUERY)
        baseline = set(sub.rows)

        # Swept and delivered before the shutdown...
        added_a = mutate_site_listings(world, HOST_A, count=2, seed=11)
        client.sweep(HOST_A)
        assert client.next_delta(sub, timeout=10.0) is not None
        delivered = set(sub.rows)
        assert len(delivered) == len(baseline) + len(added_a)

        # ... orderly shutdown (persist-before-send means the snapshot
        # equals what this client holds), then churn while down.
        client.close()
        service.shutdown()
        webbase.store.close()
        added_b = mutate_site_listings(world, HOST_B, count=3, seed=12)

        webbase2 = WebBase(world, config=config)
        service2 = WebBaseService(webbase2, ServiceConfig(port=0))
        host2, port2 = service2.start()
        try:
            with ServiceClient(host=host2, port=port2) as client2:
                sub2 = client2.subscribe(QUERY, resume=True)
                assert sub2.resumed, "registration did not survive restart"
                assert sub2.rows == set(), "resume must not resend the snapshot"
                delta = client2.next_delta(sub2, timeout=10.0)
                assert delta is not None and delta.reason == "resume"
                # Exactly the rows that moved while the client was away.
                assert len(delta.added) == len(added_b)
                assert delta.removed == []
                resumed_state = delivered | set(delta.added)
                assert resumed_state == _fresh_rows(webbase2)
                assert client2.next_delta(sub2, timeout=0.3) is None
                client2.unsubscribe(sub2)
        finally:
            service2.shutdown()
            webbase2.store.close()

    def test_absent_subscriber_snapshot_is_not_refreshed_by_sweeps(
        self, tmp_path
    ):
        """A sweep while the subscriber's connection is down must NOT
        advance the persisted snapshot: it must keep describing what the
        absent client last saw, or the resume delta under-delivers."""
        config = WebBaseConfig(
            cache=CachePolicy.lru(), store_dir=str(tmp_path / "store")
        )
        world = build_world(seed=config.seed, ads_per_host=config.ads_per_host)
        webbase = WebBase(world, config=config)
        service = WebBaseService(webbase, ServiceConfig(port=0))
        host, port = service.start()
        try:
            client = ServiceClient(host=host, port=port)
            sub = client.subscribe(QUERY)
            held = set(sub.rows)
            client.close()  # connection drops; registration persists

            added = mutate_site_listings(world, HOST_A, count=2, seed=21)
            webbase.run_maintenance(HOST_A)  # sweep with nobody listening

            with ServiceClient(host=host, port=port) as client2:
                sub2 = client2.subscribe(QUERY, resume=True)
                assert sub2.resumed
                delta = client2.next_delta(sub2, timeout=10.0)
                assert delta is not None and delta.reason == "resume"
                assert len(delta.added) == len(added), (
                    "the sweep while absent advanced the snapshot and "
                    "swallowed the delta"
                )
                assert held | set(delta.added) == _fresh_rows(webbase)
                client2.unsubscribe(sub2)
        finally:
            service.shutdown()
            webbase.store.close()
