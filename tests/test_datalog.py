"""Tests for Datalog view definitions over the VPS."""

import pytest

from repro.logical.datalog import (
    DatalogError,
    compile_program,
    compile_rule,
    define_datalog_views,
    parse_datalog,
)
from repro.relational.algebra import evaluate
from repro.relational.bindings import binding_sets
from repro.relational.relation import Relation


class Catalog:
    def __init__(self):
        self.data = {
            "ads": Relation(
                ["make", "model", "year", "price"],
                [
                    ("ford", "escort", 1995, 4800),
                    ("ford", "taurus", 1996, 9000),
                    ("jaguar", "xj6", 1993, 21000),
                ],
            ),
            "bb": Relation(
                ["make", "model", "year", "bbprice"],
                [("ford", "escort", 1995, 5000), ("jaguar", "xj6", 1993, 25000)],
            ),
            "pairs": Relation(["a", "b"], [(1, 1), (1, 2), (2, 2)]),
        }
        self.binds = {name: binding_sets(set()) for name in self.data}

    def base_schema(self, name):
        return self.data[name].schema

    def base_binding_sets(self, name):
        return self.binds[name]

    def fetch(self, name, given):
        relation = self.data[name]
        relevant = {k: v for k, v in given.items() if k in relation.schema}
        return relation.select(lambda row: all(row[k] == v for k, v in relevant.items()))


@pytest.fixture()
def catalog():
    return Catalog()


class TestParsing:
    def test_simple_rule(self):
        rules = parse_datalog("p(X, Y) :- ads(X, Y, Year, Price).")
        assert rules[0].head == "p"
        assert rules[0].head_vars == ("X", "Y")
        assert rules[0].atoms[0].relation == "ads"

    def test_constants_and_comparisons(self):
        rules = parse_datalog(
            "p(M) :- ads(M, 'escort', Y, P), Y >= 1990, P < 5000."
        )
        rule = rules[0]
        assert rule.atoms[0].args[1] == "escort"
        assert len(rule.comparisons) == 2

    def test_comments_and_multiple_rules(self):
        rules = parse_datalog(
            """
            % classified ads
            p(X) :- ads(X, M, Y, P).
            p(X) :- bb(X, M, Y, B).
            """
        )
        assert len(rules) == 2

    def test_errors(self):
        for bad in [
            "p(X) :- .",  # empty body
            "p(x) :- ads(A, B, C, D).",  # head constant
            "p(X)",  # missing period
            "p(X) :- ads(A, B, C, D), 'lit'.",  # dangling literal
            "p(X) :- X(A).",  # variable relation
        ]:
            with pytest.raises(DatalogError):
                parse_datalog(bad)

    def test_facts_without_body_rejected(self):
        with pytest.raises(DatalogError):
            parse_datalog("p(X).")


class TestCompilation:
    def test_projection_and_rename(self, catalog):
        rules = parse_datalog("makes(Make) :- ads(Make, Model, Year, Price).")
        expr = compile_rule(rules[0], catalog)
        result = evaluate(expr, catalog)
        assert result.schema.attrs == ("make",)
        assert set(result.rows) == {("ford",), ("jaguar",)}

    def test_constant_selects(self, catalog):
        rules = parse_datalog("fords(Model) :- ads('ford', Model, Year, Price).")
        result = evaluate(compile_rule(rules[0], catalog), catalog)
        assert set(result.rows) == {("escort",), ("taurus",)}

    def test_join_on_shared_variables(self, catalog):
        rules = parse_datalog(
            "deal(Make, Model, P, B) :- "
            "ads(Make, Model, Year, P), bb(Make, Model, Year, B), P < B."
        )
        result = evaluate(compile_rule(rules[0], catalog), catalog)
        assert set(result.rows) == {
            ("ford", "escort", 4800, 5000),
            ("jaguar", "xj6", 21000, 25000),
        }

    def test_numeric_comparison(self, catalog):
        rules = parse_datalog(
            "recent(Make) :- ads(Make, Model, Year, Price), Year >= 1995."
        )
        result = evaluate(compile_rule(rules[0], catalog), catalog)
        assert set(result.rows) == {("ford",)}

    def test_repeated_variable_in_atom(self, catalog):
        rules = parse_datalog("same(A) :- pairs(A, A).")
        result = evaluate(compile_rule(rules[0], catalog), catalog)
        assert set(result.rows) == {(1,), (2,)}

    def test_arity_mismatch_rejected(self, catalog):
        rules = parse_datalog("p(X) :- ads(X, Y).")
        with pytest.raises(DatalogError):
            compile_rule(rules[0], catalog)

    def test_union_of_rules(self, catalog):
        rules = parse_datalog(
            """
            cars(Make, Model) :- ads(Make, Model, Y, P).
            cars(Make, Model) :- bb(Make, Model, Y, B).
            """
        )
        views = compile_program(rules, catalog)
        result = evaluate(views["cars"], catalog)
        assert len(result) == 3  # escort/taurus/xj6, deduplicated

    def test_head_mismatch_across_rules_rejected(self, catalog):
        rules = parse_datalog(
            """
            p(X) :- ads(X, M, Y, P).
            p(X, Y) :- bb(X, M, Y, B).
            """
        )
        with pytest.raises(DatalogError):
            compile_program(rules, catalog)


class TestAgainstRealVps:
    def _fresh_logical(self, webbase):
        # A private schema over the shared VPS, so the session-scoped
        # webbase's own logical layer is never mutated.
        from repro.logical.schema import LogicalSchema

        return LogicalSchema(webbase.vps)

    def test_datalog_view_over_the_webbase(self, webbase):
        logical = self._fresh_logical(webbase)
        names = define_datalog_views(
            logical,
            """
            dl_safety(Make, Model, Year, Safety) :-
                caranddriver(Make, Model, Safety, Year).
            """,
        )
        assert names == ["dl_safety"]
        result = logical.fetch("dl_safety", {"make": "bmw"})
        builtin = webbase.logical.fetch("reliability", {"make": "bmw"})
        got = {(d["make"], d["model"], d["safety"]) for d in result.to_dicts()}
        expected = {(d["make"], d["model"], d["safety"]) for d in builtin.to_dicts()}
        assert got == expected

    def test_datalog_view_inherits_binding_sets(self, webbase):
        logical = self._fresh_logical(webbase)
        define_datalog_views(
            logical,
            "dl_ads(Make, Model, Price) :- newsday(Contact, Make, Model, Price, Url, Year).",
        )
        sets = logical.base_binding_sets("dl_ads")
        assert sets == frozenset({frozenset({"make"})})

    def test_datalog_join_view_end_to_end(self, webbase):
        logical = self._fresh_logical(webbase)
        define_datalog_views(
            logical,
            """
            dl_bargains(Make, Model, Year, Price, Url) :-
                newsday(Contact, Make, Model, Price, Url, Year).
            """,
        )
        result = logical.fetch("dl_bargains", {"make": "saab"})
        expected = webbase.vps.fetch("newsday", {"make": "saab"})
        assert len(result) == len(expected)
