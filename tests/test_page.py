"""Unit tests for parsed pages: link/form/widget extraction (Figure 3)."""

import pytest

from repro.web.http import Url
from repro.web.page import parse_page


def _page(body: str, url: Url | None = None):
    return parse_page(url or Url("h.com", "/search"), "<html><head><title>T</title></head><body>%s</body></html>" % body)


class TestLinks:
    def test_links_resolve_relative(self):
        page = _page('<a href="detail?ad=1">Car Features</a>')
        assert str(page.links[0].address) == "http://h.com/detail?ad=1"

    def test_link_named_is_case_insensitive(self):
        page = _page('<a href="/m">More</a>')
        assert page.link_named("more").address.path == "/m"

    def test_link_named_missing_raises(self):
        page = _page("")
        with pytest.raises(KeyError):
            page.link_named("nope")

    def test_has_link_named(self):
        page = _page('<a href="/m">More</a>')
        assert page.has_link_named("More")
        assert not page.has_link_named("Less")

    def test_hrefless_anchor_ignored(self):
        page = _page("<a>just text</a>")
        assert page.links == []


FORM = """
<form action="/cgi-bin/find" method="post">
  <p><b>Make: </b><select name="make"><option>ford</option><option>honda</option></select></p>
  <p><b>Model: </b><input type="text" name="model" maxlength="12"></p>
  <p><b>Condition: </b>
     <input type="radio" name="cond" value="good" checked>
     <input type="radio" name="cond" value="fair"></p>
  <input type="checkbox" name="pics" value="yes">
  <input type="hidden" name="session" value="abc">
  <input type="submit" value="Go">
</form>
"""


class TestForms:
    def test_action_and_method(self):
        form = _page(FORM).forms[0]
        assert form.action.path == "/cgi-bin/find"
        assert form.method == "POST"

    def test_select_widget_domain(self):
        widget = _page(FORM).forms[0].widget("make")
        assert widget.kind == "select"
        assert widget.domain == ("ford", "honda")

    def test_text_widget_maxlength(self):
        widget = _page(FORM).forms[0].widget("model")
        assert widget.kind == "text"
        assert widget.max_length == 12

    def test_radio_widget_is_mandatory_with_domain_and_default(self):
        widget = _page(FORM).forms[0].widget("cond")
        assert widget.kind == "radio"
        assert widget.mandatory
        assert widget.domain == ("good", "fair")
        assert widget.default == "good"

    def test_checkbox_widget(self):
        widget = _page(FORM).forms[0].widget("pics")
        assert widget.kind == "checkbox"
        assert widget.domain == ("yes",)

    def test_hidden_state(self):
        form = _page(FORM).forms[0]
        assert form.hidden_state == {"session": "abc"}

    def test_attribute_names_exclude_hidden(self):
        form = _page(FORM).forms[0]
        assert set(form.attribute_names) == {"make", "model", "cond", "pics"}

    def test_widget_labels(self):
        form = _page(FORM).forms[0]
        assert form.widget("make").label == "Make"
        assert form.widget("model").label == "Model"

    def test_submit_buttons_are_not_widgets(self):
        form = _page(FORM).forms[0]
        with pytest.raises(KeyError):
            form.widget("Go")

    def test_form_with_attribute(self):
        page = _page(FORM)
        assert page.form_with_attribute("model") is page.forms[0]
        with pytest.raises(KeyError):
            page.form_with_attribute("nope")


class TestFill:
    def test_fill_includes_hidden_state_and_defaults(self):
        form = _page(FORM).forms[0]
        params = form.fill({"make": "ford"})
        assert params["session"] == "abc"
        assert params["cond"] == "good"  # checked default
        assert params["make"] == "ford"

    def test_fill_rejects_out_of_domain(self):
        form = _page(FORM).forms[0]
        with pytest.raises(ValueError):
            form.fill({"make": "tesla"})

    def test_fill_rejects_unknown_widget(self):
        form = _page(FORM).forms[0]
        with pytest.raises(ValueError):
            form.fill({"bogus": "1"})

    def test_fill_radio_choice(self):
        form = _page(FORM).forms[0]
        assert form.fill({"cond": "fair"})["cond"] == "fair"


class TestTables:
    def test_tables_extraction(self):
        page = _page(
            "<table><tr><th>A</th><th>B</th></tr><tr><td>1</td><td>2</td></tr></table>"
        )
        assert page.tables() == [[["A", "B"], ["1", "2"]]]

    def test_title(self):
        assert _page("").title == "T"
