"""Binding-batched navigation: the prefix page cache, its revision-stamped
invalidation, the page budget under replay, batch/per-binding equivalence,
and speculative prefetch.

The contract under test: batched navigation is a pure *cost* optimisation.
``fetch_batch`` over any binding set returns exactly the multiset union of
the per-binding ``fetch`` answers — under fault injection, with the result
cache on or off — while the query-scoped page cache never serves a page
captured under a superseded navigation-map revision.
"""

from __future__ import annotations

import random

import pytest

from repro.core.execution import RetryPolicy, WebBaseConfig
from repro.core.webbase import WebBase
from repro.navigation.executor import PageBudgetExceeded
from repro.navigation.prefetch import SpeculativePrefetcher
from repro.sites.world import build_world, mutate_site_listings
from repro.vps.cache import CachePolicy
from repro.web.browser import Browser, PrefixPageCache, request_key
from repro.web.http import Request, Url
from repro.web.server import FaultPlan
from tests.conftest import derive_seeds

JAGUAR_QUERY = (
    "SELECT make, model, year, price, bb_price, safety, contact "
    "WHERE make = 'jaguar' AND year >= 1993 AND condition = 'good' "
    "AND safety IN ('good', 'excellent') AND price < bb_price"
)


def _entry_key(host: str) -> tuple:
    return request_key(Request("GET", Url(host, "/")))


def _rows(relation) -> list[tuple]:
    return sorted(map(tuple, relation.rows))


@pytest.fixture()
def bare_webbase() -> WebBase:
    """A private webbase whose default executor the test may reconfigure."""
    return WebBase(build_world())


class TestPrefixPageCacheRevisions:
    """The cache's own stale-page guarantee, independent of the webbase."""

    def _cache(self):
        revisions = {"h.com": 0}
        return revisions, PrefixPageCache(revision_of=lambda h: revisions[h])

    def test_lookup_refuses_and_drops_superseded_entries(self):
        revisions, cache = self._cache()
        key = ("GET", "http://h.com/", ())
        outcome, flight, revision = cache.acquire("h.com", key)
        assert outcome == "lead"
        page = object()
        cache.fulfill("h.com", key, flight, page, revision)
        assert cache.lookup("h.com", key) is page
        revisions["h.com"] = 1
        assert cache.lookup("h.com", key) is None  # refused ...
        assert len(cache) == 0  # ... and dropped, not retained

    def test_page_fetched_under_an_old_revision_is_never_stored(self):
        """The in-flight race: the revision moves while a leader is on the
        wire.  Its page still releases the waiters (it was correct when
        they asked) but never enters the cache."""
        revisions, cache = self._cache()
        key = ("GET", "http://h.com/", ())
        outcome, flight, revision = cache.acquire("h.com", key)
        assert outcome == "lead"
        revisions["h.com"] = 1  # the map changed mid-flight
        page = object()
        cache.fulfill("h.com", key, flight, page, revision)
        assert flight.result is page  # waiters are released
        assert cache.lookup("h.com", key) is None
        assert len(cache) == 0

    def test_failures_are_never_cached(self):
        revisions, cache = self._cache()
        key = ("GET", "http://h.com/", ())
        outcome, flight, _revision = cache.acquire("h.com", key)
        assert outcome == "lead"
        cache.abandon("h.com", key, flight, error=RuntimeError("boom"))
        assert cache.lookup("h.com", key) is None
        # The next caller leads again instead of inheriting the failure.
        outcome, _flight, _revision = cache.acquire("h.com", key)
        assert outcome == "lead"


class TestRevisionBumpEviction:
    def test_reconcile_bump_refuses_pre_change_pages(self):
        """The acceptance scenario: when ``reconcile_site`` absorbs a site
        change and bumps the host's revision, every prefix-cache page for
        that host is refused from then on — no stale page is ever served
        across the bump — while other hosts' pages keep serving."""
        world = build_world()
        webbase = WebBase(world)
        cold = WebBase(world)
        ctx = webbase.execution_context(label="session")
        webbase.fetch_vps("newsday", {"make": "saab"}, context=ctx)
        webbase.fetch_vps("autoweb", {"make": "saab"}, context=ctx)
        cache = ctx.page_cache
        assert cache.lookup("www.newsday.com", _entry_key("www.newsday.com"))
        assert cache.lookup("www.autoweb.com", _entry_key("www.autoweb.com"))
        newsday_keys = [
            key for (host, key) in list(cache._pages) if host == "www.newsday.com"
        ]
        assert newsday_keys

        mutate_site_listings(world, "www.newsday.com", change="auto")
        reports = webbase.run_maintenance()
        assert "www.newsday.com" in reports
        assert webbase.cache.revision("www.newsday.com") == 1

        # Every pre-bump newsday page is refused; autoweb pages survive.
        for key in newsday_keys:
            assert cache.lookup("www.newsday.com", key) is None
        assert cache.lookup("www.autoweb.com", _entry_key("www.autoweb.com"))

        # A post-bump fetch through the *same* session re-walks the live
        # site and matches a cold webbase — including the mutation's ads.
        before = world.server.stats["www.newsday.com"].requests
        given = {"make": "ford", "model": "escort"}
        refreshed = webbase.fetch_vps("newsday", dict(given), context=ctx)
        assert world.server.stats["www.newsday.com"].requests > before
        assert refreshed == cold.fetch_vps("newsday", dict(given))


class TestPageBudgetUnderReplay:
    def test_cached_pages_do_not_count_against_the_budget(self, bare_webbase):
        """Regression: the per-fetch page budget bounds *live* navigations
        only.  A fetch replayed entirely from the page cache runs under a
        budget its live walk would blow through."""
        executor = bare_webbase.executor
        executor.page_cache = PrefixPageCache()
        rows = executor.fetch("newsday", {"make": "saab"})
        live_walk = executor.pages_last_fetch
        assert live_walk > 1
        executor.max_pages_per_fetch = 1  # tighter than the walk just made
        again = executor.fetch("newsday", {"make": "saab"})
        assert again == rows
        assert executor.pages_last_fetch == 0  # fully replayed, zero live

    def test_live_walk_is_still_bounded_with_the_cache_installed(
        self, bare_webbase
    ):
        """A *cold* page cache gives no budget relief: the first live walk
        still trips the rail."""
        executor = bare_webbase.executor
        executor.page_cache = PrefixPageCache()
        executor.max_pages_per_fetch = 1
        with pytest.raises(PageBudgetExceeded):
            executor.fetch("newsday", {"make": "saab"})

    def test_budget_without_cache_unchanged(self, bare_webbase):
        executor = bare_webbase.executor
        executor.max_pages_per_fetch = 1
        with pytest.raises(PageBudgetExceeded):
            executor.fetch("newsday", {"make": "saab"})


class TestBatchEquivalenceProperty:
    """Property: ``fetch_batch(bindings)`` ≡ the per-binding ``fetch``
    answers (and hence their multiset union), for seeded random binding
    sets with duplicates, under injected transient faults, with the
    cross-query result cache on and off."""

    MAKES = ["saab", "ford", "honda", "jaguar", "bmw", "toyota", "volvo"]

    def _build(self, policy: str, seed: int, batch: bool) -> WebBase:
        return WebBase.create(
            WebBaseConfig(
                cache=CachePolicy.lru() if policy == "lru" else CachePolicy.noop(),
                max_workers=3,
                batch=batch,
                faults=FaultPlan(seed=seed, error_rate=0.15),
                retry=RetryPolicy(max_attempts=6),
            )
        )

    @pytest.mark.parametrize("policy", ["noop", "lru"])
    @pytest.mark.parametrize("seed", derive_seeds("batch-equivalence", 3))
    def test_fetch_batch_matches_per_binding_fetch(self, seed, policy):
        rng = random.Random(seed)
        relation = rng.choice(["newsday", "autoweb"])
        givens = [
            {"make": rng.choice(self.MAKES)} for _ in range(rng.randint(3, 6))
        ]
        givens.append(dict(givens[0]))  # a guaranteed duplicate binding

        batched_wb = self._build(policy, seed, batch=True)
        ctx = batched_wb.execution_context(label="batch")
        batched = batched_wb.cache.fetch_batch(
            relation, [dict(g) for g in givens], context=ctx
        )
        assert not ctx.failures

        plain_wb = self._build(policy, seed, batch=False)
        singles = [plain_wb.fetch_vps(relation, dict(g)) for g in givens]

        # Binding-for-binding identical answers ...
        assert [_rows(r) for r in batched] == [_rows(r) for r in singles]
        # ... and therefore the same multiset union.
        union_batched = sorted(t for r in batched for t in map(tuple, r.rows))
        union_single = sorted(t for r in singles for t in map(tuple, r.rows))
        assert union_batched == union_single


class TestSpeculativePrefetcher:
    def test_prefetch_fills_cache_without_duplicate_traffic(self):
        world = build_world()
        webbase = WebBase(world)  # maps the sites; gives us the host list
        hosts = sorted(webbase.compiled)
        cache = PrefixPageCache()
        prefetcher = SpeculativePrefetcher(world.server, cache, max_workers=2)
        requests = [Request("GET", Url(h, "/")) for h in hosts]
        before = {h: world.server.stats[h].requests for h in hosts}

        assert prefetcher.prefetch(requests) == len(hosts)
        prefetcher.drain()
        for host in hosts:
            assert cache.lookup(host, _entry_key(host)) is not None

        # Re-speculating the same pages is free: try_lead skips them all.
        prefetcher.prefetch(requests)
        prefetcher.drain()
        after = {h: world.server.stats[h].requests for h in hosts}
        assert all(after[h] - before[h] == 1 for h in hosts)

        # The demand path shares the prefetched page instead of re-fetching.
        page, live = Browser(world.server).request_cached(requests[0], cache)
        assert page is not None and not live
        assert world.server.stats[hosts[0]].requests == after[hosts[0]]

    def test_enumerated_submissions_are_speculated(self):
        """The end-to-end trigger: a select/radio enumeration inside the
        golden jaguar query hands its whole submission batch to the
        prefetcher, and draining it is deterministic."""
        webbase = WebBase.create(WebBaseConfig(max_workers=4))
        ctx = webbase.execution_context(label="speculate")
        answer = webbase.query(JAGUAR_QUERY, context=ctx)
        ctx.prefetcher.drain()
        assert len(answer) > 0
        counters = webbase.metrics.snapshot()["counters"]
        assert counters.get("nav.prefetch_issued", 0) > 1
        # Speculation is work moved, not added: the batched run's total
        # live traffic stays at or below the per-binding baseline's.
        baseline = WebBase.create(WebBaseConfig(max_workers=4, batch=False))
        base_ctx = baseline.execution_context(label="baseline")
        assert baseline.query(JAGUAR_QUERY, context=base_ctx) == answer
        spent = lambda wb: sum(s.requests for s in wb.world.server.stats.values())
        assert spent(webbase) <= spent(baseline)


class TestTimeoutRetryReplay:
    def test_retry_replays_cached_pages_and_succeeds(self):
        """With the page cache on, a timed-out attempt's pages persist, so
        the retry replays them at zero network cost and completes inside
        the same per-attempt budget that killed attempt one (the batch=False
        counterpart is pinned in test_faults)."""
        webbase = WebBase.create(WebBaseConfig())  # batch on by default
        ctx = webbase.execution_context(
            timeout_seconds=0.05, retry=RetryPolicy(max_attempts=2)
        )
        result = webbase.fetch_vps("nytimes", {"manufacturer": "saab"}, context=ctx)
        assert len(result) > 0 and not ctx.failures
        span = ctx.root.spans("fetch")[0]
        assert span.attrs["attempts"] == 2
        errors = [a for a in span.children if a.status == "error"]
        assert errors and all("timed out" in a.error for a in errors)


class TestBatchMetricsExposure:
    def test_query_counts_nav_metrics(self):
        webbase = WebBase.create(WebBaseConfig(max_workers=4))
        webbase.query(JAGUAR_QUERY)
        snap = webbase.metrics.snapshot()
        assert snap["counters"].get("nav.prefix_misses", 0) > 0
        batch_sizes = snap["histograms"].get("nav.batch_size", {})
        assert batch_sizes.get("count", 0) > 0
        assert batch_sizes.get("max", 0) > 1  # real multi-binding batches

    def test_cli_metrics_reports_nav_counters_and_reconciles(self, capsys):
        from repro.cli import main

        assert main(["metrics", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert "nav.prefix_hits" in out
        assert "nav.prefix_misses" in out
        assert "nav.batch_size" in out
