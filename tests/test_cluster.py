"""The sharded cluster tier, end to end: real router, real worker
processes, real takeover.

These tests spawn an actual 3-worker :class:`LocalCluster` (each worker
a separate OS process with its own store directory) and talk to the
router through the ordinary :class:`ServiceClient` — the cluster must be
indistinguishable from a single service at the protocol level.  The
failover section hard-kills workers and asserts the two contracts the
design leans on: queries in flight across a takeover deliver
*byte-identical, exactly-once* rows, and standing-query subscribers
lose *zero* deltas when their shard dies (the relay resumes on the HRW
successor and synthesizes the exact catch-up diff).

Ordering matters within this module: the failover classes run last
because they shrink the cluster.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cluster.federation import FederationCache
from repro.cluster.router import ClusterConfig, ClusterRouter, LocalCluster
from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.relational.relation import Relation
from repro.service.client import Overloaded, Redirected, ServiceClient
from repro.sites.world import mutate_site_listings
from repro.vps.cache import CachePolicy, ResultCache

ADS = 40
SEED = 1999
#: Single-host (kbb-dominant after the blue-book join collapses) and
#: genuinely multi-host workloads.
Q_CARS = "SELECT make, model, price WHERE make = 'saab'"
Q_WIDE = "SELECT make, model, price WHERE make = 'ford'"
Q_JOIN = (
    "SELECT make, model, price, bb_price WHERE make = 'jaguar' "
    "AND condition = 'good' AND price < bb_price"
)
Q_FED = "SELECT make, model, price WHERE make = 'mazda'"
MUTATION = {
    "host": "www.newsday.com",
    "make": "ford",
    "model": "escort",
    "count": 2,
    "seed": 11,
}


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    root = tmp_path_factory.mktemp("cluster")
    local = LocalCluster(
        ClusterConfig(
            store_root=str(root), shards=3, seed=SEED, ads_per_host=ADS
        )
    )
    local.start()
    try:
        yield local
    finally:
        local.stop()


@pytest.fixture(scope="module")
def reference():
    """A single-process webbase over the identical world — the oracle
    for byte-identical answers.  No result cache, so world mutations
    show up in the very next query."""
    return WebBase.create(
        WebBaseConfig(seed=SEED, ads_per_host=ADS, cache=CachePolicy.noop())
    )


def _rows(webbase, text):
    return sorted(set(webbase.query(text).rows))


class TestRouting:
    def test_router_speaks_the_service_protocol(self, cluster):
        with ServiceClient(*cluster.address) as client:
            welcome = client.hello()
            assert welcome["role"] == "router"
            assert welcome["shard_id"] == "router"
            assert client.ping() < 5.0

    def test_affinity_query_matches_single_process_rows(
        self, cluster, reference
    ):
        with ServiceClient(*cluster.address, timeout=120) as client:
            outcome = client.query(Q_JOIN)
        assert sorted(outcome.rows) == _rows(reference, Q_JOIN)
        assert outcome.stats["route"] == "affinity"
        assert outcome.stats["spilled"] is False  # idle cluster never spills
        assert len(outcome.stats["shards"]) == 1
        # The serving shard stamps the terminal frame.
        assert outcome.stats["shard_id"] == outcome.stats["shards"][0]
        # Per-shard modeled seconds back the load bench's makespan math.
        assert set(outcome.stats["shard_seconds"]) == set(
            outcome.stats["shards"]
        )

    def test_scatter_query_merges_shards_byte_identically(
        self, cluster, reference
    ):
        with ServiceClient(*cluster.address, timeout=120) as client:
            outcome = client.query(Q_WIDE)
        assert sorted(outcome.rows) == _rows(reference, Q_WIDE)
        assert len(outcome.rows) == len(set(outcome.rows)), "duplicate rows"
        assert outcome.stats["route"] == "scatter"
        assert len(outcome.stats["shards"]) >= 2
        assert outcome.stats["shard_id"] == "router"

    def test_routing_is_deterministic(self, cluster):
        router = cluster.router
        weights = router.plan_hosts(Q_WIDE)
        assert weights, "a routable query must touch hosts"
        assert router.route_for(weights) == router.route_for(weights)

    def test_redirect_ok_gets_the_owning_shard_address(self, cluster, reference):
        with ServiceClient(*cluster.address, timeout=120) as client:
            with pytest.raises(Redirected) as caught:
                client.query(Q_JOIN, redirect_ok=True)
            addresses = {
                tuple(info["address"])
                for info in client.status()["workers"].values()
            }
        assert caught.value.address in addresses
        # query_retry follows the redirect to the shard transparently.
        with ServiceClient(*cluster.address, timeout=120) as client:
            outcome = client.query_retry(Q_JOIN)
        assert sorted(outcome.rows) == _rows(reference, Q_JOIN)

    def test_status_reports_full_topology(self, cluster):
        with ServiceClient(*cluster.address) as client:
            status = client.status()
        assert status["role"] == "router"
        assert sorted(status["workers"]) == ["shard-0", "shard-1", "shard-2"]
        assert all(info["alive"] for info in status["workers"].values())
        owners = set(status["hosts"].values())
        assert owners <= {"shard-0", "shard-1", "shard-2"}
        assert "federation" in status

    def test_bad_query_is_a_structured_bad_request(self, cluster):
        from repro.service.client import ServiceError

        with ServiceClient(*cluster.address) as client:
            with pytest.raises(ServiceError) as caught:
                client.query("SELECT nonsense WHERE gibberish = 'x'")
        assert caught.value.code == "BAD_REQUEST"


class TestFederation:
    def test_fill_on_one_shard_amortizes_on_another(self, cluster):
        """A prefix walked on shard A must serve shard B's identical
        lookup from the federation, not from a second live walk."""
        with ServiceClient(*cluster.address) as client:
            workers = client.status()["workers"]
        addresses = {
            shard: tuple(info["address"]) for shard, info in workers.items()
        }
        first, second = sorted(addresses)[:2]
        with ServiceClient(*addresses[first], timeout=120) as a:
            a.query(Q_FED)
        fed_stats = cluster.router.federation_server.cache.stats()
        assert fed_stats["entries"] > 0, "shard A published nothing"
        with ServiceClient(*addresses[second], timeout=120) as b:
            before = (
                b.metrics()["counters"].get("cluster.fed_hits", 0)
            )
            b.query(Q_FED)
            after = b.metrics()["counters"].get("cluster.fed_hits", 0)
        assert after > before, "shard B paid a live walk despite federation"

    def test_merged_metrics_sum_worker_registries(self, cluster):
        with ServiceClient(*cluster.address, timeout=120) as client:
            client.query(Q_CARS)
            merged = client.metrics()
        assert merged["counters"]["cluster.requests"] >= 1
        # Worker-side counters appear summed in the cluster view.
        assert merged["counters"].get("service.completed", 0) >= 1
        assert set(merged["shards"]) == {
            shard
            for shard, info in ServiceClient(*cluster.address)
            .status()["workers"]
            .items()
            if info["alive"]
        }
        per_shard = sum(
            snap["counters"].get("service.completed", 0)
            for snap in merged["shards"].values()
        )
        assert merged["counters"]["service.completed"] == per_shard


class TestFederationClaims:
    """Cluster-wide single-flight: one shard walks a fill, siblings wait
    for its publish instead of duplicating the walk."""

    KEY = (("make", "saab"),)

    def test_claim_is_exclusive_until_published(self):
        fed = FederationCache()
        assert fed.claim("dealers", self.KEY, "shard-a") is True
        assert fed.claim("dealers", self.KEY, "shard-b") is False
        # Re-claiming your own key refreshes it (keep-alive for long walks).
        assert fed.claim("dealers", self.KEY, "shard-a") is True
        fed.publish(
            "dealers", "www.x.com", self.KEY, 0, ["make"], [["saab"]]
        )
        # The publish released the claim: the key is contested again.
        assert fed.claim("dealers", self.KEY, "shard-b") is True

    def test_release_frees_only_the_holders_claim(self):
        fed = FederationCache()
        assert fed.claim("dealers", self.KEY, "shard-a")
        fed.release("dealers", self.KEY, "shard-b")  # non-holder: no-op
        assert fed.claim("dealers", self.KEY, "shard-b") is False
        fed.release("dealers", self.KEY, "shard-a")
        assert fed.claim("dealers", self.KEY, "shard-b") is True

    def test_expired_claim_is_adopted(self):
        fed = FederationCache(claim_ttl=0.05)
        assert fed.claim("dealers", self.KEY, "shard-a")
        time.sleep(0.08)
        # The holder went quiet past the TTL: the next contender takes over.
        assert fed.claim("dealers", self.KEY, "shard-b") is True

    def test_denied_claim_waits_for_the_sibling_publish(self):
        """A flight leader whose federation claim is denied must serve the
        sibling's published fill — zero upstream fetches — once it lands."""

        class _Inner:
            def __init__(self):
                self.fetches = 0

            def host_of(self, name):
                return "www.x.com"

            def fetch(self, name, given, context=None):
                self.fetches += 1
                return Relation(["make"], [("live",)])

        class _Bus:
            """Sibling holds the claim; its fill lands on the 3rd lookup."""

            def __init__(self):
                self.lookups = 0

            def lookup(self, relation, host, key, revision):
                self.lookups += 1
                if self.lookups >= 3:
                    return Relation(["make"], [("federated",)])
                return None

            def claim(self, relation, key):
                return False

            def release(self, relation, key):
                pass

            def publish(self, relation, host, key, revision, value):
                pass

            def publish_revision(self, host, revision):
                pass

        inner = _Inner()
        cache = ResultCache(inner, CachePolicy.lru())
        cache.federation = _Bus()
        value = cache.fetch("dealers", {"make": "saab"})
        assert sorted(value.rows) == [("federated",)]
        assert inner.fetches == 0, "waited shard still paid a live walk"
        assert cache.metrics.value("cluster.fed_waits") == 1
        assert cache.metrics.value("cluster.fed_hits") == 1


class TestSpill:
    def test_saturated_owner_spills_to_least_loaded_worker(
        self, cluster, reference
    ):
        """When the HRW owner is deep in relays, an affinity query must
        route to the least-loaded live worker — and still answer
        byte-identically, because every worker holds the same world."""
        router = cluster.router
        _, targets, _ = router.route_for(router.plan_hosts(Q_JOIN))
        owner = targets[0]
        with router._load_lock:
            # Pretend the owner has a deep accumulated busy score.
            router._shard_busy[owner] = 99.0
        try:
            with ServiceClient(*cluster.address, timeout=120) as client:
                outcome = client.query(Q_JOIN)
        finally:
            with router._load_lock:
                router._shard_busy[owner] = 0.0
        assert outcome.stats["spilled"] is True
        assert outcome.stats["shards"] != [owner]
        assert sorted(outcome.rows) == _rows(reference, Q_JOIN)
        counters = router.metrics.snapshot()["counters"]
        assert counters.get("cluster.spills", 0) >= 1

    def test_spill_margin_none_pins_the_owner(self, tmp_path):
        router = ClusterRouter(
            ClusterConfig(
                store_root=str(tmp_path),
                shards=1,
                federation=False,
                spill_margin=None,
            )
        )
        with router._load_lock:
            router._shard_busy["shard-0"] = 99.0
        target, _ = router._maybe_spill("shard-0")
        assert target == "shard-0"


class TestAdmission:
    def test_router_sheds_with_retry_hint_when_full(self, tmp_path):
        router = ClusterRouter(
            ClusterConfig(
                store_root=str(tmp_path),
                shards=1,
                federation=False,
                max_inflight=1,
                retry_after_ms=321.0,
            )
        )
        router.start()
        try:
            assert router._admit()  # occupy the only slot
            with ServiceClient(*router.address) as client:
                with pytest.raises(Overloaded) as caught:
                    client.query(Q_CARS)
            assert caught.value.retriable
            assert caught.value.retry_after_ms == 321.0
            router._release()
        finally:
            router.shutdown(drain_workers=False)


class TestFailover:
    """Runs last: these tests shrink the module's cluster."""

    def test_scatter_query_survives_mid_flight_worker_death(
        self, cluster, reference
    ):
        """Kill the second scatter target while the query is being
        relayed shard by shard: rows already streamed from the first
        shard stay, the dead shard's share arrives via the HRW successor
        after adoption, and the client sees every row exactly once."""
        router = cluster.router
        kind, targets, _ = router.route_for(router.plan_hosts(Q_WIDE))
        assert kind == "scatter" and len(targets) >= 2
        victim = targets[1]
        with ServiceClient(*cluster.address, timeout=120) as client:
            stream = client.stream(Q_WIDE, page_size=5)
            first = next(stream)  # shard targets[0] is streaming now
            cluster.kill_worker(victim)
            rows = list(first.rows)
            while True:
                try:
                    page = next(stream)
                except StopIteration as stop:
                    stats = stop.value or {}
                    break
                rows.extend(page.rows)
        assert sorted(rows) == _rows(reference, Q_WIDE)
        assert len(rows) == len(set(rows)), "a takeover duplicated rows"
        snapshot = router.metrics.snapshot()["counters"]
        assert snapshot.get("cluster.worker_deaths", 0) >= 1
        assert snapshot.get("cluster.takeovers", 0) >= 1
        assert stats["rows"] == len(rows)

    def test_standing_query_resumes_with_zero_lost_deltas(
        self, cluster, reference
    ):
        """Subscribe, kill the shard holding the registration, then
        mutate + sweep: the relay must resume on the successor (which
        adopted the persisted snapshot) and the subscriber's row set
        must track the post-mutation truth exactly — no delta lost to
        the crash, none duplicated."""
        router = cluster.router
        with ServiceClient(*cluster.address, timeout=120) as client:
            sub = client.subscribe(Q_WIDE, page_size=50)
            assert sub.rows == set(_rows(reference, Q_WIDE))
            victim = router._relays[0].shard_id
            cluster.kill_worker(victim)
            # World churn while the takeover is settling.
            client.mutate(json.dumps(MUTATION))
            mutate_site_listings(
                reference.world,
                MUTATION["host"],
                make=MUTATION["make"],
                model=MUTATION["model"],
                count=MUTATION["count"],
                seed=MUTATION["seed"],
            )
            client.sweep(MUTATION["host"])
            deadline_deltas = 20
            expected = set(_rows(reference, Q_WIDE))
            while sub.rows != expected and deadline_deltas > 0:
                delta = client.next_delta(sub, timeout=10.0)
                if delta is None:
                    break
                deadline_deltas -= 1
            assert sub.rows == expected, "subscriber diverged across takeover"
            counters = router.metrics.snapshot()["counters"]
            assert counters.get("cluster.relay_resumes", 0) >= 1
            client.unsubscribe(sub)

    def test_cluster_still_answers_after_two_deaths(self, cluster, reference):
        with ServiceClient(*cluster.address, timeout=120) as client:
            outcome = client.query(Q_WIDE)
            status = client.status()
        assert sorted(outcome.rows) == _rows(reference, Q_WIDE)
        alive = [s for s, info in status["workers"].items() if info["alive"]]
        assert len(alive) == 1
        owners = set(status["hosts"].values())
        assert owners == set(alive), "all hosts must re-home to survivors"
