"""Tests for the two baselines: link-only Web queries and canned forms."""

import pytest

from repro.baselines.canned import (
    CannedError,
    coverage,
    used_car_canned_catalog,
)
from repro.baselines.websql import (
    PathPattern,
    crawl,
    dynamic_content_coverage,
    select_documents,
)
from repro.web.browser import Browser


class TestWebSqlCrawl:
    def test_crawl_visits_linked_pages(self, world):
        browser = Browser(world.server)
        result = crawl(browser, "http://www.newsday.com/", PathPattern(max_depth=2))
        paths = {page.url.path for page in result.pages}
        assert "/" in paths and "/classified/cars" in paths

    def test_link_pattern_filters(self, world):
        browser = Browser(world.server)
        result = crawl(
            browser, "http://www.newsday.com/", PathPattern(link_regex="^Auto$")
        )
        paths = {page.url.path for page in result.pages}
        assert paths == {"/", "/classified/cars"}

    def test_depth_zero_is_just_the_start(self, world):
        browser = Browser(world.server)
        result = crawl(browser, "http://www.newsday.com/", PathPattern(max_depth=0))
        assert len(result.pages) == 1

    def test_unreachable_start(self, world):
        browser = Browser(world.server)
        result = crawl(browser, "http://nowhere.example/", PathPattern())
        assert result.pages == []

    def test_select_documents(self, world):
        browser = Browser(world.server)
        result = crawl(browser, "http://www.newsday.com/", PathPattern(max_depth=2))
        hits = select_documents(result, "classifieds")
        assert len(hits) >= 1
        assert hits.schema.attrs == ("url", "title")


class TestDynamicContentClaim:
    """The paper's motivation: the interesting data hides behind forms."""

    def test_link_only_crawl_sees_no_ads(self, world):
        browser = Browser(world.server)
        result = crawl(browser, "http://www.newsday.com/", PathPattern(max_depth=4))
        assert dynamic_content_coverage(world, result, "www.newsday.com") == 0.0

    def test_webbase_sees_all_ads(self, webbase, world):
        total = 0
        for make in {ad.car.make for ad in world.dataset.ads_for("www.newsday.com")}:
            total += len(webbase.fetch_vps("newsday", {"make": make}))
        assert total == len(world.dataset.ads_for("www.newsday.com"))


class TestCannedQueries:
    @pytest.fixture(scope="class")
    def catalog(self):
        return used_car_canned_catalog()

    def test_instantiate_and_run(self, catalog, webbase):
        canned = catalog[0]
        result = canned.run(webbase.ur, make="ford", model="escort")
        assert len(result) > 0
        assert all(d["model"] == "escort" for d in result.to_dicts())

    def test_missing_parameter_rejected(self, catalog):
        with pytest.raises(CannedError):
            catalog[0].instantiate(make="ford")

    def test_extra_parameter_rejected(self, catalog):
        with pytest.raises(CannedError):
            catalog[0].instantiate(make="ford", model="escort", color="red")

    def test_answers_matching_question(self, catalog):
        from repro.ur.query import parse_query

        question = parse_query(
            "SELECT make, model, year, price, contact "
            "WHERE make = 'jaguar' AND model = 'xj6'"
        )
        assert catalog[0].answers(question)

    def test_does_not_answer_novel_question(self, catalog):
        from repro.ur.query import parse_query

        question = parse_query(
            "SELECT make, model, price, bb_price "
            "WHERE make = 'jaguar' AND condition = 'good' AND price < bb_price"
        )
        assert not any(c.answers(question) for c in catalog)

    def test_coverage_of_adhoc_workload(self, catalog, webbase):
        workload = [
            # Canned-friendly tasks.
            "SELECT make, model, year, price, contact WHERE make = 'ford' AND model = 'escort'",
            "SELECT make, model, year, price, contact WHERE make = 'honda' AND price < 9000",
            # Ad-hoc tasks no canned form anticipates.
            "SELECT make, model, price, bb_price WHERE make = 'jaguar' AND condition = 'good' AND price < bb_price",
            "SELECT make, model, safety WHERE make = 'toyota' AND safety = 'excellent'",
            "SELECT make, model, price, rate WHERE make = 'saab' AND zip = '10001' AND duration = 36",
        ]
        fraction, unanswered = coverage(catalog, workload)
        assert fraction == pytest.approx(2 / 5)
        # ... but the structured UR answers every one of them.
        for question in workload:
            webbase.query(question)
