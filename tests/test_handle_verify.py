"""Tests for the handle-agreement verifier."""

from repro.vps.verify import verify_handle_agreement


class TestAgreementVerifier:
    def test_usedcarmart_handles_agree(self, webbase):
        relation = webbase.vps.relation("usedcarmart")
        samples = [
            {"make": "ford", "zip": "10001"},
            {"make": "jaguar", "zip": "10025"},
            {"make": "honda", "zip": "94110"},
            {"make": "saab"},  # satisfies only one handle: skipped
        ]
        report = verify_handle_agreement(relation, samples)
        assert report.agrees, report.summary()
        assert report.samples_checked == 3

    def test_single_handle_relations_trivially_agree(self, webbase):
        relation = webbase.vps.relation("newsday")
        report = verify_handle_agreement(relation, [{"make": "ford"}])
        assert report.agrees
        assert report.samples_checked == 0

    def test_disagreement_detected_on_broken_site(self, fresh_world):
        """Sabotage: the by-zip form quietly drops one listing."""
        from repro.core.sessions import map_usedcarmart
        from repro.navigation.compiler import compile_map
        from repro.navigation.executor import NavigationExecutor
        from repro.vps.schema import VpsSchema
        from repro.sites.usedcarmart import UsedCarMartSite, HOST
        from repro.web import html as H
        from repro.web.http import Url

        builder = map_usedcarmart(fresh_world)
        site = fresh_world.server.site(HOST)
        original = site._routes["/cgi-bin/mart"]  # noqa: SLF001 - test injection

        def biased(request):
            # Zip-seeded searches lose their first result (a stale index).
            element = original(request)
            if "zip" in request.params and "make" not in request.params:
                table = element.children[1].children[1 + 1]  # body > table
                rows = [c for c in table.children if getattr(c, "tag", "") == "tr"]
                if len(rows) > 2:
                    table.children.remove(rows[1])
            return element

        site.route("/cgi-bin/mart", biased)
        executor = NavigationExecutor(fresh_world.server)
        vps = VpsSchema(executor)
        vps.add_compiled_site(compile_map(builder.map))
        relation = vps.relation("usedcarmart")
        samples = [
            {"make": make, "zip": zipcode}
            for make in ("ford", "jaguar", "honda")
            for zipcode in ("10001", "10025", "11201")
        ]
        report = verify_handle_agreement(relation, samples)
        assert not report.agrees
        assert report.disagreements
        assert "DISAGREE" in report.summary()
