"""Unit and property tests for the virtual physical schema layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vps.cache import CachingVps
from repro.vps.handle import Handle, HandleError, check_handle_family


class TestHandle:
    def test_mandatory_must_be_subset_of_selection(self):
        with pytest.raises(ValueError):
            Handle("r", frozenset({"a"}), frozenset(), "r")

    def test_accepts(self):
        handle = Handle("r", frozenset({"make"}), frozenset({"make", "model"}), "r")
        assert handle.accepts(frozenset({"make", "zip"}))
        assert not handle.accepts(frozenset({"model"}))

    def test_family_requires_distinct_mandatory_sets(self):
        h1 = Handle("r", frozenset({"a"}), frozenset({"a"}), "r")
        h2 = Handle("r", frozenset({"a"}), frozenset({"a", "b"}), "r")
        with pytest.raises(ValueError):
            check_handle_family([h1, h2])

    def test_family_requires_single_relation(self):
        h1 = Handle("r", frozenset({"a"}), frozenset({"a"}), "r")
        h2 = Handle("s", frozenset({"b"}), frozenset({"b"}), "s")
        with pytest.raises(ValueError):
            check_handle_family([h1, h2])

    def test_family_rejects_empty(self):
        with pytest.raises(ValueError):
            check_handle_family([])

    def test_valid_family(self):
        h1 = Handle("r", frozenset({"a"}), frozenset({"a", "c"}), "r")
        h2 = Handle("r", frozenset({"b"}), frozenset({"b", "c"}), "r")
        check_handle_family([h1, h2])  # does not raise


class TestVirtualRelation:
    def test_handle_for_prefers_largest_usable_selection(self, webbase):
        relation = webbase.vps.relation("newsday")
        handle = relation.handle_for(frozenset({"make", "model"}))
        assert "model" in handle.selection

    def test_handle_for_unsatisfied_raises(self, webbase):
        relation = webbase.vps.relation("kellys")
        with pytest.raises(HandleError):
            relation.handle_for(frozenset({"make"}))

    def test_fetch_enforces_mandatory(self, webbase):
        with pytest.raises(HandleError):
            webbase.vps.fetch("kellys", {"make": "ford"})

    def test_fetch_returns_relation_with_declared_schema(self, webbase):
        result = webbase.vps.fetch("newsday", {"make": "saab"})
        assert result.schema == webbase.vps.base_schema("newsday")
        assert len(result) > 0

    def test_fetch_ignores_foreign_attributes(self, webbase):
        # 'safety' belongs to another relation; it must not break the fetch.
        result = webbase.vps.fetch("newsday", {"make": "saab", "safety": "good"})
        assert len(result) > 0

    def test_fetch_applies_schema_attr_filters(self, webbase, world):
        result = webbase.vps.fetch("newsday", {"make": "ford", "year": "1995"})
        expected = [
            ad
            for ad in world.dataset.ads_for("www.newsday.com", make="ford")
            if ad.car.year == 1995
        ]
        assert len(result) == len(expected)

    def test_binding_sets_come_from_handles(self, webbase):
        assert webbase.vps.base_binding_sets("kellys") == frozenset(
            {frozenset({"make", "model", "condition"})}
        )

    def test_unknown_relation(self, webbase):
        with pytest.raises(KeyError):
            webbase.vps.relation("nosuch")


class TestHandleAgreement:
    """The paper's consistency requirement: if S satisfies two handles of a
    relation, both return the same result."""

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(["ford", "jaguar", "saab", "honda"]))
    def test_site_and_schema_filters_agree(self, make):
        # Equivalent accesses: pass model to the form (selection attr) vs
        # filter the extracted rows (schema attr) — same tuples.
        webbase = _shared_webbase()
        via_form = webbase.vps.fetch("newsday", {"make": make, "model": "escort"})
        broad = webbase.vps.fetch("newsday", {"make": make})
        filtered = broad.select(lambda row: row["model"] == "escort")
        assert via_form == filtered


_WEBBASE = None


def _shared_webbase():
    global _WEBBASE
    if _WEBBASE is None:
        from repro.core.webbase import WebBase

        _WEBBASE = WebBase.create()
    return _WEBBASE


class TestCache:
    def _caching(self):
        webbase = _shared_webbase()
        return CachingVps(webbase.vps)

    def test_second_fetch_hits_cache(self):
        cache = self._caching()
        first = cache.fetch("newsday", {"make": "saab"})
        second = cache.fetch("newsday", {"make": "saab"})
        assert first == second
        assert cache.hits == 1 and cache.misses == 1

    def test_different_bindings_miss(self):
        cache = self._caching()
        cache.fetch("newsday", {"make": "saab"})
        cache.fetch("newsday", {"make": "honda"})
        assert cache.misses == 2

    def test_none_values_do_not_affect_key(self):
        cache = self._caching()
        cache.fetch("newsday", {"make": "saab", "model": None})
        cache.fetch("newsday", {"make": "saab"})
        assert cache.hits == 1

    def test_invalidate_all(self):
        cache = self._caching()
        cache.fetch("newsday", {"make": "saab"})
        assert cache.invalidate() == 1
        cache.fetch("newsday", {"make": "saab"})
        assert cache.misses == 2

    def test_invalidate_one_relation(self):
        cache = self._caching()
        cache.fetch("newsday", {"make": "saab"})
        cache.fetch("nytimes", {"manufacturer": "saab"})
        assert cache.invalidate("newsday") == 1
        assert cache.stats["entries"] == 1

    def test_lru_eviction(self):
        webbase = _shared_webbase()
        cache = CachingVps(webbase.vps, max_entries=2)
        cache.fetch("newsday", {"make": "saab"})
        cache.fetch("newsday", {"make": "honda"})
        cache.fetch("newsday", {"make": "bmw"})
        assert cache.stats["entries"] == 2
        cache.fetch("newsday", {"make": "saab"})  # evicted -> miss again
        assert cache.misses == 4

    def test_catalog_protocol_delegation(self):
        cache = self._caching()
        assert cache.base_schema("newsday") == cache.inner.base_schema("newsday")
        assert cache.base_binding_sets("kellys") == cache.inner.base_binding_sets("kellys")
