"""Tests for multi-handle VPS relations (Section 3's alternative forms).

UsedCarMart has two access forms — by make and by zip code — so its VPS
relation carries two handles with different mandatory sets, each with its
own compiled navigation expression.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vps.handle import HandleError


class TestHandleFamily:
    def test_two_handles_with_distinct_mandatory_sets(self, webbase):
        relation = webbase.vps.relation("usedcarmart")
        assert [sorted(h.mandatory) for h in relation.handles] == [["make"], ["zip"]]

    def test_each_handle_has_its_own_expression(self, webbase):
        relation = webbase.vps.relation("usedcarmart")
        by_make, by_zip = relation.handles
        assert "Search by Make" in by_make.expression
        assert "Search by Make" not in by_zip.expression
        assert "Search by Zip Code" in by_zip.expression

    def test_binding_sets_offer_both(self, webbase):
        sets = webbase.vps.base_binding_sets("usedcarmart")
        assert sets == frozenset({frozenset({"make"}), frozenset({"zip"})})

    def test_expressions_parse_as_calculus(self, webbase):
        from repro.flogic.syntax import parse_rules

        for handle in webbase.vps.relation("usedcarmart").handles:
            program = parse_rules(handle.expression)
            assert len(program.rules) >= 3


class TestHandleSelection:
    def test_fetch_by_make(self, webbase, world):
        result = webbase.fetch_vps("usedcarmart", {"make": "ford"})
        expected = world.dataset.ads_for("www.usedcarmart.com", make="ford")
        assert len(result) == len(expected)

    def test_fetch_by_zip(self, webbase, world):
        result = webbase.fetch_vps("usedcarmart", {"zip": "10001"})
        expected = world.dataset.ads_for("www.usedcarmart.com", zipcode="10001")
        assert len(result) == len(expected)

    def test_fetch_with_neither_is_refused(self, webbase):
        with pytest.raises(HandleError):
            webbase.fetch_vps("usedcarmart", {"model": "escort"})

    def test_handle_choice_prefers_more_usable_selection(self, webbase):
        relation = webbase.vps.relation("usedcarmart")
        chosen = relation.handle_for(frozenset({"make", "model"}))
        assert chosen.mandatory == frozenset({"make"})
        chosen = relation.handle_for(frozenset({"zip", "model"}))
        assert chosen.mandatory == frozenset({"zip"})


class TestHandleAgreement:
    """The paper: handles of one relation must agree — if the supplied
    attributes satisfy several handles, each returns the same result."""

    @settings(max_examples=8, deadline=None)
    @given(
        st.sampled_from(["ford", "jaguar", "honda", "saab"]),
        st.sampled_from(["10001", "10025", "11201", "94110"]),
    )
    def test_both_handles_agree_when_both_satisfied(self, make, zipcode):
        from tests.test_vps import _shared_webbase

        webbase = _shared_webbase()
        relation = webbase.vps.relation("usedcarmart")
        given = {"make": make, "zip": zipcode}
        by_make = webbase.executor.fetch("usedcarmart", given, goal="usedcarmart_h0")
        by_zip = webbase.executor.fetch("usedcarmart", given, goal="usedcarmart_h1")
        key = lambda rows: sorted(tuple(sorted(r.items())) for r in rows)
        assert key(by_make) == key(by_zip)
