"""Integration tests for the simulated sites' page topologies."""

import pytest

from repro.web.browser import Browser


@pytest.fixture()
def browser(world):
    return Browser(world.server)


class TestNewsday:
    """The Figure 2 topology."""

    def test_entry_links(self, browser):
        page = browser.get("http://www.newsday.com/")
        names = {l.name for l in page.links}
        assert {"Auto", "New Car Dealer", "Collectible Cars", "Sport Utility"} <= names

    def test_form_f1_has_make_select(self, browser):
        browser.get("http://www.newsday.com/")
        page = browser.follow_named("Auto")
        widget = page.forms[0].widget("make")
        assert widget.kind == "select"
        assert "jaguar" in widget.domain

    def test_many_matches_produce_refinement_form(self, browser):
        browser.get("http://www.newsday.com/classified/cars")
        page = browser.submit_by_attribute({"make": "ford"})
        assert page.forms, "expected the dynamically generated form f2"
        names = set(page.forms[0].attribute_names)
        assert "model" in names and "featrs" in names

    def test_few_matches_produce_data_page_directly(self, browser):
        browser.get("http://www.newsday.com/classified/cars")
        page = browser.submit_by_attribute({"make": "saab"})
        assert not page.forms
        assert page.tables()

    def test_refinement_reaches_data_page(self, browser):
        browser.get("http://www.newsday.com/classified/cars")
        browser.submit_by_attribute({"make": "ford"})
        page = browser.submit_by_attribute({"model": "escort"})
        rows = page.tables()[0]
        assert rows[0] == ["Make", "Model", "Year", "Price", "Contact", "Details"]
        assert all(r[0] == "ford" and r[1] == "escort" for r in rows[1:])

    def test_pagination_walks_all_rows(self, browser, world):
        # AutoWeb has no refinement form, so a broad query pages through
        # "More" links until the listing is exhausted.
        browser.get("http://www.autoweb.com/marketplace")
        page = browser.submit_by_attribute({"make": "ford"})
        seen = 0
        pages = 0
        while True:
            seen += len(page.tables()[0]) - 1
            pages += 1
            if not page.has_link_named("More"):
                break
            page = browser.follow_named("More")
        expected = len(world.dataset.ads_for("www.autoweb.com", make="ford"))
        assert seen == expected
        assert pages > 1  # the query genuinely paginated

    def test_detail_page_features(self, browser, world):
        browser.get("http://www.newsday.com/classified/cars")
        page = browser.submit_by_attribute({"make": "saab"})
        detail = browser.follow(next(l for l in page.links if l.name == "Car Features"))
        labels = [dt.text() for dt in detail.dom.find_all("dt")]
        assert labels == ["Features", "Picture"]

    def test_unknown_detail_ad(self, browser):
        page = browser.get("http://www.newsday.com/classified/features?ad=999999")
        assert "No such ad" in page.dom.text()


class TestNytimes:
    def test_single_form_flow(self, browser):
        browser.get("http://www.nytimes.com/")
        page = browser.follow_named("Automobiles")
        form = page.forms[0]
        assert form.method == "GET"
        assert "" in form.widget("model").domain  # model optional

    def test_vocabulary_differs(self, browser):
        browser.get("http://www.nytimes.com/classified/autos")
        page = browser.submit_by_attribute({"manufacturer": "ford"})
        header = page.tables()[0][0]
        assert header[0] == "Manufacturer"
        assert "Asking Price" in header


class TestDealers:
    def test_carpoint_zipcode_filter(self, browser, world):
        browser.get("http://www.carpoint.com/used")
        page = browser.submit_by_attribute({"make": "jaguar", "zipcode": "10001"})
        rows = page.tables()[0][1:] if page.tables() else []
        expected = world.dataset.ads_for("www.carpoint.com", make="jaguar", zipcode="10001")
        total = 0
        while True:
            total += len(rows)
            if not page.has_link_named("More"):
                break
            page = browser.follow_named("More")
            rows = page.tables()[0][1:]
        assert total == len(expected)

    def test_autoweb_get_method_and_columns(self, browser):
        browser.get("http://www.autoweb.com/marketplace")
        page = browser.submit_by_attribute({"make": "ford", "model": "escort"})
        assert page.url.params.get("make") == "ford"
        header = page.tables()[0][0]
        assert header == ["Year", "Make", "Model", "Options", "Price", "Zip Code", "Seller"]


class TestKellys:
    def test_condition_is_radio(self, browser):
        browser.get("http://www.kbb.com/")
        page = browser.follow_named("Used Car Values")
        widget = page.forms[0].widget("condition")
        assert widget.kind == "radio" and widget.mandatory

    def test_price_rows_one_per_year(self, browser, world):
        browser.get("http://www.kbb.com/usedcar")
        page = browser.submit_by_attribute(
            {"make": "jaguar", "model": "xj6", "condition": "good"}
        )
        rows = page.tables()[0][1:]
        assert len(rows) == 10  # one per model year 1990-1999
        assert all(r[3] == "good" for r in rows)

    def test_unknown_model_message(self, browser):
        browser.get("http://www.kbb.com/usedcar")
        page = browser.submit_by_attribute(
            {"make": "ford", "model": "nosuch", "condition": "good"}
        )
        assert "No pricing available" in page.dom.text()


class TestCarAndDriver:
    def test_ratings_for_make(self, browser):
        browser.get("http://www.caranddriver.com/ratings")
        page = browser.submit_by_attribute({"make": "jaguar"})
        rows = page.tables()[0][1:]
        assert {r[1] for r in rows} == {"xj6", "xk8"}
        assert all(r[3] in ("poor", "fair", "good", "excellent") for r in rows)


class TestCarFinance:
    def test_rates_by_zip(self, browser):
        browser.get("http://www.carfinance.com/rates")
        page = browser.submit_by_attribute({"zipcode": "10001"})
        rows = page.tables()[0][1:]
        assert [r[1] for r in rows] == ["24", "36", "48", "60"]
        assert all(r[2].endswith("%") for r in rows)

    def test_duration_filter(self, browser):
        browser.get("http://www.carfinance.com/rates")
        page = browser.submit_by_attribute({"zipcode": "10001", "duration": "48"})
        rows = page.tables()[0][1:]
        assert len(rows) == 1 and rows[0][1] == "48"

    def test_unknown_zip(self, browser):
        browser.get("http://www.carfinance.com/rates")
        page = browser.submit_by_attribute({"zipcode": "99999"})
        assert "No rates" in page.dom.text()


class TestExtraSites:
    def test_wwwheels_sloppy_html_still_parses(self, browser):
        browser.get("http://www.wwwheels.com/find")
        page = browser.submit_by_attribute({"make": "ford", "model": "escort"})
        rows = page.tables()[0]
        assert rows[0][0] == "Make"
        assert rows[1][3].startswith("CAD ")

    def test_nydaily_sloppy_refinement_flow(self, browser):
        browser.get("http://www.nydailynews.com/classified/auto")
        page = browser.submit_by_attribute({"make": "ford"})
        assert page.forms  # refinement form
        page = browser.submit_by_attribute({"model": "escort"})
        assert page.tables()

    def test_yahoocars_labeled_blocks(self, browser):
        browser.get("http://cars.yahoo.com/listings")
        page = browser.submit_by_attribute({"make": "ford", "model": "escort"})
        labels = [dt.text() for dt in page.dom.find_all("dl")[0].find_all("dt")]
        assert labels == ["Make", "Model", "Year", "Price", "Contact"]

    def test_autoconnect_refine_threshold(self, browser):
        browser.get("http://www.autoconnect.com/dealers")
        page = browser.submit_by_attribute({"make": "ford"})
        assert page.forms  # 12-ad threshold exceeded

    def test_carreviews_direct_listing(self, browser):
        browser.get("http://www.carreviews.com/classifieds")
        page = browser.submit_by_attribute({"make": "ford", "model": "escort"})
        assert page.tables()


class TestUsedCarMart:
    def test_entry_offers_both_search_forms(self, browser):
        page = browser.get("http://www.usedcarmart.com/")
        names = {l.name for l in page.links}
        assert names == {"Search by Make", "Search by Zip Code"}

    def test_both_forms_hit_the_same_cgi(self, browser):
        browser.get("http://www.usedcarmart.com/bymake")
        by_make = browser.page.forms[0]
        browser.get("http://www.usedcarmart.com/byzip")
        by_zip = browser.page.forms[0]
        assert by_make.action.path == by_zip.action.path == "/cgi-bin/mart"
        assert set(by_make.attribute_names) == {"make", "model"}
        assert set(by_zip.attribute_names) == {"zip", "model"}

    def test_results_agree_across_forms(self, browser, world):
        browser.get("http://www.usedcarmart.com/bymake")
        page = browser.submit_by_attribute({"make": "ford", "model": "escort"})
        by_make_rows = page.tables()[0][1:]
        browser.get("http://www.usedcarmart.com/byzip")
        page = browser.submit_by_attribute({"zip": "10001", "model": "escort"})
        by_zip_rows = page.tables()[0][1:]
        # Rows common to both access paths are literally identical.
        common = {tuple(r) for r in by_make_rows} & {tuple(r) for r in by_zip_rows}
        expected = world.dataset.ads_for(
            "www.usedcarmart.com", make="ford", model="escort", zipcode="10001"
        )
        assert len(common) == len(expected)


class TestWorld:
    def test_all_thirteen_sites_registered(self, world):
        # The ten timing-table sites, CarPoint, CarFinance, and the
        # multi-handle UsedCarMart.
        assert len(world.server.hosts) == 13

    def test_per_site_latency_varies_deterministically(self, world):
        from repro.sites.world import build_world

        again = build_world()
        rtts = {h: world.server.latency_for(h).rtt for h in world.server.hosts}
        again_rtts = {h: again.server.latency_for(h).rtt for h in again.server.hosts}
        assert rtts == again_rtts
        assert len(set(rtts.values())) > 1
