"""Shared fixtures: the simulated world and an assembled webbase.

Both are deterministic (seeded), and building them is fast, but they are
session-scoped anyway so the hundreds of tests share one instance.  Tests
that mutate state (maintenance, caching) build their own.
"""

from __future__ import annotations

import pytest

from repro.core.webbase import WebBase
from repro.sites.world import World, build_world


@pytest.fixture(scope="session")
def world() -> World:
    return build_world()


@pytest.fixture(scope="session")
def webbase() -> WebBase:
    return WebBase.create()


@pytest.fixture()
def fresh_world() -> World:
    """A private world for tests that mutate sites or counters."""
    return build_world()
