"""Shared fixtures: the simulated world, an assembled webbase, and the
repro-seed / anti-deadlock harness for the randomized suites.

The world fixtures are deterministic (seeded), and building them is
fast, but they are session-scoped anyway so the hundreds of tests share
one instance.  Tests that mutate state (maintenance, caching) build
their own.

Every randomized suite draws its seeds through :func:`repro_seed` /
``derive_seeds``, which read one ``REPRO_TEST_SEED`` environment knob
(default 1999).  The active seed is printed in the pytest header and
again on any test failure, so a red run in CI is a one-liner to replay
locally: ``REPRO_TEST_SEED=<seed> pytest tests/<file>``.

A deadlocked event loop must fail fast, not hang the suite: an autouse
fixture arms ``faulthandler.dump_traceback_later`` per test
(``REPRO_TEST_TIMEOUT`` seconds, default 120), which dumps every
thread's stack and kills the process if a single test overstays.
"""

from __future__ import annotations

import faulthandler
import os

import pytest

from repro.core.webbase import WebBase
from repro.sites.world import World, build_world

#: The one knob seeding every randomized suite (fault plans, latency
#: draws, cancellation points, binding sets).
REPRO_TEST_SEED = int(os.environ.get("REPRO_TEST_SEED", "1999"))

#: Per-test wall-clock budget before the watchdog dumps stacks and aborts.
REPRO_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


def repro_seed() -> int:
    """The suite-wide base seed (read the env knob once, at import)."""
    return REPRO_TEST_SEED


def derive_seeds(stream: str, count: int) -> list[int]:
    """``count`` deterministic per-suite seeds derived from the base seed
    via an independent named stream (adding a stream never perturbs the
    others)."""
    from repro.core.simclock import SimulationPlan

    rng = SimulationPlan(REPRO_TEST_SEED).rng(stream)
    return [rng.randrange(2**31) for _ in range(count)]


def pytest_report_header(config: object) -> str:
    return "repro: REPRO_TEST_SEED=%d REPRO_TEST_TIMEOUT=%.0fs" % (
        REPRO_TEST_SEED,
        REPRO_TEST_TIMEOUT,
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Print the replay recipe next to any failure."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        report.sections.append(
            (
                "repro seed",
                "replay with: REPRO_TEST_SEED=%d pytest %s" % (
                    REPRO_TEST_SEED,
                    item.nodeid,
                ),
            )
        )


@pytest.fixture(autouse=True)
def _test_watchdog():
    """Fail a hung test fast: after ``REPRO_TEST_TIMEOUT`` seconds the
    watchdog dumps every thread's traceback and exits the process, so a
    deadlocked loop or thread join surfaces as a readable failure
    instead of a CI-job timeout with no stacks."""
    if REPRO_TEST_TIMEOUT > 0:
        faulthandler.dump_traceback_later(REPRO_TEST_TIMEOUT, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()


@pytest.fixture(scope="session")
def world() -> World:
    return build_world()


@pytest.fixture(scope="session")
def webbase() -> WebBase:
    return WebBase.create()


@pytest.fixture()
def fresh_world() -> World:
    """A private world for tests that mutate sites or counters."""
    return build_world()
