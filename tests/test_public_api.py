"""Tests of the top-level public API surface."""

import repro
from repro import QueryBuilder, WebBase, build_world


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_package_reexports(self):
        assert WebBase is repro.core.webbase.WebBase
        assert QueryBuilder is repro.ur.builder.QueryBuilder
        world = build_world()
        assert world.server.hosts


class TestDocstrings:
    def test_every_public_module_is_documented(self):
        import importlib
        import pkgutil

        undocumented = []
        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(module_info.name)
        assert not undocumented, undocumented

    def test_key_classes_are_documented(self):
        from repro.flogic.engine import Engine
        from repro.navigation.builder import MapBuilder
        from repro.ur.planner import StructuredUR
        from repro.vps.schema import VpsSchema

        for cls in (Engine, MapBuilder, StructuredUR, VpsSchema, WebBase):
            assert (cls.__doc__ or "").strip(), cls


class TestPlannerModes:
    def test_unoptimized_planner_agrees_with_optimized(self, webbase):
        from repro.ur.planner import StructuredUR
        from repro.ur.usedcars import UR_RELATIONS, used_car_rules
        from repro.ur.concepts import used_car_hierarchy

        plain = StructuredUR(
            logical=webbase.logical,
            hierarchy=used_car_hierarchy(),
            rules=used_car_rules(),
            relations=UR_RELATIONS,
            optimize_plans=False,
        )
        text = (
            "SELECT make, model, price, bb_price "
            "WHERE make = 'jaguar' AND condition = 'good' AND price < bb_price"
        )
        assert plain.answer(text) == webbase.query(text)

    def test_optimized_plans_record_rewrites(self, webbase):
        plan = webbase.plan(
            "SELECT make, model, price, bb_price "
            "WHERE make = 'jaguar' AND condition = 'good' AND price < bb_price"
        )
        assert any(obj.rewrites for obj in plan.feasible_objects)
