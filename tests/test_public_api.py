"""Tests of the top-level public API surface.

Includes two mechanical consistency audits, so drift fails loudly:

* every ``from repro import X`` in the test suite and the benchmarks must
  go through ``repro.__all__`` — the package's declared public API;
* every metric a real workload produces must follow the documented
  ``<subsystem>.<metric>`` naming scheme (``NAME_PATTERN``), the same
  pattern the webbase's strict registry enforces at creation time.
"""

import ast
from pathlib import Path

import pytest

import repro
from repro import QueryBuilder, WebBase, build_world
from repro.core.metrics import NAME_PATTERN

REPO = Path(__file__).resolve().parent.parent


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_all_is_sorted_and_unique(self):
        names = [n for n in repro.__all__ if n != "__version__"]
        assert names == sorted(set(names))

    def test_build_shim_is_gone(self):
        assert not hasattr(WebBase, "build")

    def test_the_error_hierarchy_hangs_off_one_base(self):
        from repro import errors

        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.WebBaseError), name


def _public_imports(path: Path) -> list:
    """Every name imported via ``from repro import ...`` under ``path``."""
    found = []
    for source in sorted(path.rglob("*.py")):
        tree = ast.parse(source.read_text(), filename=str(source))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro":
                for alias in node.names:
                    found.append((source, alias.name))
    return found


class TestPublicImportLint:
    def test_tests_and_benchmarks_import_only_the_public_api(self):
        imports = _public_imports(REPO / "tests") + _public_imports(
            REPO / "benchmarks"
        )
        assert imports, "the audit must actually see imports"
        offenders = [
            "%s imports repro.%s" % (source.relative_to(REPO), name)
            for source, name in imports
            if name not in repro.__all__
        ]
        assert offenders == []


class TestMetricNamingAudit:
    @pytest.fixture(scope="class")
    def exercised_webbase(self):
        """One webbase pushed through the subsystems that emit metrics:
        cached queries, faults + breakers, speculation + pruning."""
        from repro import (
            CachePolicy,
            FaultPlan,
            ResiliencePolicy,
            WebBaseConfig,
        )

        instance = WebBase.create(
            WebBaseConfig(
                ads_per_host=40,
                cache=CachePolicy.lru(),
                faults=FaultPlan(seed=5, error_rate=0.3),
                resilience=ResiliencePolicy(
                    failure_threshold=2,
                    speculate_probes=True,
                    prune=True,
                ),
            )
        )
        instance.query(
            "SELECT make, model, price, zip, rate, safety "
            "WHERE make = 'toyota' AND safety = 'excellent' AND duration = 36"
        )
        instance.query("SELECT make, model, price WHERE make = 'saab'")
        return instance

    def test_every_emitted_metric_matches_the_scheme(self, exercised_webbase):
        snapshot = exercised_webbase.metrics.snapshot()
        names = (
            list(snapshot["counters"])
            + list(snapshot["gauges"])
            + list(snapshot["histograms"])
        )
        assert len(names) >= 10, "the workload must emit a real spread"
        offenders = [n for n in names if NAME_PATTERN.match(n) is None]
        assert offenders == []

    def test_the_webbase_registry_is_strict(self, exercised_webbase):
        with pytest.raises(ValueError):
            exercised_webbase.metrics.counter("not-a-valid-name")

    def test_package_reexports(self):
        assert WebBase is repro.core.webbase.WebBase
        assert QueryBuilder is repro.ur.builder.QueryBuilder
        world = build_world()
        assert world.server.hosts


class TestDocstrings:
    def test_every_public_module_is_documented(self):
        import importlib
        import pkgutil

        undocumented = []
        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(module_info.name)
        assert not undocumented, undocumented

    def test_key_classes_are_documented(self):
        from repro.flogic.engine import Engine
        from repro.navigation.builder import MapBuilder
        from repro.ur.planner import StructuredUR
        from repro.vps.schema import VpsSchema

        for cls in (Engine, MapBuilder, StructuredUR, VpsSchema, WebBase):
            assert (cls.__doc__ or "").strip(), cls


class TestPlannerModes:
    def test_unoptimized_planner_agrees_with_optimized(self, webbase):
        from repro.ur.planner import StructuredUR
        from repro.ur.usedcars import UR_RELATIONS, used_car_rules
        from repro.ur.concepts import used_car_hierarchy

        plain = StructuredUR(
            logical=webbase.logical,
            hierarchy=used_car_hierarchy(),
            rules=used_car_rules(),
            relations=UR_RELATIONS,
            optimize_plans=False,
        )
        text = (
            "SELECT make, model, price, bb_price "
            "WHERE make = 'jaguar' AND condition = 'good' AND price < bb_price"
        )
        assert plain.answer(text) == webbase.query(text)

    def test_optimized_plans_record_rewrites(self, webbase):
        plan = webbase.plan(
            "SELECT make, model, price, bb_price "
            "WHERE make = 'jaguar' AND condition = 'good' AND price < bb_price"
        )
        assert any(obj.rewrites for obj in plan.feasible_objects)
