"""Warm restart: a store-backed webbase answers repeats with zero live fetches.

The end-to-end durability story: run the canonical Jaguar query against a
cold store-backed webbase, tear the process down, rebuild the webbase
from the same store — and the same query answers with byte-identical
rows, **zero** live fetches (``ctx.fetches`` and the ``engine.fetches``
counter both stay at zero), and ``store.warm_hits`` accounting for every
relation that came off disk instead of the wire.

Also covered here: a mid-run storage crash (injected ``StorageFault``)
never propagates into query execution — answers stay correct, the store
goes sticky-crashed, and the recovered prefix still warms a fresh
webbase.
"""

from __future__ import annotations

import pytest

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.sites.world import build_world
from repro.store.faults import StorageFault
from repro.store.tiered import TieredStore
from repro.vps.cache import CachePolicy

JAGUAR_QUERY = (
    "SELECT make, model, year, price, bb_price, safety, contact "
    "WHERE make = 'jaguar' AND year >= 1993 AND condition = 'good' "
    "AND safety IN ('good', 'excellent') AND price < bb_price"
)


def _config(tmp_path, **overrides):
    return WebBaseConfig(
        cache=CachePolicy.lru(),
        store_dir=str(tmp_path / "store"),
        **overrides,
    )


def _query(webbase, label):
    ctx = webbase.execution_context(label=label)
    answer = webbase.query(JAGUAR_QUERY, context=ctx)
    return set(answer.rows), ctx


class TestWarmRestart:
    def test_restart_answers_identically_with_zero_live_fetches(self, tmp_path):
        config = _config(tmp_path)
        world = build_world(seed=config.seed, ads_per_host=config.ads_per_host)

        webbase = WebBase(world, config=config)
        cold_rows, cold_ctx = _query(webbase, "cold")
        assert cold_ctx.fetches > 0, "cold run must hit the live sites"
        assert cold_rows, "the Jaguar query has answers in the seeded world"
        webbase.store.close()

        webbase2 = WebBase(world, config=config)
        warm_rows, warm_ctx = _query(webbase2, "warm")
        try:
            assert warm_rows == cold_rows
            assert warm_ctx.fetches == 0, (
                "%d live fetches on a warm restart" % warm_ctx.fetches
            )
            counters = webbase2.metrics.snapshot()["counters"]
            assert counters.get("engine.fetches", 0) == 0
            assert counters.get("store.warm_hits", 0) > 0
            assert counters.get("store.warm_loads", 0) > 0
        finally:
            webbase2.store.close()

    def test_no_warm_flag_starts_cold(self, tmp_path):
        config = _config(tmp_path)
        world = build_world(seed=config.seed, ads_per_host=config.ads_per_host)
        webbase = WebBase(world, config=config)
        rows, _ = _query(webbase, "cold")
        webbase.store.close()

        cold_config = _config(tmp_path, store_warm=False)
        webbase2 = WebBase(world, config=cold_config)
        rows2, ctx2 = _query(webbase2, "unwarmed")
        try:
            assert rows2 == rows
            assert ctx2.fetches > 0, "--no-store-warm must refetch live"
            counters = webbase2.metrics.snapshot()["counters"]
            assert counters.get("store.warm_hits", 0) == 0
        finally:
            webbase2.store.close()

    def test_warm_metrics_visible_via_cli(self, tmp_path, capsys):
        """``python -m repro metrics --store DIR`` surfaces the warm
        counters once a prior run has populated the store."""
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        assert main(["--store", store_dir, "metrics"]) == 0
        capsys.readouterr()  # cold pass: populates the store
        assert main(["--store", store_dir, "metrics"]) == 0
        out = capsys.readouterr().out
        assert "store.warm_hits" in out
        assert "store.warm_loads" in out


class TestCrashDuringQueries:
    def test_storage_crash_never_reaches_the_query(self, tmp_path):
        """A fault that kills the store mid-write is the *store's*
        problem: the query still answers correctly, the store goes
        sticky-crashed, and the torn tail is dropped on recovery."""
        config = _config(tmp_path)
        world = build_world(seed=config.seed, ads_per_host=config.ads_per_host)
        webbase = WebBase(world, config=WebBaseConfig(cache=CachePolicy.lru()))
        # Attach by hand so the store carries an injected fault.
        fault = StorageFault(kill_at_byte=4096)
        store = TieredStore(str(tmp_path / "store"), fault=fault)
        webbase.attach_store(store, warm=False)

        rows, ctx = _query(webbase, "crashing")
        expected = set(webbase.query(JAGUAR_QUERY).rows)
        assert rows == expected, "the storage crash leaked into the answer"
        assert fault.fired and store.crashed, (
            "the fault never fired; raise kill_at_byte usefulness check"
        )
        store.close()

        # The recovered prefix is still a valid store: it opens clean,
        # scans whole records only, and warms a fresh webbase that then
        # answers the query correctly (topping up with live fetches).
        recovered = TieredStore(str(tmp_path / "store"))
        try:
            assert not recovered.crashed
            webbase2 = WebBase(world, config=WebBaseConfig(cache=CachePolicy.lru()))
            webbase2.attach_store(recovered, warm=True)
            rows2, _ = _query(webbase2, "recovered")
            assert rows2 == expected
        finally:
            recovered.close()
