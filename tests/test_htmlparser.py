"""Unit tests for the tolerant HTML parser (faulty-HTML recovery)."""

from hypothesis import given, strategies as st

from repro.web.html import Element, RenderStyle, el, page
from repro.web.htmlparser import decode_entities, parse_html


class TestEntities:
    def test_named_entities(self):
        assert decode_entities("a &amp; b &lt;c&gt;") == "a & b <c>"

    def test_numeric_decimal(self):
        assert decode_entities("&#65;") == "A"

    def test_numeric_hex(self):
        assert decode_entities("&#x41;") == "A"

    def test_unknown_entity_passes_through(self):
        assert decode_entities("&bogus;") == "&bogus;"

    def test_bare_ampersand(self):
        assert decode_entities("a & b") == "a & b"


class TestBasicParsing:
    def test_simple_document(self):
        dom = parse_html("<html><head><title>T</title></head><body><p>hi</p></body></html>")
        assert dom.find("title").text() == "T"
        assert dom.find("p").text() == "hi"

    def test_attributes_lowercased(self):
        dom = parse_html('<A HREF="/x" TARGET=_top>go</A>')
        anchor = dom.find("a")
        assert anchor.get("href") == "/x"
        assert anchor.get("target") == "_top"

    def test_unquoted_attribute_values(self):
        dom = parse_html("<input type=text name=make value=ford>")
        node = dom.find("input")
        assert node.get("name") == "make"
        assert node.get("value") == "ford"

    def test_valueless_attribute(self):
        dom = parse_html("<input type=checkbox checked>")
        assert dom.find("input").get("checked") == "checked"

    def test_single_quoted_attribute(self):
        dom = parse_html("<a href='/x y'>t</a>")
        assert dom.find("a").get("href") == "/x y"

    def test_comments_are_dropped(self):
        dom = parse_html("<p>a<!-- hidden -->b</p>")
        # Adjacent text nodes are joined with normalized whitespace.
        assert dom.find("p").text() == "a b"
        assert "hidden" not in dom.find("p").text()

    def test_doctype_is_dropped(self):
        dom = parse_html("<!DOCTYPE html><p>x</p>")
        assert dom.find("p").text() == "x"

    def test_void_tags_do_not_nest(self):
        dom = parse_html("<p>a<br>b</p>")
        assert dom.find("p").text() == "a b"

    def test_entities_in_text(self):
        dom = parse_html("<td>$12,500 &amp; up</td>")
        assert dom.find("td").text() == "$12,500 & up"


class TestRecovery:
    def test_unclosed_list_items(self):
        dom = parse_html("<ul><li>one<li>two<li>three</ul>")
        items = dom.find_all("li")
        assert [i.text() for i in items] == ["one", "two", "three"]

    def test_unclosed_table_cells(self):
        dom = parse_html("<table><tr><td>a<td>b<tr><td>c<td>d</table>")
        rows = dom.find_all("tr")
        assert len(rows) == 2
        assert [c.text() for c in rows[1].find_all("td")] == ["c", "d"]

    def test_unclosed_paragraphs(self):
        dom = parse_html("<body><p>one<p>two</body>")
        assert [p.text() for p in dom.find_all("p")] == ["one", "two"]

    def test_unclosed_options(self):
        dom = parse_html("<select><option>a<option>b</select>")
        assert [o.text() for o in dom.find_all("option")] == ["a", "b"]

    def test_uppercase_tags(self):
        dom = parse_html("<TABLE><TR><TD>x</TD></TR></TABLE>")
        assert dom.find("td").text() == "x"

    def test_stray_end_tag_is_ignored(self):
        dom = parse_html("<p>a</div>b</p>")
        assert dom.find("p").text() == "a b"

    def test_unclosed_at_eof(self):
        dom = parse_html("<div><p>never closed")
        assert dom.find("p").text() == "never closed"

    def test_end_tag_pops_open_cells(self):
        dom = parse_html("<table><tr><td>x</table><p>after</p>")
        assert dom.find("p").text() == "after"
        # The paragraph is not nested inside the table.
        assert dom.find("table").find("p") is None

    def test_unterminated_tag_becomes_text(self):
        dom = parse_html("<p>a</p><broken")
        assert dom.find("p").text() == "a"

    def test_dl_recovery(self):
        dom = parse_html("<dl><dt>Make<dd>ford<dt>Model<dd>escort</dl>")
        assert [d.text() for d in dom.find_all("dd")] == ["ford", "escort"]


class TestDomApi:
    def test_find_with_attrs(self):
        dom = parse_html('<a href="/1">x</a><a href="/2">y</a>')
        assert dom.find("a", href="/2").text() == "y"

    def test_find_all_order(self):
        dom = parse_html("<div><span>1</span><p><span>2</span></p></div><span>3</span>")
        assert [s.text() for s in dom.find_all("span")] == ["1", "2", "3"]

    def test_text_normalizes_whitespace(self):
        dom = parse_html("<p>  a \n  b  </p>")
        assert dom.find("p").text() == "a b"

    def test_own_text_excludes_children(self):
        dom = parse_html("<p>outer <b>inner</b></p>")
        assert dom.find("p").own_text() == "outer"

    def test_ancestors(self):
        dom = parse_html("<div><p><b>x</b></p></div>")
        bold = dom.find("b")
        assert [a.tag for a in bold.ancestors()] == ["p", "div", "#document"]


class TestRoundTrip:
    def test_clean_render_parses_back(self):
        doc = page("Title", el("p", "hello"), el("ul", el("li", "a"), el("li", "b")))
        dom = parse_html(doc.render(RenderStyle.clean()))
        assert dom.find("title").text() == "Title"
        assert [i.text() for i in dom.find_all("li")] == ["a", "b"]

    def test_sloppy_render_parses_to_same_structure(self):
        doc = page(
            "T",
            el("table", el("tr", el("td", "a"), el("td", "b")), el("tr", el("td", "c"), el("td", "d"))),
        )
        clean = parse_html(doc.render(RenderStyle.clean()))
        sloppy = parse_html(doc.render(RenderStyle.sloppy()))
        clean_cells = [c.text() for c in clean.find_all("td")]
        sloppy_cells = [c.text() for c in sloppy.find_all("td")]
        assert clean_cells == sloppy_cells == ["a", "b", "c", "d"]

    @given(st.text(max_size=300))
    def test_parser_never_crashes(self, source):
        parse_html(source)

    @given(
        st.lists(
            st.sampled_from(["<p>", "</p>", "<li>", "<td>", "<table>", "</table>", "x", "<", ">", "&amp;", "<a href=1>", "<!--", "-->"]),
            max_size=30,
        )
    )
    def test_parser_never_crashes_on_tag_soup(self, pieces):
        parse_html("".join(pieces))
