"""The cost model and join-order search, pinned from first principles.

Estimates must move the right way when statistics move (more rows ahead
of a dependent join can never make it look cheaper), the search must
never even *score* a binding-infeasible placement, it must agree with
``order_joins`` about feasibility, chains past the DP threshold must go
through the greedy/branch-and-bound path, and EXPLAIN must report the
estimate-vs-actual error per plan node.
"""

from __future__ import annotations

import pytest

from repro.core.execution import WebBaseConfig
from repro.core.metrics import MetricsRegistry
from repro.core.webbase import WebBase
from repro.relational.bindings import JoinPart, feasible, order_joins
from repro.relational.cost import (
    OBSERVED_ACCESSES,
    OBSERVED_FETCHES,
    CatalogStats,
    CostModel,
    RelationStats,
)
from repro.relational.planner import JoinOrderPlanner


def _stats(outer_card: float = 100.0, outer_dv: float = 10.0) -> CatalogStats:
    return CatalogStats(
        relations={
            "outer": RelationStats(
                cardinality=outer_card, distinct={"k": outer_dv, "v": outer_card}
            ),
            "inner": RelationStats(cardinality=50.0, distinct={"k": 10.0, "w": 50.0}),
        }
    )


OUTER = JoinPart.make("outer", {"k", "v"}, [()])
INNER = JoinPart.make("inner", {"k", "w"}, [("k",)])  # must be probed


class TestMonotonicity:
    def test_probe_cost_monotone_in_outer_cardinality(self):
        """More (distinct) rows ahead of a dependent join ⇒ at least as
        many probes of the inner relation, never fewer."""
        costs = [
            CostModel(_stats(outer_card=card, outer_dv=card))
            .step_estimate(INNER, [OUTER], frozenset())
            .est_fetches
            for card in (1.0, 4.0, 16.0, 64.0, 256.0)
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_selected_rows_monotone_in_cardinality(self):
        rows = [
            CostModel(_stats(outer_card=card)).selected_rows(OUTER, frozenset({"k"}))
            for card in (10.0, 100.0, 1000.0)
        ]
        assert rows == sorted(rows)

    def test_constants_never_increase_cost(self):
        model = CostModel(_stats())
        free = model.step_estimate(INNER, [OUTER], frozenset())
        bound = model.step_estimate(INNER, [OUTER], frozenset({"k"}))
        assert bound.est_fetches <= free.est_fetches

    def test_observed_weight_overrides_static(self):
        metrics = MetricsRegistry()
        model = CostModel(_stats(), metrics=metrics)
        static = model.weight("inner")
        assert static == 1.0
        # 10 accesses produced only 2 live fetches: a warm cache.
        metrics.counter(OBSERVED_ACCESSES % "inner").inc(10)
        metrics.counter(OBSERVED_FETCHES % "inner").inc(2)
        assert model.weight("inner") == pytest.approx(0.2)
        assert model.weight("inner") >= CostModel.MIN_WEIGHT


class RecordingModel(CostModel):
    """Records every placement the planner asks to be scored."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.scored: list[tuple[str, tuple[str, ...], frozenset]] = []

    def step_estimate(self, part, prefix, const_attrs):
        self.scored.append(
            (part.name, tuple(p.name for p in prefix), frozenset(const_attrs))
        )
        return super().step_estimate(part, prefix, const_attrs)


def _chain(n: int) -> list[JoinPart]:
    """c0 — c1 — ... — c(n-1), each needing the previous link's attribute:
    exactly one feasible order."""
    parts = [JoinPart.make("c0", {"x0"}, [()])]
    for i in range(1, n):
        parts.append(
            JoinPart.make("c%d" % i, {"x%d" % (i - 1), "x%d" % i}, [("x%d" % (i - 1),)])
        )
    return parts


class TestSearch:
    def test_infeasible_placements_are_never_scored(self):
        """Every (relation, prefix) pair the search consults the model for
        must already satisfy a binding set — for both strategies."""
        for n in (4, 9):  # DP path and greedy/branch-and-bound path
            model = RecordingModel(CatalogStats())
            parts = _chain(n)
            plan = JoinOrderPlanner(model).plan(parts)
            assert plan is not None
            assert model.scored, "the search never consulted the model"
            for name, prefix_names, const in model.scored:
                part = next(p for p in parts if p.name == name)
                bound = frozenset(const)
                for other_name in prefix_names:
                    bound |= next(p for p in parts if p.name == other_name).schema
                assert feasible(part.bindings, bound), (
                    "scored infeasible placement: %s after %s" % (name, prefix_names)
                )

    def test_feasibility_agrees_with_order_joins(self):
        parts = [
            JoinPart.make("a", {"x"}, [()]),
            JoinPart.make("b", {"y", "z"}, [("y",)]),  # y unreachable
        ]
        assert order_joins(parts, set()) is None
        assert JoinOrderPlanner(CostModel()).plan(parts, set()) is None
        # ...and becomes feasible exactly when order_joins says so.
        assert order_joins(parts, {"y"}) is not None
        assert JoinOrderPlanner(CostModel()).plan(parts, {"y"}) is not None

    def test_long_chain_uses_greedy_and_respects_bindings(self):
        parts = _chain(7)  # above the DP threshold of 6
        plan = JoinOrderPlanner(CostModel()).plan(parts)
        assert plan is not None
        assert plan.strategy == "greedy"
        assert list(plan.names(parts)) == ["c%d" % i for i in range(7)]

    def test_short_join_uses_dp(self):
        parts = _chain(3)
        plan = JoinOrderPlanner(CostModel()).plan(parts)
        assert plan.strategy == "dp"
        assert len(plan.steps) == 3
        assert plan.steps[0].mode == "scan"
        assert all(s.mode == "probe" for s in plan.steps[1:])

    def test_empty_join_is_trivial(self):
        plan = JoinOrderPlanner(CostModel()).plan([])
        assert plan.strategy == "trivial"
        assert plan.order == ()
        assert plan.est_fetches == 0.0


@pytest.fixture(scope="module")
def webbase():
    return WebBase.create(WebBaseConfig(max_workers=1))


class TestExplain:
    QUERY = (
        "SELECT make, model, year, price, zip, rate, safety "
        "WHERE make = 'toyota' AND safety = 'excellent' AND duration = 36"
    )

    def test_explain_reports_estimates_actuals_and_error(self, webbase):
        report = webbase.explain(self.QUERY)
        text = report.render()
        assert "optimizer=cost" in text
        assert "est" in text and "actual" in text and "err" in text
        feasible_objects = [o for o in report.objects if not o.skipped]
        assert feasible_objects
        for obj in feasible_objects:
            assert obj.strategy in ("dp", "greedy", "trivial")
            for node in obj.nodes:
                assert node.mode in ("scan", "independent", "probe")
                assert node.est_fetches >= 0.0
                if node.actual_fetches:
                    assert node.error_pct is not None
        # The per-node actuals reconcile with the object totals.
        assert report.actual_fetches == sum(
            o.actual_fetches for o in feasible_objects
        )

    def test_error_pct_semantics(self):
        from repro.core.explain import ExplainNode

        node = ExplainNode("r", "probe", 4.0, 6.0, 4, 4)
        assert node.error_pct == pytest.approx(50.0)
        silent = ExplainNode("r", "probe", 1.0, 1.0, 0, 0)
        assert silent.error_pct is None
        assert "n/a" in silent.describe()
