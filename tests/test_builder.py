"""Unit tests for mapping by example (the map builder)."""

import pytest

from repro.navigation.builder import DesignerHints, MapBuilder
from repro.navigation.model import FormEdge, LinkEdge
from repro.navigation.navmap import MapError
from repro.web.browser import Browser


@pytest.fixture()
def newsday_session(world):
    browser = Browser(world.server)
    builder = MapBuilder("www.newsday.com")
    browser.subscribe(builder)
    return browser, builder


class TestEventCapture:
    def test_pages_become_nodes(self, newsday_session):
        browser, builder = newsday_session
        browser.get("http://www.newsday.com/")
        browser.follow_named("Auto")
        assert len(builder.map.nodes) == 2

    def test_actions_become_edges(self, newsday_session):
        browser, builder = newsday_session
        browser.get("http://www.newsday.com/")
        browser.follow_named("Auto")
        browser.submit_by_attribute({"make": "ford"})
        kinds = [type(e) for e in builder.map.edges]
        assert kinds == [LinkEdge, FormEdge]

    def test_revisits_do_not_duplicate(self, newsday_session):
        browser, builder = newsday_session
        browser.get("http://www.newsday.com/")
        browser.follow_named("Auto")
        browser.get("http://www.newsday.com/")
        browser.follow_named("Auto")
        assert len(builder.map.nodes) == 2
        assert len(builder.map.edges) == 1

    def test_foreign_hosts_ignored(self, newsday_session, world):
        browser, builder = newsday_session
        browser.get("http://www.kbb.com/")
        assert len(builder.map.nodes) == 0

    def test_root_is_first_page(self, newsday_session):
        browser, builder = newsday_session
        browser.get("http://www.newsday.com/")
        assert builder.map.root.signature.path == "/"


class TestWidgetInference:
    def test_select_without_empty_option_is_mandatory(self, newsday_session):
        browser, builder = newsday_session
        browser.get("http://www.newsday.com/classified/cars")
        node = builder.map.node_by_signature(browser.page)
        form = next(iter(node.forms.values()))
        assert form.widget_for_attr("make").mandatory

    def test_select_with_empty_option_is_optional(self, world):
        browser = Browser(world.server)
        builder = MapBuilder("www.nytimes.com")
        browser.subscribe(builder)
        browser.get("http://www.nytimes.com/classified/autos")
        node = builder.map.node_by_signature(browser.page)
        form = next(iter(node.forms.values()))
        assert not form.widget_for_attr("model").mandatory

    def test_radio_is_mandatory(self, world):
        browser = Browser(world.server)
        builder = MapBuilder("www.kbb.com")
        browser.subscribe(builder)
        browser.get("http://www.kbb.com/usedcar")
        node = builder.map.node_by_signature(browser.page)
        form = next(iter(node.forms.values()))
        assert form.widget_for_attr("condition").mandatory
        assert form.widget_for_attr("condition").domain == ("excellent", "good", "fair")

    def test_text_needs_hint_to_be_mandatory(self, world):
        browser = Browser(world.server)
        hinted = MapBuilder("www.kbb.com", DesignerHints(mandatory_text={"model"}))
        browser.subscribe(hinted)
        browser.get("http://www.kbb.com/usedcar")
        node = hinted.map.node_by_signature(browser.page)
        form = next(iter(node.forms.values()))
        assert form.widget_for_attr("model").mandatory

        unhinted_browser = Browser(world.server)
        unhinted = MapBuilder("www.kbb.com")
        unhinted_browser.subscribe(unhinted)
        unhinted_browser.get("http://www.kbb.com/usedcar")
        node = unhinted.map.node_by_signature(unhinted_browser.page)
        form = next(iter(node.forms.values()))
        assert not form.widget_for_attr("model").mandatory

    def test_attr_renames_apply_to_widgets(self, world):
        browser = Browser(world.server)
        builder = MapBuilder("www.carfinance.com", DesignerHints(attr_renames={"zipcode": "zip_code"}))
        browser.subscribe(builder)
        browser.get("http://www.carfinance.com/rates")
        node = builder.map.node_by_signature(browser.page)
        form = next(iter(node.forms.values()))
        assert "zip_code" in form.attrs


class TestMarkDataPage:
    def test_mark_requires_a_loaded_page(self):
        builder = MapBuilder("www.newsday.com")
        with pytest.raises(MapError):
            builder.mark_data_page("r", {"a": "1"})

    def test_mark_sets_wrapper_and_name(self, newsday_session):
        browser, builder = newsday_session
        browser.get("http://www.newsday.com/classified/cars")
        page = browser.submit_by_attribute({"make": "saab"})
        row = page.tables()[0][1]
        builder.mark_data_page("newsday", {"make": row[0], "model": row[1]})
        node = builder.map.node_by_signature(page)
        assert node.is_data and node.relation_name == "newsday"

    def test_mark_counts_manual_facts(self, newsday_session):
        browser, builder = newsday_session
        before = builder.manual_facts
        browser.get("http://www.newsday.com/classified/cars")
        page = browser.submit_by_attribute({"make": "saab"})
        row = page.tables()[0][1]
        builder.mark_data_page("newsday", {"make": row[0]})
        assert builder.manual_facts == before + 2


class TestRowLinks:
    def test_detail_link_marked_as_row_link(self, newsday_session):
        browser, builder = newsday_session
        browser.get("http://www.newsday.com/classified/cars")
        page = browser.submit_by_attribute({"make": "saab"})
        row = page.tables()[0][1]
        builder.mark_data_page(
            "newsday",
            {"make": row[0], "url": str(page.link_named("Car Features").address)},
        )
        browser.follow(next(l for l in page.links if l.name == "Car Features"))
        edge = [e for e in builder.map.edges if isinstance(e, LinkEdge) and e.link_name == "Car Features"][0]
        assert edge.row_link

    def test_more_link_is_not_row_link(self, world):
        browser = Browser(world.server)
        builder = MapBuilder("www.autoweb.com")
        browser.subscribe(builder)
        browser.get("http://www.autoweb.com/marketplace")
        page = browser.submit_by_attribute({"make": "ford"})
        row = page.tables()[0][1]
        builder.mark_data_page("autoweb", {"year": row[0], "make": row[1]})
        browser.follow_named("More")
        edge = [e for e in builder.map.edges if isinstance(e, LinkEdge) and e.link_name == "More"][0]
        assert not edge.row_link
        assert edge.source == edge.target  # the More self-loop


class TestAutomationReport:
    def test_ratio_under_five_percent_for_newsday(self, world):
        from repro.core.sessions import map_newsday

        builder = map_newsday(world)
        report = builder.automation_report()
        assert report.objects > 15
        assert report.attributes > 50
        assert report.manual_ratio < 0.10

    def test_hints_count_as_manual(self):
        hints = DesignerHints(attr_renames={"a": "b"}, mandatory_text={"c"})
        builder = MapBuilder("h.com", hints)
        assert builder.manual_facts == 2
