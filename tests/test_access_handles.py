"""Access handles: terminal states, cancellation races, batch semantics.

The fault × cancel matrix the handles must survive: cancel during retry
backoff, cancel of a single-flight leader (the waiter gets promoted),
cancel of a single-flight waiter (the leader is unaffected), cancel after
completion, cancel of a staggered speculative probe.  Each race asserts
the ledger stays honest — no stale page cached, budgets refunded.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.execution import (
    ACCESS_BROKEN,
    ACCESS_CANCELLED,
    ACCESS_DONE,
    ACCESS_SHED,
    AccessCancelled,
    AccessHandle,
    ExecutionContext,
    RetryPolicy,
    WebBaseConfig,
)
from repro.core.metrics import MetricsRegistry
from repro.core.resilience import (
    CircuitOpenError,
    ResilienceManager,
    ResiliencePolicy,
)
from repro.core.webbase import WebBase
from repro.web.server import FaultPlan


@pytest.fixture()
def healthy_webbase():
    return WebBase.create(WebBaseConfig())


class TestHandleBasics:
    def test_run_fetch_returns_a_terminal_done_handle(self, healthy_webbase):
        ctx = healthy_webbase.execution_context()
        relation = healthy_webbase.vps.relations["newsday"]
        handle = ctx.run_fetch(relation, {"make": "saab"})
        assert handle.state == ACCESS_DONE
        assert handle.done
        assert not handle.speculative
        assert handle.relation == "newsday"
        assert handle.host == "www.newsday.com"
        assert handle.given == {"make": "saab"}
        assert len(handle.result()) > 0

    def test_done_wins_over_a_late_cancel(self, healthy_webbase):
        ctx = healthy_webbase.execution_context()
        relation = healthy_webbase.vps.relations["newsday"]
        handle = ctx.run_fetch(relation, {"make": "saab"})
        rows = handle.result()
        assert handle.cancel("too late") is False
        assert handle.state == ACCESS_DONE
        assert handle.result() is rows  # the completed result stands

    def test_pending_cancel_finishes_immediately(self):
        handle = AccessHandle("newsday", "www.newsday.com", {"make": "saab"})
        assert handle.cancel("probe disproved") is True
        assert handle.state == ACCESS_CANCELLED
        assert handle.cancel_reason == "probe disproved"
        with pytest.raises(AccessCancelled, match="probe disproved"):
            handle.result()
        # A second cancel is a no-op on the terminal handle.
        assert handle.cancel("again") is False

    def test_broken_fetch_stores_its_error(self):
        webbase = WebBase.create(
            WebBaseConfig(faults=FaultPlan(error_rate=1.0, max_consecutive=999))
        )
        ctx = ExecutionContext(
            webbase.pool, retry=RetryPolicy(max_attempts=2), metrics=webbase.metrics
        )
        relation = webbase.vps.relations["newsday"]
        handle = ctx.run_fetch(relation, {"make": "saab"})
        assert handle.state == ACCESS_BROKEN
        with pytest.raises(Exception):
            handle.result()


class TestCancelDuringRetryBackoff:
    def test_cancel_stops_the_retry_loop_and_refunds_the_slot(self):
        """Revoking an access mid-retry stops it at the before-retry
        checkpoint: the retry budget stops burning, nothing is cached,
        and the worker slot frees up for other hosts."""
        webbase = WebBase.create(
            WebBaseConfig(
                faults=FaultPlan(
                    error_rate=1.0, max_consecutive=999, hosts=("www.newsday.com",)
                )
            )
        )
        ctx = ExecutionContext(
            webbase.pool,
            retry=RetryPolicy(max_attempts=5000),
            metrics=webbase.metrics,
        )
        relation = webbase.vps.relations["newsday"]
        holder = {}

        def run() -> None:
            holder["handle"] = ctx.run_fetch(relation, {"make": "saab"})

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        # Let a few retries burn, then revoke the access from outside.
        deadline = time.monotonic() + 10.0
        while ctx.retries < 3 and thread.is_alive():
            assert time.monotonic() < deadline, "retries never started"
            time.sleep(0.0005)
        with ctx._lock:
            live = list(ctx._live_handles.values())
        for handle in live:
            handle.cancel("outer bindings proved this irrelevant")
        thread.join(10.0)
        assert not thread.is_alive()
        handle = holder["handle"]
        assert handle.state == ACCESS_CANCELLED
        assert isinstance(handle.error, AccessCancelled)
        # The retry budget was not exhausted — the cancel interrupted it.
        assert ctx.retries < 5000
        # No partial result leaked into the per-context cache, and the
        # single-flight table is clean.
        assert ctx._cache == {}
        assert ctx._flights == {}
        # The revocation is accounted.
        assert webbase.metrics.value("resilience.cancelled") >= 1
        # The slot was refunded: the same context still serves other hosts.
        other = ctx.run_fetch(
            webbase.vps.relations["nytimes"], {"manufacturer": "saab"}
        )
        assert other.state == ACCESS_DONE


class TestSingleFlightRaces:
    def _race(self, monkeypatch, cancel_target):
        """Run leader+waiter on one fetch key; cancel ``cancel_target``
        ("leader" or "waiter") while the leader holds the flight open."""
        webbase = WebBase.create(WebBaseConfig())
        ctx = webbase.execution_context()
        relation = webbase.vps.relations["newsday"]
        real = ExecutionContext._fetch_with_retries
        gate = threading.Event()
        leader_entered = threading.Event()
        calls = []
        lock = threading.Lock()

        def patched(self, relation, given, bundle, handle=None):
            with lock:
                calls.append(handle)
                first = len(calls) == 1
            if first:
                leader_entered.set()
                gate.wait(10.0)
                self.check_cancelled("gate")  # honours a cancel raced in
            return real(self, relation, given, bundle, handle)

        monkeypatch.setattr(ExecutionContext, "_fetch_with_retries", patched)
        results = {}

        def run(name: str) -> None:
            results[name] = ctx.run_fetch(relation, {"make": "saab"})

        leader = threading.Thread(target=run, args=("leader",), daemon=True)
        leader.start()
        assert leader_entered.wait(10.0)
        waiter = threading.Thread(target=run, args=("waiter",), daemon=True)
        waiter.start()
        # The waiter coalesces onto the leader's flight before we act.
        deadline = time.monotonic() + 10.0
        while webbase.metrics.value("engine.coalesced") < 1:
            assert time.monotonic() < deadline, "waiter never coalesced"
            time.sleep(0.001)
        with ctx._lock:
            live = list(ctx._live_handles.values())
        assert len(live) == 2
        leader_handle = calls[0]
        waiter_handle = next(h for h in live if h is not leader_handle)
        if cancel_target == "leader":
            assert leader_handle.cancel("client went away") is True
        else:
            assert waiter_handle.cancel("client went away") is True
            waiter.join(10.0)  # the waiter unwinds before the flight lands
            assert not waiter.is_alive()
        gate.set()
        leader.join(10.0)
        waiter.join(10.0)
        assert not leader.is_alive() and not waiter.is_alive()
        return ctx, results["leader"], results["waiter"]

    def test_cancelled_leader_promotes_the_waiter(self, monkeypatch):
        """A cancelled single-flight leader must not take its waiters down
        with it: the flight is released, the waiter re-loops, finds no
        cached result, and is promoted to fetch on its own."""
        ctx, leader_handle, waiter_handle = self._race(monkeypatch, "leader")
        assert leader_handle.state == ACCESS_CANCELLED
        assert waiter_handle.state == ACCESS_DONE
        assert len(waiter_handle.result()) > 0
        # Exactly the promoted fetch's result is cached — never a partial
        # result from the cancelled leader.
        assert len(ctx._cache) == 1
        assert ctx._flights == {}

    def test_cancelled_waiter_leaves_the_leader_alone(self, monkeypatch):
        ctx, leader_handle, waiter_handle = self._race(monkeypatch, "waiter")
        assert waiter_handle.state == ACCESS_CANCELLED
        assert isinstance(waiter_handle.error, AccessCancelled)
        assert leader_handle.state == ACCESS_DONE
        assert len(ctx._cache) == 1  # the leader's result is shared as usual


class TestBatchSemantics:
    def test_duplicate_bindings_share_a_handle(self, healthy_webbase):
        ctx = ExecutionContext(
            healthy_webbase.pool,
            metrics=healthy_webbase.metrics,
            batch_enabled=True,
        )
        relation = healthy_webbase.vps.relations["newsday"]
        givens = [{"make": "saab"}, {"make": "toyota"}, {"make": "saab"}]
        batch = ctx.run_fetch_batch(relation, givens)
        assert len(batch) == 3
        assert batch.handles[0] is batch.handles[2]
        assert batch.handles[0] is not batch.handles[1]
        rows = batch.results()
        assert rows[0] is rows[2]

    def test_cancel_after_batch_session_is_inert(self, healthy_webbase):
        """By the time run_fetch_batch returns, every handle is terminal:
        a late cancel accepts nothing and retracts nothing."""
        ctx = ExecutionContext(
            healthy_webbase.pool,
            metrics=healthy_webbase.metrics,
            batch_enabled=True,
        )
        relation = healthy_webbase.vps.relations["newsday"]
        batch = ctx.run_fetch_batch(relation, [{"make": "saab"}, {"make": "toyota"}])
        before = batch.results()
        assert batch.cancel_pending("too late") == 0
        assert [h.state for h in batch] == [ACCESS_DONE, ACCESS_DONE]
        assert batch.results() == before
        assert healthy_webbase.metrics.value("resilience.cancelled") == 0


class TestSpeculativeProbes:
    def test_probe_handle_is_speculative_and_inherits_into_fetches(self):
        """A fetch issued under a speculative probe inherits the flag, so
        an open breaker sheds the probe instead of burning a slot."""
        webbase = WebBase.create(WebBaseConfig())
        manager = ResilienceManager(
            ResiliencePolicy(failure_threshold=1), metrics=MetricsRegistry()
        )
        manager.record_failure("www.newsday.com")  # breaker now open
        ctx = ExecutionContext(
            webbase.pool, metrics=webbase.metrics, resilience=manager
        )
        relation = webbase.vps.relations["newsday"]
        probe = ctx.speculate(
            lambda: ctx.run_fetch(relation, {"make": "saab"}).result(),
            "newsday",
            {"make": "saab"},
            host=relation.host,
        )
        assert probe.speculative
        assert probe.wait(10.0)
        ctx.drain_speculation(10.0)
        assert probe.state == ACCESS_SHED
        assert isinstance(probe.error, CircuitOpenError)
        # A *required* access to the same host still passes through.
        demanded = ctx.run_fetch(relation, {"make": "saab"})
        assert demanded.state == ACCESS_DONE
        assert manager.metrics.value("resilience.pass_throughs") >= 1

    def test_cancel_during_stagger_costs_nothing(self):
        """A staggered probe pruned during its delay never touches the
        Web: the cancel interrupts the stagger wait and the handle goes
        CANCELLED without a single fetch."""
        webbase = WebBase.create(WebBaseConfig())
        manager = ResilienceManager(
            ResiliencePolicy(speculate_stagger_seconds=30.0),
            metrics=MetricsRegistry(),
        )
        ctx = ExecutionContext(
            webbase.pool, metrics=webbase.metrics, resilience=manager
        )
        relation = webbase.vps.relations["newsday"]
        fetched = []
        probe = ctx.speculate(
            lambda: fetched.append(ctx.run_fetch(relation, {"make": "saab"})),
            "newsday",
            {"make": "saab"},
            index=1,  # 1 × 30s stagger: safely pending when we cancel
            host=relation.host,
        )
        assert probe.cancel("outer partition emptied") is True
        assert probe.wait(10.0)
        ctx.drain_speculation(10.0)
        assert probe.state == ACCESS_CANCELLED
        assert fetched == []
        assert ctx.fetches == 0
        assert webbase.metrics.value("resilience.cancelled") == 1
