"""Property suite: plan fingerprints are an *equivalence certificate*.

The sharing key of the multi-query optimizer is
:func:`repro.relational.planner.plan_fingerprint`.  Two properties make
it safe to collapse concurrent executions onto one:

1. **Completeness over the normalized rewrites** — plans that differ
   only in join/union operand order, conjunct/disjunct order, equality
   operand order, or ``>``/``>=`` spelling (versus the flipped
   ``<``/``<=``) must hash *equal*, or sharing silently never happens.
2. **Soundness (no collisions)** — randomly generated *distinct* plans
   must never hash equal, or one client receives another query's rows.

Both are checked over randomized plan trees seeded through
``REPRO_TEST_SEED`` (failures replay with the printed seed).  The suite
also pins the whole-query identity (`URPlan.query_fingerprint`) and the
binding-signature variant used by probed subplans.
"""

from __future__ import annotations

import random

from repro.relational import algebra as A
from repro.relational import conditions as C
from repro.relational.planner import (
    canonical_condition,
    canonical_plan,
    plan_fingerprint,
)

from tests.conftest import derive_seeds

SEEDS = derive_seeds("plan-fingerprint", 80)

RELATION_POOL = ["cars", "dealers", "bluebook", "safety", "loans", "reviews"]
ATTR_POOL = ["make", "model", "year", "price", "city", "rating"]
VALUE_POOL = ["saab", "jaguar", "honda", 1995, 2000, 9.5, "chicago"]
OPS = ["=", "!=", "<", "<=", ">", ">="]


def _random_comparison(rng: random.Random) -> C.Comparison:
    attr = C.Attr(rng.choice(ATTR_POOL))
    const = C.Const(rng.choice(VALUE_POOL))
    op = rng.choice(OPS)
    if rng.random() < 0.5:
        return C.Comparison(attr, op, const)
    return C.Comparison(const, op, attr)


def _random_condition(rng: random.Random, depth: int = 0) -> C.Condition:
    roll = rng.random()
    if depth >= 2 or roll < 0.5:
        return _random_comparison(rng)
    parts = tuple(
        _random_condition(rng, depth + 1) for _ in range(rng.randint(2, 3))
    )
    if roll < 0.75:
        return C.And(parts)
    if roll < 0.9:
        return C.Or(parts)
    return C.Not(_random_condition(rng, depth + 1))


def _random_plan(rng: random.Random) -> A.Expr:
    names = rng.sample(RELATION_POOL, rng.randint(1, 4))
    expr: A.Expr = A.Base(names[0])
    for name in names[1:]:
        expr = A.Join(expr, A.Base(name))
    if rng.random() < 0.8:
        expr = A.Select(expr, _random_condition(rng))
    if rng.random() < 0.6:
        attrs = tuple(rng.sample(ATTR_POOL, rng.randint(1, 3)))
        expr = A.Project(expr, attrs)
    return expr


# -- equivalence-preserving rewrites ------------------------------------------


def _flip_comparison(cmp: C.Comparison, rng: random.Random) -> C.Comparison:
    """The same predicate, spelled the other way around."""
    flipped = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
    if rng.random() < 0.5:
        return C.Comparison(cmp.right, flipped[cmp.op], cmp.left)
    return cmp


def _shuffle_condition(cond: C.Condition, rng: random.Random) -> C.Condition:
    if isinstance(cond, C.Comparison):
        return _flip_comparison(cond, rng)
    if isinstance(cond, (C.And, C.Or)):
        parts = [_shuffle_condition(p, rng) for p in cond.parts]
        rng.shuffle(parts)
        return type(cond)(tuple(parts))
    if isinstance(cond, C.Not):
        return C.Not(_shuffle_condition(cond.part, rng))
    return cond


def _shuffle_plan(expr: A.Expr, rng: random.Random) -> A.Expr:
    """An equivalent plan: joins commuted, predicates reordered."""
    if isinstance(expr, A.Join):
        left = _shuffle_plan(expr.left, rng)
        right = _shuffle_plan(expr.right, rng)
        if rng.random() < 0.5:
            left, right = right, left
        return A.Join(left, right)
    if isinstance(expr, A.Union):
        left = _shuffle_plan(expr.left, rng)
        right = _shuffle_plan(expr.right, rng)
        if rng.random() < 0.5:
            left, right = right, left
        return A.Union(left, right, relaxed=expr.relaxed)
    if isinstance(expr, A.Select):
        return A.Select(
            _shuffle_plan(expr.child, rng), _shuffle_condition(expr.condition, rng)
        )
    if isinstance(expr, A.Project):
        # Attribute ORDER is identity-bearing: never shuffled.
        return A.Project(_shuffle_plan(expr.child, rng), expr.attrs)
    return expr


# -- properties ----------------------------------------------------------------


def test_equivalent_plans_share_a_fingerprint():
    """Rewrites that cannot change the answer never change the hash."""
    for seed in SEEDS:
        rng = random.Random(seed)
        plan = _random_plan(rng)
        reference = plan_fingerprint(plan)
        for _ in range(4):
            variant = _shuffle_plan(plan, rng)
            assert plan_fingerprint(variant) == reference, (
                "seed %d: equivalent rewrite changed the fingerprint\n"
                "  plan:    %r\n  variant: %r" % (seed, plan, variant)
            )


def test_distinct_plans_do_not_collide():
    """Across the whole randomized corpus, different canonical forms
    never share a hash (a collision would hand one client another
    query's rows)."""
    by_fingerprint: dict[str, tuple] = {}
    for seed in SEEDS:
        rng = random.Random(seed)
        for _ in range(6):
            plan = _random_plan(rng)
            form = canonical_plan(plan)
            fp = plan_fingerprint(plan)
            previous = by_fingerprint.setdefault(fp, form)
            assert previous == form, (
                "fingerprint collision between %r and %r" % (previous, form)
            )
    assert len(by_fingerprint) > len(SEEDS)  # the corpus actually varied


def test_comparison_normalization_is_exact():
    a, c = C.Attr("price"), C.Const(5000)
    assert canonical_condition(
        C.Comparison(a, ">", c)
    ) == canonical_condition(C.Comparison(c, "<", a))
    assert canonical_condition(
        C.Comparison(a, ">=", c)
    ) == canonical_condition(C.Comparison(c, "<=", a))
    assert canonical_condition(
        C.Comparison(a, "=", c)
    ) == canonical_condition(C.Comparison(c, "=", a))
    # Strict vs inclusive never merge.
    assert canonical_condition(
        C.Comparison(a, "<", c)
    ) != canonical_condition(C.Comparison(a, "<=", c))


def test_nested_conjunct_flattening():
    parts = [C.Comparison(C.Attr("a"), "=", C.Const(i)) for i in range(4)]
    nested = C.And((parts[0], C.And((parts[1], C.And((parts[2], parts[3]))))))
    flat = C.And(tuple(reversed(parts)))
    assert canonical_condition(nested) == canonical_condition(flat)


def test_projection_order_is_identity_bearing():
    base = A.Base("cars")
    assert plan_fingerprint(
        A.Project(base, ("make", "model"))
    ) != plan_fingerprint(A.Project(base, ("model", "make")))


def test_union_relaxedness_is_identity_bearing():
    left, right = A.Base("cars"), A.Base("dealers")
    strict = A.Union(left, right)
    relaxed = A.Union(left, right, relaxed=True)
    assert plan_fingerprint(strict) != plan_fingerprint(relaxed)
    assert plan_fingerprint(strict) == plan_fingerprint(A.Union(right, left))


def test_binding_signature_distinguishes_probes():
    plan = A.Base("cars")
    assert plan_fingerprint(plan, given={"make": "saab"}) != plan_fingerprint(
        plan, given={"make": "jaguar"}
    )
    assert plan_fingerprint(plan, given={"make": "saab"}) != plan_fingerprint(plan)
    # dict insertion order is not identity: the signature is sorted.
    assert plan_fingerprint(
        plan, given={"make": "saab", "year": 1995}
    ) == plan_fingerprint(plan, given={"year": 1995, "make": "saab"})


def test_query_fingerprint_tracks_whole_query(webbase):
    """Equivalent UR queries (reordered WHERE conjuncts, flipped
    comparisons) share a whole-query fingerprint; different queries
    don't."""
    plan_a = webbase.ur.plan(
        "SELECT make, model, price WHERE make = 'saab' AND year > 1995"
    )
    plan_b = webbase.ur.plan(
        "SELECT make, model, price WHERE 1995 < year AND 'saab' = make"
    )
    plan_c = webbase.ur.plan(
        "SELECT make, model, price WHERE make = 'jaguar' AND year > 1995"
    )
    assert plan_a.query_fingerprint() == plan_b.query_fingerprint()
    assert plan_a.query_fingerprint() != plan_c.query_fingerprint()
    for obj in plan_a.feasible_objects:
        assert obj.fingerprint  # every feasible object is stamped
