"""The multi-query optimizer: share in flight, subsume from gold.

Covers the three rungs of the MQO ladder end to end:

* **containment** (`repro.mqo.containment`): the conservative
  predicate-implication check, unit-tested over UR-parsed conditions;
* **sharing** (`repro.mqo.registry`): leader/subscriber single-flight
  with cancellation detach and leader-failure promotion, driven
  deterministically with events;
* **subsumption**: a webbase with `mqo=True` answers a narrowed query
  from a containing gold answer with *zero* side effects beyond the
  `mqo.subsumed` counter — and a revision bump on any contributing host
  makes the gold answer unusable (stale is never served);
* the **service** path: batching window, `service.queue_wait_seconds`,
  shared fingerprints across concurrent socket clients, and gold
  persistence from the streaming executor.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase
from repro.mqo.containment import decompose, implies
from repro.mqo.registry import BatchGate, SubplanRegistry
from repro.relational.relation import Relation
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, WebBaseService
from repro.ur.query import parse_query
from repro.vps.cache import CachePolicy

BROAD = "SELECT make, model, price, year WHERE make = 'saab'"
NARROW = "SELECT make, model, price, year WHERE make = 'saab' AND year > 1995"


def _cond(text: str):
    return parse_query("SELECT make WHERE " + text).condition


def _mqo_webbase(tmp_path) -> WebBase:
    return WebBase.create(
        WebBaseConfig(
            ads_per_host=24,
            cache=CachePolicy.lru(),
            store_dir=str(tmp_path / "store"),
            mqo=True,
        )
    )


# -- containment ---------------------------------------------------------------


class TestImplies:
    def test_narrowing_conjunct_implies(self):
        assert implies(_cond("make = 'saab' AND year > 1995"), _cond("make = 'saab'"))

    def test_broader_does_not_imply_narrower(self):
        assert not implies(_cond("make = 'saab'"), _cond("make = 'saab' AND year > 1995"))

    def test_range_tightening(self):
        assert implies(_cond("year > 1996"), _cond("year > 1995"))
        assert implies(_cond("year > 1995"), _cond("year >= 1995"))
        assert not implies(_cond("year >= 1995"), _cond("year > 1995"))
        assert implies(_cond("year > 1995 AND year < 1999"), _cond("year > 1995"))

    def test_membership_shapes(self):
        assert implies(_cond("make = 'saab'"), _cond("make IN ('saab', 'honda')"))
        assert not implies(_cond("make IN ('saab', 'ford')"), _cond("make IN ('saab', 'honda')"))

    def test_exclusions(self):
        assert implies(_cond("make = 'saab'"), _cond("make != 'ford'"))
        assert implies(_cond("make != 'ford'"), _cond("make != 'ford'"))
        assert not implies(_cond("make != 'honda'"), _cond("make != 'ford'"))

    def test_opaque_atoms_must_match_exactly(self):
        # attr-vs-attr comparisons decompose to opaque atoms: containment
        # only holds when the gold atom literally appears in the query.
        assert implies(_cond("price < bb_price"), _cond("price < bb_price"))
        assert not implies(_cond("make = 'saab'"), _cond("price < bb_price"))
        assert implies(
            _cond("price < bb_price AND make = 'saab'"), _cond("price < bb_price")
        )

    def test_unconstrained_gold_contains_everything(self):
        assert implies(_cond("make = 'saab'"), None)
        assert implies(None, None)
        assert not implies(None, _cond("make = 'saab'"))

    def test_decompose_is_conservative(self):
        # A disjunction across attributes is not a domain constraint; it
        # must survive as an opaque atom, not silently widen a domain.
        # (The UR grammar only spells OR via IN, which is single-attribute
        # by construction — build the mixed disjunct directly.)
        from repro.relational import conditions as C

        mixed = decompose(
            C.Or(
                (
                    C.Comparison(C.Attr("make"), "=", C.Const("saab")),
                    C.Comparison(C.Attr("year"), ">", C.Const(1995)),
                )
            )
        )
        assert mixed.atoms
        assert "make" not in mixed.domains


# -- sharing (the single-flight registry) --------------------------------------


class _PollContext:
    """A stand-in execution context whose cancellation flag the test flips."""

    def __init__(self) -> None:
        self.cancelled = threading.Event()

    def check_cancelled(self, where: str = "") -> None:
        if self.cancelled.is_set():
            raise RuntimeError("cancelled at %s" % where)


class TestSubplanRegistry:
    def test_concurrent_equal_fingerprints_run_once(self):
        registry = SubplanRegistry()
        runs = []
        entered = threading.Event()
        release = threading.Event()
        answer = Relation(("a",), [("x",)])

        def leader_thunk():
            runs.append("lead")
            entered.set()
            assert release.wait(5.0)
            return answer

        results: list = []

        def run(thunk):
            results.append(registry.run("fp", None, thunk))

        lead = threading.Thread(target=run, args=(leader_thunk,))
        lead.start()
        assert entered.wait(5.0)
        follow = threading.Thread(
            target=run, args=(lambda: pytest.fail("subscriber must not run"),)
        )
        follow.start()
        while registry.inflight() != 1 or not follow.is_alive():
            if not follow.is_alive():
                break
        release.set()
        lead.join(5.0)
        follow.join(5.0)
        assert runs == ["lead"]
        assert len(results) == 2
        assert results[0] is answer and results[1] is answer
        assert registry.inflight() == 0

    def test_subscriber_cancellation_detaches(self):
        registry = SubplanRegistry()
        entered = threading.Event()
        release = threading.Event()
        answer = Relation(("a",), [("x",)])

        def leader_thunk():
            entered.set()
            assert release.wait(5.0)
            return answer

        outcomes: list = []
        lead = threading.Thread(
            target=lambda: outcomes.append(registry.run("fp", None, leader_thunk))
        )
        lead.start()
        assert entered.wait(5.0)
        ctx = _PollContext()
        errors: list = []

        def subscriber():
            try:
                registry.run("fp", ctx, lambda: None)
            except RuntimeError as exc:
                errors.append(exc)

        sub = threading.Thread(target=subscriber)
        sub.start()
        ctx.cancelled.set()  # the subscriber gives up ...
        sub.join(5.0)
        assert errors, "cancelled subscriber must raise"
        release.set()  # ... but the leader's run is undisturbed
        lead.join(5.0)
        assert outcomes == [answer]

    def test_leader_failure_promotes_a_survivor(self):
        registry = SubplanRegistry()
        entered = threading.Event()
        fail = threading.Event()
        answer = Relation(("a",), [("x",)])

        def failing_leader():
            entered.set()
            assert fail.wait(5.0)
            raise ConnectionError("leader died")

        lead_error: list = []

        def lead_run():
            try:
                registry.run("fp", None, failing_leader)
            except ConnectionError as exc:
                lead_error.append(exc)

        lead = threading.Thread(target=lead_run)
        lead.start()
        assert entered.wait(5.0)
        results: list = []
        sub = threading.Thread(
            target=lambda: results.append(registry.run("fp", None, lambda: answer))
        )
        sub.start()
        fail.set()
        lead.join(5.0)
        sub.join(5.0)
        assert lead_error, "the leader's own caller sees the failure"
        assert results == [answer], "the survivor re-ran the subplan itself"


class TestBatchGate:
    def test_window_wait_is_bounded_and_observed(self):
        from repro.core.metrics import MetricsRegistry

        metrics = MetricsRegistry(strict=True)
        gate = BatchGate(0.05, metrics=metrics)
        waits: list[float] = []
        threads = [
            threading.Thread(target=lambda: waits.append(gate.admit()))
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
        assert len(waits) == 3
        assert all(w <= 0.05 + 0.25 for w in waits)  # bounded by window + slack
        summary = metrics.snapshot()["histograms"]["mqo.window_wait_seconds"]
        assert summary["count"] == 3

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            BatchGate(0.0)


# -- subsumption end to end ----------------------------------------------------


class TestSubsume:
    def test_contained_query_is_served_with_zero_side_effects(self, tmp_path):
        wb = _mqo_webbase(tmp_path)
        broad = wb.query(BROAD)
        assert len(broad) > 0
        before = wb.metrics.snapshot()["counters"]

        narrow = wb.query(NARROW)

        after = wb.metrics.snapshot()["counters"]
        changed = {
            name: after[name] - before.get(name, 0)
            for name in after
            if after[name] != before.get(name, 0)
        }
        # The ONLY thing that moved is the subsumption counter: no plan,
        # no fetch, no cache traffic — the query never reached the engine.
        assert changed == {"mqo.subsumed": 1}, changed
        assert wb.mqo.last_subsumed_by == BROAD

        control = WebBase.create(
            WebBaseConfig(ads_per_host=24, cache=CachePolicy.lru())
        )
        fresh = control.query(NARROW)
        assert sorted(narrow.rows) == sorted(fresh.rows)
        assert list(narrow.schema) == list(fresh.schema)

    def test_exact_text_reserves_from_gold(self, tmp_path):
        wb = _mqo_webbase(tmp_path)
        first = wb.query(BROAD)
        again = wb.query(BROAD)
        assert sorted(again.rows) == sorted(first.rows)
        assert wb.metrics.value("mqo.subsumed") == 1

    def test_revision_bump_invalidates_gold(self, tmp_path):
        """Stale gold is never served: one maintenance bump on any
        contributing host and subsumption refuses the record."""
        wb = _mqo_webbase(tmp_path)
        wb.query(BROAD)
        assert wb.mqo.subsume(NARROW) is not None
        record = wb.store.current_answers()[0]
        host = sorted(record["revisions"])[0]
        wb.cache.bump_revision(host)
        assert wb.mqo.subsume(NARROW) is None
        # The full query path falls through to live execution.
        before = wb.metrics.value("mqo.subsumed")
        answer = wb.query(NARROW)
        assert len(answer) > 0
        assert wb.metrics.value("mqo.subsumed") == before

    def test_mismatched_attribute_set_refuses(self, tmp_path):
        """A narrowed query that mentions a different attribute set can
        have different maximal objects (and therefore rows the gold
        answer never held) — containment must refuse, not guess."""
        wb = _mqo_webbase(tmp_path)
        wb.query("SELECT make, model, price WHERE make = 'saab'")
        assert (
            wb.mqo.subsume("SELECT make, model WHERE make = 'saab' AND year > 1995")
            is None
        )

    def test_explain_reports_the_subsumption(self, tmp_path):
        from repro.core.explain import explain

        wb = _mqo_webbase(tmp_path)
        wb.query(BROAD)
        report = explain(wb, NARROW)
        assert report.subsumed_by == BROAD
        rendered = report.render()
        assert "subsumed by gold answer" in rendered
        assert "0 live fetches" in rendered

    def test_mqo_off_is_the_null_optimizer(self, tmp_path):
        wb = WebBase.create(
            WebBaseConfig(
                ads_per_host=24,
                cache=CachePolicy.lru(),
                store_dir=str(tmp_path / "store"),
            )
        )
        assert wb.mqo is None
        wb.query(BROAD)
        counters = wb.metrics.snapshot()["counters"]
        assert not any(name.startswith("mqo.") for name in counters)


# -- the service path ----------------------------------------------------------


class TestServiceMQO:
    def test_streamed_answers_persist_gold_and_subsume(self, tmp_path):
        webbase = _mqo_webbase(tmp_path)
        svc = WebBaseService(webbase, ServiceConfig(port=0))
        host, port = svc.start()
        try:
            with ServiceClient(host=host, port=port) as client:
                first = client.query(BROAD)
                assert first.stats["fetches"] > 0
                second = client.query(NARROW)
            assert second.stats["fetches"] == 0
            assert second.stats.get("mqo") == "subsumed"
            assert len(second.rows) > 0
            control = WebBase.create(
                WebBaseConfig(ads_per_host=24, cache=CachePolicy.lru())
            )
            fresh = control.query(NARROW)
            assert sorted(second.rows) == sorted(set(fresh.rows))
        finally:
            svc.shutdown()

    def test_queue_wait_histogram_is_observed_and_bounded(self, tmp_path):
        webbase = _mqo_webbase(tmp_path)
        svc = WebBaseService(webbase, ServiceConfig(port=0))
        host, port = svc.start()
        try:
            with ServiceClient(host=host, port=port) as client:
                client.query(BROAD)
                client.query(BROAD)
        finally:
            svc.shutdown()
        summary = webbase.metrics.snapshot()["histograms"][
            "service.queue_wait_seconds"
        ]
        assert summary["count"] >= 2
        assert 0.0 <= summary["max"] < 30.0

    def test_batching_window_shares_concurrent_identical_queries(self, tmp_path):
        """Four identical queries fired together under a batching window
        collapse onto one evaluation: one set of leads, the rest hits."""
        webbase = _mqo_webbase(tmp_path)
        svc = WebBaseService(
            webbase,
            ServiceConfig(port=0, workers=4, mqo_window_ms=250.0),
        )
        host, port = svc.start()
        rows: list = []
        errors: list = []

        def one_client():
            try:
                with ServiceClient(host=host, port=port) as client:
                    outcome = client.query(BROAD)
                rows.append(sorted(outcome.rows))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        try:
            threads = [threading.Thread(target=one_client) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60.0)
        finally:
            svc.shutdown()
        assert not errors
        assert len(rows) == 4
        assert all(r == rows[0] for r in rows), "shared rows must be identical"
        counters = webbase.metrics.snapshot()["counters"]
        assert counters.get("mqo.shared_hits", 0) >= 1, counters
        window = webbase.metrics.snapshot()["histograms"][
            "mqo.window_wait_seconds"
        ]
        assert window["count"] >= 1
        assert window["max"] <= 0.25 + 0.25  # bounded by the window + slack
