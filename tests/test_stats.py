"""Unit tests for the per-site query/timing harness."""

import pytest

from repro.core.stats import (
    DEFAULT_EXTRAS,
    format_timing_table,
    primary_relation,
    site_given,
    site_query_timings,
)
from repro.sites.world import TIMING_TABLE_HOSTS


class TestPrimaryRelation:
    def test_every_timing_host_has_one(self, webbase):
        for host in TIMING_TABLE_HOSTS:
            assert primary_relation(webbase, host)

    def test_newsday_primary_is_the_listing_not_the_detail(self, webbase):
        assert primary_relation(webbase, "www.newsday.com") == "newsday"


class TestSiteGiven:
    def test_direct_vocabulary(self, webbase):
        given = site_given(webbase, "newsday", {"make": "ford", "model": "escort"})
        assert given == {"make": "ford", "model": "escort"}

    def test_alias_mapping_for_nytimes(self, webbase):
        given = site_given(webbase, "nytimes", {"make": "ford", "model": "escort"})
        assert given["manufacturer"] == "ford"
        assert "make" not in given

    def test_fuzzy_mapping_for_zip(self, webbase):
        given = site_given(webbase, "carfinance", {"zip": "10001"})
        assert given["zip_code"] == "10001"

    def test_mandatory_defaults_filled(self, webbase):
        given = site_given(webbase, "kellys", {"make": "ford", "model": "escort"})
        assert given["condition"] == DEFAULT_EXTRAS["condition"]

    def test_unmappable_attributes_dropped(self, webbase):
        given = site_given(webbase, "caranddriver", {"make": "ford", "astrology": "x"})
        assert "astrology" not in given


class TestTimings:
    def test_subset_of_hosts(self, webbase):
        timings = site_query_timings(webbase, hosts=["www.newsday.com", "www.kbb.com"])
        assert [t.host for t in timings] == ["www.newsday.com", "www.kbb.com"]

    def test_custom_query(self, webbase):
        timings = site_query_timings(
            webbase, query={"make": "jaguar"}, hosts=["www.newsday.com"]
        )
        assert timings[0].rows > 0

    def test_elapsed_is_cpu_plus_network(self, webbase):
        timing = site_query_timings(webbase, hosts=["www.kbb.com"])[0]
        assert timing.elapsed_seconds == pytest.approx(
            timing.cpu_seconds + timing.network_seconds
        )

    def test_format_layout(self, webbase):
        text = format_timing_table(site_query_timings(webbase, hosts=["www.kbb.com"]))
        lines = text.splitlines()
        assert lines[0].startswith("Site")
        assert lines[1].startswith("---")
        assert "www.kbb.com" in lines[2]
