"""Golden-trace regression guard for the end-to-end Jaguar query.

The paper's flagship query exercises every layer: UR planning, maximal
objects, logical views, VPS fetches, navigation and pagination.  We pin the
*shape* of its execution — span kinds, nesting, order, cache flags and
statuses, via :meth:`TraceSpan.skeleton` — not its timings, so the snapshot
is stable across machines while still catching accidental plan changes,
dropped fetches, retry storms, or cache-flag regressions.

On drift the failure message carries a unified diff.  To accept an
intentional change::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace.py
"""

from __future__ import annotations

import difflib
import os
import pathlib

from repro.core.execution import WebBaseConfig
from repro.core.webbase import WebBase

GOLDEN = pathlib.Path(__file__).parent / "golden" / "jaguar_trace.txt"

JAGUAR_QUERY = (
    "SELECT make, model, year, price, bb_price, safety, contact "
    "WHERE make = 'jaguar' AND year >= 1993 AND condition = 'good' "
    "AND safety IN ('good', 'excellent') AND price < bb_price"
)


def _current_skeleton() -> str:
    # One worker lane: span order then equals submission order, so the
    # skeleton is identical run to run and machine to machine.
    webbase = WebBase.create(WebBaseConfig(max_workers=1))
    report = webbase.query_report(JAGUAR_QUERY)
    return report.trace.skeleton().rstrip("\n") + "\n"


def test_jaguar_trace_matches_golden():
    actual = _current_skeleton()
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN.write_text(actual)
    expected = GOLDEN.read_text()
    if actual != expected:
        diff = "".join(
            difflib.unified_diff(
                expected.splitlines(keepends=True),
                actual.splitlines(keepends=True),
                fromfile="tests/golden/jaguar_trace.txt",
                tofile="current trace skeleton",
            )
        )
        raise AssertionError(
            "Jaguar trace skeleton drifted from the golden snapshot.\n"
            "If intentional, regenerate with UPDATE_GOLDEN=1.\n\n" + diff
        )


def test_skeleton_is_deterministic_across_runs():
    first = _current_skeleton()
    for _ in range(2):  # three runs total, per the acceptance criteria
        assert _current_skeleton() == first


def test_skeleton_has_the_expected_layers():
    skeleton = _current_skeleton()
    for kind in ("context ", "query ", "object ", "view ", "fetch ", "attempt "):
        assert kind.strip() in [
            line.strip().split(" ")[0] for line in skeleton.splitlines()
        ], "missing %r spans" % kind.strip()
    assert "[miss]" in skeleton  # cache flags survive normalization
