"""Unit tests for the F-logic object store."""

import pytest

from repro.flogic.store import ObjectStore, Signature, SignatureError
from repro.flogic.terms import Var


def _demo_store() -> ObjectStore:
    store = ObjectStore()
    store = store.with_subclass("form_submit", "action")
    store = store.with_subclass("link_follow", "action")
    store = store.with_subclass("data_page", "web_page")
    store = store.with_member("f01", "form_submit")
    store = store.with_member("carPg", "data_page")
    store = store.with_attr("f01", "method", "POST")
    store = store.with_attr("f01", "mandatory", "make")
    store = store.with_attr("f01", "mandatory", "model")
    return store


class TestHierarchy:
    def test_superclasses_transitive(self):
        store = ObjectStore().with_subclass("a", "b").with_subclass("b", "c")
        assert store.superclasses("a") == {"a", "b", "c"}

    def test_membership_respects_hierarchy(self):
        store = _demo_store()
        assert store.is_member("f01", "form_submit")
        assert store.is_member("f01", "action")
        assert not store.is_member("f01", "web_page")

    def test_classes_of(self):
        assert _demo_store().classes_of("carPg") == {"data_page", "web_page"}

    def test_cyclic_hierarchy_terminates(self):
        store = ObjectStore().with_subclass("a", "b").with_subclass("b", "a")
        assert store.superclasses("a") == {"a", "b"}


class TestAttributes:
    def test_values_multivalued(self):
        assert sorted(_demo_store().values("f01", "mandatory")) == ["make", "model"]

    def test_value_scalar(self):
        assert _demo_store().value("f01", "method") == "POST"

    def test_value_missing_raises(self):
        with pytest.raises(KeyError):
            _demo_store().value("f01", "nope")

    def test_value_ambiguous_raises(self):
        with pytest.raises(KeyError):
            _demo_store().value("f01", "mandatory")

    def test_scalar_signature_enforced(self):
        store = ObjectStore().with_signature(Signature("form", "method", "meth"))
        store = store.with_member("f", "form").with_attr("f", "method", "GET")
        with pytest.raises(SignatureError):
            store.with_attr("f", "method", "POST")

    def test_scalar_signature_idempotent_value_ok(self):
        store = ObjectStore().with_signature(Signature("form", "method", "meth"))
        store = store.with_member("f", "form").with_attr("f", "method", "GET")
        assert store.with_attr("f", "method", "GET").value("f", "method") == "GET"

    def test_multivalued_signature_allows_many(self):
        store = ObjectStore().with_signature(
            Signature("form", "mandatory", "attribute", scalar=False)
        )
        store = store.with_member("f", "form")
        store = store.with_attr("f", "mandatory", "a").with_attr("f", "mandatory", "b")
        assert sorted(store.values("f", "mandatory")) == ["a", "b"]

    def test_without_attr(self):
        store = _demo_store().without_attr("f01", "mandatory", "model")
        assert store.values("f01", "mandatory") == ["make"]

    def test_persistence(self):
        base = _demo_store()
        modified = base.with_attr("f01", "extra", 1)
        assert base.values("f01", "extra") == []
        assert modified.values("f01", "extra") == [1]


class TestQueries:
    def test_query_isa_ground(self):
        store = _demo_store()
        assert list(store.query_isa("f01", "action", {})) == [{}]
        assert list(store.query_isa("f01", "web_page", {})) == []

    def test_query_isa_enumerates_members(self):
        store = _demo_store()
        X = Var("X")
        members = {s[X] for s in store.query_isa(X, "action", {})}
        assert members == {"f01"}

    def test_query_isa_enumerates_classes(self):
        store = _demo_store()
        C = Var("C")
        classes = {s[C] for s in store.query_isa("carPg", C, {})}
        assert classes == {"data_page", "web_page"}

    def test_query_attr_patterns(self):
        store = _demo_store()
        V = Var("V")
        values = {s[V] for s in store.query_attr("f01", "mandatory", V, {})}
        assert values == {"make", "model"}

    def test_query_attr_fully_open(self):
        store = _demo_store()
        O, A, V = Var("O"), Var("A"), Var("V")
        facts = {(s[O], s[A], s[V]) for s in store.query_attr(O, A, V, {})}
        assert ("f01", "method", "POST") in facts


class TestIntrospection:
    def test_all_objects(self):
        assert _demo_store().all_objects() == {"f01", "carPg"}

    def test_fact_counts(self):
        store = _demo_store()
        assert store.attr_fact_count == 3
        assert store.fact_count == 5  # 2 isa + 3 attr

    def test_describe(self):
        desc = _demo_store().describe("f01")
        assert desc["method"] == ["POST"]
        assert sorted(desc["mandatory"]) == ["make", "model"]

    def test_signatures_of(self):
        store = ObjectStore().with_subclass("form", "action")
        store = store.with_signature(Signature("action", "source", "web_page"))
        store = store.with_signature(Signature("form", "cgi", "url"))
        sigs = store.signatures_of("form")
        assert {(s.cls, s.attr) for s in sigs} == {("action", "source"), ("form", "cgi")}
