"""Rendezvous-hashing properties: determinism, minimal reshuffle,
successor agreement.

The cluster's takeover plan is *derived* from the HRW order, not stored,
so these properties are load-bearing: if removal moved keys between
surviving shards, a takeover would invalidate caches on shards that
never touched the dead worker's hosts.  Keys are drawn from the
suite-wide ``REPRO_TEST_SEED`` stream, so a failing draw replays with
one env var.
"""

from __future__ import annotations

import random

from repro.cluster.hashring import HashRing, score
from tests.conftest import derive_seeds

HOSTS = [
    "www.autoweb.com",
    "www.caranddriver.com",
    "www.carfinance.com",
    "www.carpoint.com",
    "www.kbb.com",
    "www.newsday.com",
    "www.nytimes.com",
]


def _random_keys(count: int) -> list[str]:
    (seed,) = derive_seeds("hashring-keys", 1)
    rng = random.Random(seed)
    return ["key-%d-%d" % (i, rng.randrange(2**31)) for i in range(count)]


class TestDeterminism:
    def test_score_is_stable_across_calls(self):
        assert score("shard-0", "www.kbb.com") == score("shard-0", "www.kbb.com")

    def test_two_rings_agree_regardless_of_insertion_order(self):
        a = HashRing(["shard-0", "shard-1", "shard-2"])
        b = HashRing()
        for node in ["shard-2", "shard-0", "shard-1"]:
            b.add(node)
        for key in HOSTS + _random_keys(50):
            assert a.owner(key) == b.owner(key)
            assert a.ranked(key) == b.ranked(key)

    def test_ranked_is_a_total_order_over_members(self):
        ring = HashRing(["shard-%d" % i for i in range(5)])
        for key in HOSTS:
            order = ring.ranked(key)
            assert sorted(order) == sorted(ring.nodes)


class TestMinimalReshuffle:
    def test_removal_only_moves_the_dead_nodes_keys(self):
        nodes = ["shard-%d" % i for i in range(5)]
        ring = HashRing(nodes)
        keys = HOSTS + _random_keys(300)
        before = ring.assignment(keys)
        dead = nodes[2]
        ring.remove(dead)
        after = ring.assignment(keys)
        for key in keys:
            if before[key] != dead:
                assert after[key] == before[key], (
                    "key %r moved from a surviving node" % key
                )

    def test_addition_only_steals_keys_the_new_node_wins(self):
        nodes = ["shard-%d" % i for i in range(4)]
        ring = HashRing(nodes)
        keys = HOSTS + _random_keys(300)
        before = ring.assignment(keys)
        ring.add("shard-new")
        after = ring.assignment(keys)
        for key in keys:
            if after[key] != before[key]:
                assert after[key] == "shard-new", (
                    "key %r moved between pre-existing nodes" % key
                )

    def test_successor_matches_post_removal_owner(self):
        nodes = ["shard-%d" % i for i in range(4)]
        keys = HOSTS + _random_keys(100)
        for dead in nodes:
            ring = HashRing(nodes)
            takeover = {
                key: ring.successor(key, dead)
                for key in keys
                if ring.owner(key) == dead
            }
            ring.remove(dead)
            for key, successor in takeover.items():
                assert ring.owner(key) == successor


class TestDistribution:
    def test_every_shard_owns_some_keys(self):
        ring = HashRing(["shard-%d" % i for i in range(3)])
        keys = _random_keys(600)
        counts: dict[str, int] = {}
        for key in keys:
            owner = ring.owner(key)
            counts[owner] = counts.get(owner, 0) + 1
        assert set(counts) == set(ring.nodes)
        # HRW over a cryptographic digest is close to uniform; a shard
        # below a sixth of its fair share would mean a broken score.
        for owned in counts.values():
            assert owned > len(keys) / (3 * 6)

    def test_empty_ring_raises(self):
        ring = HashRing()
        try:
            ring.owner("anything")
        except LookupError:
            pass
        else:
            raise AssertionError("expected LookupError on an empty ring")
